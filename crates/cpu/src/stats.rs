//! Core performance counters.

use semloc_trace::{SnapReader, SnapWriter, Snapshot};

/// Counters maintained by the [`Cpu`](crate::Cpu).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Total cycles (retirement cycle of the last instruction).
    pub cycles: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic branches.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
}

impl CpuStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Fraction of instructions that access memory (the `Prob(mem op)` term
    /// of the §4.3 prefetch-distance formula).
    pub fn mem_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / self.instructions as f64
        }
    }
}

impl Snapshot for CpuStats {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"CPUS", 1);
        w.put_u64(self.instructions);
        w.put_u64(self.cycles);
        w.put_u64(self.loads);
        w.put_u64(self.stores);
        w.put_u64(self.branches);
        w.put_u64(self.mispredicts);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"CPUS", 1)?;
        self.instructions = r.get_u64()?;
        self.cycles = r.get_u64()?;
        self.loads = r.get_u64()?;
        self.stores = r.get_u64()?;
        self.branches = r.get_u64()?;
        self.mispredicts = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CpuStats {
            instructions: 1000,
            cycles: 500,
            loads: 200,
            stores: 100,
            ..Default::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.cpi() - 0.5).abs() < 1e-12);
        assert!((s.mem_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_safe() {
        let s = CpuStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.mem_fraction(), 0.0);
    }
}
