//! Core configuration (Table 2 of the paper).

/// Out-of-order core parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions fetched/dispatched per cycle (Table 2: 4-wide fetch).
    pub fetch_width: u32,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// Reorder-buffer entries (Table 2: 192).
    pub rob_size: usize,
    /// Issue-queue entries (Table 2: 64).
    pub iq_size: usize,
    /// Load-queue entries (Table 2: 32).
    pub lq_size: usize,
    /// Store-queue entries (Table 2: 32).
    pub sq_size: usize,
    /// Physical register file size (Table 2: 256). With 32 architectural
    /// registers and a 192-entry ROB this never binds before the ROB does;
    /// it is validated, not separately modeled.
    pub prf_size: usize,
    /// Branch-misprediction redirect penalty in cycles (front-end refill of
    /// a short OoO pipeline).
    pub mispredict_penalty: u64,
    /// log2 of the gshare pattern-history table size.
    pub bpred_log2_entries: u32,
    /// Issue instructions strictly in program order (a scoreboarded
    /// in-order pipeline with hit-under-miss). Default: false (full
    /// out-of-order issue). Used by the core-sensitivity experiment.
    pub in_order: bool,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            fetch_width: 4,
            retire_width: 4,
            rob_size: 192,
            iq_size: 64,
            lq_size: 32,
            sq_size: 32,
            prf_size: 256,
            mispredict_penalty: 12,
            bpred_log2_entries: 12,
            in_order: false,
        }
    }
}

impl CpuConfig {
    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any width is zero, or if the PRF cannot cover the
    /// architectural state plus in-flight ROB writers.
    pub fn validate(&self) {
        assert!(
            self.fetch_width > 0 && self.retire_width > 0,
            "widths must be positive"
        );
        assert!(self.rob_size > 0 && self.iq_size > 0 && self.lq_size > 0 && self.sq_size > 0);
        assert!(
            self.prf_size >= semloc_trace::Reg::COUNT,
            "PRF must at least cover the architectural registers"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = CpuConfig::default();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_size, 192);
        assert_eq!(c.iq_size, 64);
        assert_eq!(c.lq_size, 32);
        assert_eq!(c.sq_size, 32);
        assert_eq!(c.prf_size, 256);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "architectural registers")]
    fn tiny_prf_rejected() {
        CpuConfig {
            prf_size: 8,
            ..CpuConfig::default()
        }
        .validate();
    }
}
