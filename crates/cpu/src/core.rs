//! The out-of-order core model.
//!
//! A dependence-graph timing model: every dynamic instruction's dispatch,
//! issue, completion and retirement cycles are computed against front-end
//! bandwidth, register dependencies, structural resources (ROB/IQ/LQ/SQ)
//! and the memory hierarchy. The model is *trace-driven* — workloads push
//! instructions through the [`TraceSink`] interface — and is the component
//! that assembles the per-access [`AccessContext`] consumed by prefetchers.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use semloc_mem::{Hierarchy, Prefetcher};
use semloc_trace::{
    snap_err, AccessContext, Addr, Cycle, Instr, InstrKind, Reg, Seq, SnapReader, SnapWriter,
    Snapshot, TraceSink, RECENT_ADDRS,
};

use crate::bpred::Gshare;
use crate::config::CpuConfig;
use crate::stats::CpuStats;

/// A bounded structural resource whose entries free at known cycles.
#[derive(Debug, Default)]
struct Occupancy {
    free_times: BinaryHeap<Reverse<Cycle>>,
    // semloc-lint: allow(snapshot-field-coverage): structural width is construction-time config; restore validates occupancy against it
    capacity: usize,
}

impl Occupancy {
    fn new(capacity: usize) -> Self {
        Occupancy {
            free_times: BinaryHeap::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Earliest cycle ≥ `at` when a slot is free; drains freed entries.
    #[allow(clippy::expect_used)]
    fn admit(&mut self, mut at: Cycle) -> Cycle {
        while let Some(&Reverse(t)) = self.free_times.peek() {
            if t <= at {
                self.free_times.pop();
            } else {
                break;
            }
        }
        if self.free_times.len() >= self.capacity {
            // semloc-lint: allow(no-unwrap): len >= capacity >= 1 was just checked
            let Reverse(t) = self.free_times.pop().expect("non-empty at capacity");
            at = at.max(t);
            // Entries freed between the old `at` and the new one.
            while let Some(&Reverse(t2)) = self.free_times.peek() {
                if t2 <= at {
                    self.free_times.pop();
                } else {
                    break;
                }
            }
        }
        at
    }

    /// Occupy one slot until `until`.
    fn occupy(&mut self, until: Cycle) {
        self.free_times.push(Reverse(until));
    }
}

impl Snapshot for Occupancy {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"OCCU", 1);
        // A binary heap has no canonical iteration order; serializing the
        // multiset sorted makes save → restore → save byte-identical.
        let mut v: Vec<Cycle> = self.free_times.iter().map(|&Reverse(t)| t).collect();
        v.sort_unstable();
        w.put_len(v.len());
        for t in v {
            w.put_u64(t);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"OCCU", 1)?;
        let n = r.get_len()?;
        if n > self.capacity {
            return Err(snap_err(format!(
                "occupancy snapshot has {n} entries, capacity is {}",
                self.capacity
            )));
        }
        let mut heap = BinaryHeap::with_capacity(self.capacity + 1);
        for _ in 0..n {
            heap.push(Reverse(r.get_u64()?));
        }
        self.free_times = heap;
        Ok(())
    }
}

/// The simulated out-of-order core, owning the memory hierarchy.
pub struct Cpu<P: Prefetcher> {
    // semloc-lint: allow(snapshot-field-coverage): construction-time config; behavior parameters, not run state
    cfg: CpuConfig,
    mem: Hierarchy<P>,
    stats: CpuStats,
    budget: u64,

    // Front end.
    dispatch_cycle: Cycle,
    dispatched_in_cycle: u32,
    fetch_resume: Cycle,
    bpred: Gshare,

    // Back end.
    rob: VecDeque<Cycle>,
    iq: Occupancy,
    lq: Occupancy,
    sq: Occupancy,
    last_retire: Cycle,
    retired_in_cycle: u32,
    last_issue: Cycle,

    // Architectural state feeding the context attributes.
    reg_ready: [Cycle; Reg::COUNT],
    reg_vals: [u64; Reg::COUNT],
    recent_addrs: [Addr; RECENT_ADDRS],
    last_loaded: u64,
    mem_seq: Seq,
}

impl<P: Prefetcher> Cpu<P> {
    /// Build a core with the given configuration and memory hierarchy.
    ///
    /// `budget` caps the number of instructions consumed before
    /// [`TraceSink::done`] reports `true`; `0` means unbounded.
    pub fn new(cfg: CpuConfig, mem: Hierarchy<P>, budget: u64) -> Self {
        cfg.validate();
        Cpu {
            bpred: Gshare::new(cfg.bpred_log2_entries),
            rob: VecDeque::with_capacity(cfg.rob_size),
            iq: Occupancy::new(cfg.iq_size),
            lq: Occupancy::new(cfg.lq_size),
            sq: Occupancy::new(cfg.sq_size),
            cfg,
            mem,
            stats: CpuStats::default(),
            budget,
            dispatch_cycle: 0,
            dispatched_in_cycle: 0,
            fetch_resume: 0,
            last_retire: 0,
            retired_in_cycle: 0,
            last_issue: 0,
            reg_ready: [0; Reg::COUNT],
            reg_vals: [0; Reg::COUNT],
            recent_addrs: [0; RECENT_ADDRS],
            last_loaded: 0,
            mem_seq: 0,
        }
    }

    /// Core statistics so far.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// The memory hierarchy.
    pub fn mem(&self) -> &Hierarchy<P> {
        &self.mem
    }

    /// Mutable access to the memory hierarchy.
    pub fn mem_mut(&mut self) -> &mut Hierarchy<P> {
        &mut self.mem
    }

    /// Number of demand memory accesses observed so far.
    pub fn mem_accesses(&self) -> Seq {
        self.mem_seq
    }

    /// Finish the run (flush end-of-run accounting) and return the final
    /// statistics alongside the hierarchy.
    pub fn finish(mut self) -> (CpuStats, Hierarchy<P>) {
        self.mem.finish();
        (self.stats, self.mem)
    }

    fn src_ready(&self, instr: &Instr) -> Cycle {
        let a = instr.src1.map_or(0, |r| self.reg_ready[r.index()]);
        let b = instr.src2.map_or(0, |r| self.reg_ready[r.index()]);
        a.max(b)
    }

    fn reg_val(&self, r: Option<Reg>) -> u64 {
        r.map_or(0, |r| self.reg_vals[r.index()])
    }

    /// Claim a front-end dispatch slot no earlier than the structural lower
    /// bound `floor`, honouring fetch width and redirect stalls.
    fn dispatch_slot(&mut self, floor: Cycle) -> Cycle {
        let mut d = self.dispatch_cycle.max(self.fetch_resume).max(floor);
        if d > self.dispatch_cycle {
            self.dispatch_cycle = d;
            self.dispatched_in_cycle = 0;
        }
        if self.dispatched_in_cycle >= self.cfg.fetch_width {
            self.dispatch_cycle += 1;
            self.dispatched_in_cycle = 0;
            d = self.dispatch_cycle;
        }
        self.dispatched_in_cycle += 1;
        d
    }

    /// In-order retirement cycle for an instruction completing at `comp`.
    fn retire_slot(&mut self, comp: Cycle) -> Cycle {
        let mut r = comp.max(self.last_retire);
        if r > self.last_retire {
            self.retired_in_cycle = 0;
        } else if self.retired_in_cycle >= self.cfg.retire_width {
            r += 1;
            self.retired_in_cycle = 0;
        }
        self.retired_in_cycle += 1;
        self.last_retire = r;
        r
    }

    fn step(&mut self, instr: Instr) {
        // Route the single-step path through the same body as
        // `step_block`, with the stats briefly moved out so both paths
        // accumulate through the same `&mut CpuStats` and stay
        // bit-identical (CpuStats is a handful of words; the move is
        // register traffic).
        let mut stats = std::mem::take(&mut self.stats);
        self.step_with(instr, &mut stats);
        self.stats = stats;
    }

    /// Step every instruction of a decoded block through the core.
    ///
    /// This is the batched twin of the [`TraceSink`] path: stats
    /// accumulate in a block-local [`CpuStats`] folded back once per
    /// block, and there is no per-instruction budget gate — callers slice
    /// the block so it never crosses the instruction budget (the engine
    /// does this at block granularity). Semantically identical to feeding
    /// the same instructions through [`TraceSink::instr`] one at a time.
    pub fn step_block(&mut self, block: &semloc_trace::InstrBlock<'_>) {
        let mut stats = std::mem::take(&mut self.stats);
        for i in 0..block.len() {
            self.step_with(block.instr(i), &mut stats);
        }
        self.stats = stats;
    }

    #[allow(clippy::expect_used)]
    fn step_with(&mut self, instr: Instr, stats: &mut CpuStats) {
        // Structural lower bound: the ROB must have room.
        let mut floor = 0;
        if self.rob.len() >= self.cfg.rob_size {
            // semloc-lint: allow(no-unwrap): len >= rob_size >= 1 was just checked
            floor = self.rob.pop_front().expect("ROB non-empty at capacity");
        }
        let d0 = self.dispatch_cycle.max(self.fetch_resume).max(floor);
        // IQ/LQ/SQ admission can push dispatch later.
        let mut d = self.iq.admit(d0);
        match instr.kind {
            InstrKind::Load { .. } => d = self.lq.admit(d),
            InstrKind::Store { .. } => d = self.sq.admit(d),
            _ => {}
        }
        let dispatch = self.dispatch_slot(d);
        let mut issue = dispatch.max(self.src_ready(&instr));
        if self.cfg.in_order {
            // Scoreboarded in-order issue: no instruction begins execution
            // before its program-order predecessor has begun.
            issue = issue.max(self.last_issue);
        }
        self.last_issue = issue;
        self.iq.occupy(issue);

        let comp = match instr.kind {
            InstrKind::Alu { latency } => issue + latency.max(1) as Cycle,
            InstrKind::Nop => issue,
            InstrKind::Branch { taken, target } => {
                stats.branches += 1;
                let comp = issue + 1;
                if !self.bpred.predict_and_update(instr.pc, taken) {
                    stats.mispredicts += 1;
                    self.fetch_resume = self.fetch_resume.max(comp + self.cfg.mispredict_penalty);
                }
                let _ = target;
                comp
            }
            InstrKind::Load {
                addr,
                size: _,
                hints,
            } => {
                stats.loads += 1;
                let ctx = self.access_context(instr.pc, addr, false, &instr, hints);
                let res = self.mem.demand_access(&ctx, issue);
                self.note_access(addr, instr.result);
                self.lq.occupy(res.ready_at);
                res.ready_at
            }
            InstrKind::Store { addr, size: _ } => {
                stats.stores += 1;
                let ctx = self.access_context(instr.pc, addr, true, &instr, None);
                let res = self.mem.demand_access(&ctx, issue);
                self.note_access(addr, self.last_loaded);
                // The store retires once address+data are known; it drains
                // from the SQ when the cache accepts it.
                self.sq.occupy(res.ready_at);
                issue + 1
            }
        };

        if let Some(dst) = instr.dst {
            self.reg_ready[dst.index()] = comp;
            self.reg_vals[dst.index()] = instr.result;
        }

        let retire = self.retire_slot(comp);
        self.rob.push_back(retire);
        stats.instructions += 1;
        stats.cycles = stats.cycles.max(retire);
    }

    fn access_context(
        &mut self,
        pc: Addr,
        addr: Addr,
        is_write: bool,
        instr: &Instr,
        hints: Option<semloc_trace::SemanticHints>,
    ) -> AccessContext {
        let seq = self.mem_seq;
        self.mem_seq += 1;
        AccessContext {
            seq,
            pc,
            addr,
            is_write,
            branch_history: self.bpred.history(),
            recent_addrs: self.recent_addrs,
            reg1: self.reg_val(instr.src1),
            reg2: self.reg_val(instr.src2),
            last_loaded: self.last_loaded,
            hints,
        }
    }

    fn note_access(&mut self, addr: Addr, loaded: u64) {
        self.recent_addrs.rotate_right(1);
        self.recent_addrs[0] = addr;
        self.last_loaded = loaded;
    }
}

impl<P: Prefetcher> Snapshot for Cpu<P> {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"CPU0", 1);
        w.put_u64(self.budget);
        self.stats.save(w);
        w.put_u64(self.dispatch_cycle);
        w.put_u32(self.dispatched_in_cycle);
        w.put_u64(self.fetch_resume);
        self.bpred.save(w);
        w.put_len(self.rob.len());
        for &t in &self.rob {
            w.put_u64(t);
        }
        self.iq.save(w);
        self.lq.save(w);
        self.sq.save(w);
        w.put_u64(self.last_retire);
        w.put_u32(self.retired_in_cycle);
        w.put_u64(self.last_issue);
        for &t in self.reg_ready.iter() {
            w.put_u64(t);
        }
        for &v in self.reg_vals.iter() {
            w.put_u64(v);
        }
        for &a in self.recent_addrs.iter() {
            w.put_u64(a);
        }
        w.put_u64(self.last_loaded);
        w.put_u64(self.mem_seq);
        self.mem.save(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"CPU0", 1)?;
        self.budget = r.get_u64()?;
        self.stats.restore(r)?;
        self.dispatch_cycle = r.get_u64()?;
        self.dispatched_in_cycle = r.get_u32()?;
        self.fetch_resume = r.get_u64()?;
        self.bpred.restore(r)?;
        let n = r.get_len()?;
        if n > self.cfg.rob_size {
            return Err(snap_err(format!(
                "ROB snapshot has {n} entries, capacity is {}",
                self.cfg.rob_size
            )));
        }
        self.rob.clear();
        for _ in 0..n {
            self.rob.push_back(r.get_u64()?);
        }
        self.iq.restore(r)?;
        self.lq.restore(r)?;
        self.sq.restore(r)?;
        self.last_retire = r.get_u64()?;
        self.retired_in_cycle = r.get_u32()?;
        self.last_issue = r.get_u64()?;
        for t in self.reg_ready.iter_mut() {
            *t = r.get_u64()?;
        }
        for v in self.reg_vals.iter_mut() {
            *v = r.get_u64()?;
        }
        for a in self.recent_addrs.iter_mut() {
            *a = r.get_u64()?;
        }
        self.last_loaded = r.get_u64()?;
        self.mem_seq = r.get_u64()?;
        self.mem.restore(r)
    }
}

impl<P: Prefetcher> TraceSink for Cpu<P> {
    fn instr(&mut self, instr: Instr) {
        if !self.done() {
            self.step(instr);
        }
    }

    fn done(&self) -> bool {
        self.budget != 0 && self.stats.instructions >= self.budget
    }
}

impl<P: Prefetcher> std::fmt::Debug for Cpu<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("stats", &self.stats)
            .field("mem", &self.mem)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_mem::{MemConfig, NoPrefetch};

    fn cpu() -> Cpu<NoPrefetch> {
        Cpu::new(
            CpuConfig::default(),
            Hierarchy::new(MemConfig::default(), NoPrefetch),
            0,
        )
    }

    #[test]
    fn independent_alus_reach_full_width() {
        let mut c = cpu();
        for i in 0..4000 {
            c.instr(Instr::alu(i * 8, None, None, None, 0));
        }
        let ipc = c.stats().ipc();
        assert!(
            ipc > 3.5,
            "independent ALU IPC {ipc} should approach fetch width 4"
        );
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut c = cpu();
        for i in 0..1000 {
            c.instr(Instr::alu(0x400, Some(Reg(1)), Some(Reg(1)), None, i));
        }
        let ipc = c.stats().ipc();
        assert!(ipc < 1.1, "dependent chain IPC {ipc} must be ~1");
    }

    #[test]
    fn pointer_chase_pays_serial_memory_latency() {
        // Loads where each address depends on the previous load's value:
        // dependent misses cannot overlap.
        let mut c = cpu();
        let n = 50u64;
        for i in 0..n {
            let addr = 0x1_0000 + i * 4096; // distinct lines and sets
            c.instr(Instr::load(0x400, addr, 8, Reg(1), Some(Reg(1)), None, 0));
        }
        let cpi = c.stats().cpi();
        assert!(
            cpi > 250.0,
            "serialized cold misses must cost ~322 cycles each, got CPI {cpi}"
        );
    }

    #[test]
    fn independent_misses_overlap_up_to_mshrs() {
        // Independent loads to distinct lines: with 4 L1 MSHRs some overlap
        // must happen, so CPI per load is well below the full latency.
        let mut c = cpu();
        let n = 200u64;
        for i in 0..n {
            let addr = 0x10_0000 + i * 4096;
            c.instr(Instr::load(
                0x400 + (i % 4) * 8,
                addr,
                8,
                Reg((1 + (i % 4)) as u8),
                None,
                None,
                0,
            ));
        }
        let cpi = c.stats().cpi();
        assert!(
            cpi < 250.0,
            "independent misses should overlap, got CPI {cpi}"
        );
        assert!(cpi > 30.0, "4 MSHRs cannot hide everything, got CPI {cpi}");
    }

    #[test]
    fn cache_hits_are_fast() {
        let mut c = cpu();
        // Touch one line, then hammer it.
        for _ in 0..1000 {
            c.instr(Instr::load(0x400, 0x2000, 8, Reg(1), None, None, 0));
            c.instr(Instr::alu(0x408, None, None, None, 0));
        }
        let cpi = c.stats().cpi();
        assert!(cpi < 2.0, "L1-resident loop should be fast, got CPI {cpi}");
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let mut well = cpu();
        let mut badly = cpu();
        let mut state = 1u64;
        for i in 0..4000u64 {
            well.instr(Instr::branch(0x400, true, 0x500, None));
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            badly.instr(Instr::branch(0x400, (state >> 40) & 1 == 1, 0x500, None));
            let _ = i;
        }
        assert!(badly.stats().mispredicts > well.stats().mispredicts * 5);
        assert!(badly.stats().cycles > well.stats().cycles * 2);
    }

    #[test]
    fn rob_bounds_runahead() {
        // One extremely slow load followed by many independent ALUs: the
        // ROB must stop dispatch at 192 in-flight, so total cycles are
        // dominated by the load latency.
        let mut c = cpu();
        c.instr(Instr::load(0x400, 0x300000, 8, Reg(1), None, None, 0));
        for i in 0..10_000u64 {
            c.instr(Instr::alu(0x408, None, None, None, i));
        }
        let cycles = c.stats().cycles;
        // 10k ALUs at width 4 = 2.5k cycles, plus the ~322-cycle stall the
        // ROB cannot hide beyond 192 entries.
        assert!(cycles > 2500, "ROB should expose part of the load stall");
    }

    #[test]
    fn context_carries_register_values_and_history() {
        use semloc_mem::{MemPressure, PrefetchReq};
        #[derive(Default)]
        struct Spy {
            last: Option<AccessContext>,
        }
        impl Prefetcher for Spy {
            fn name(&self) -> &'static str {
                "spy"
            }
            fn on_access(
                &mut self,
                ctx: &AccessContext,
                _p: MemPressure,
                _out: &mut Vec<PrefetchReq>,
            ) {
                self.last = Some(ctx.clone());
            }
            fn storage_bytes(&self) -> usize {
                0
            }
        }
        let mut c = Cpu::new(
            CpuConfig::default(),
            Hierarchy::new(MemConfig::default(), Spy::default()),
            0,
        );
        c.instr(Instr::alu(0x100, Some(Reg(5)), None, None, 0xABCD));
        c.instr(Instr::branch(0x108, true, 0x100, None));
        c.instr(Instr::load(
            0x110,
            0x9000,
            8,
            Reg(6),
            Some(Reg(5)),
            None,
            0x1111,
        ));
        c.instr(Instr::load(0x118, 0xA000, 8, Reg(7), Some(Reg(6)), None, 0));
        let ctx = c
            .mem()
            .prefetcher()
            .last
            .clone()
            .expect("prefetcher saw the access");
        assert_eq!(ctx.pc, 0x118);
        assert_eq!(
            ctx.reg1, 0x1111,
            "src register must carry the previous load's value"
        );
        assert_eq!(ctx.last_loaded, 0x1111);
        assert_eq!(ctx.recent_addrs[0], 0x9000);
        assert_eq!(ctx.branch_history & 1, 1);
        assert_eq!(ctx.seq, 1);
    }

    #[test]
    fn in_order_issue_serializes_independent_misses() {
        // The same independent-miss stream that overlaps on the OoO core
        // must serialize on the in-order core once a miss blocks issue.
        let run = |in_order: bool| {
            let cfg = CpuConfig {
                in_order,
                ..CpuConfig::default()
            };
            let mut c = Cpu::new(cfg, Hierarchy::new(MemConfig::default(), NoPrefetch), 0);
            for i in 0..100u64 {
                // A dependent consumer after each load forces the in-order
                // pipeline to wait before issuing the next load.
                c.instr(Instr::load(
                    0x400,
                    0x10_0000 + i * 4096,
                    8,
                    Reg(1),
                    None,
                    None,
                    0,
                ));
                c.instr(Instr::alu(0x408, Some(Reg(2)), Some(Reg(1)), None, 0));
            }
            c.stats().cycles
        };
        let ooo = run(false);
        let ino = run(true);
        assert!(
            ino > ooo * 3,
            "in-order must serialize the misses (ooo {ooo}, in-order {ino})"
        );
    }

    #[test]
    fn budget_stops_consumption() {
        let mut c = Cpu::new(
            CpuConfig::default(),
            Hierarchy::new(MemConfig::default(), NoPrefetch),
            10,
        );
        for i in 0..100 {
            c.instr(Instr::alu(i * 8, None, None, None, 0));
        }
        assert_eq!(c.stats().instructions, 10);
        assert!(c.done());
    }

    fn mixed_instr(i: u64) -> Instr {
        let mut state = i
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state ^= state >> 33;
        match state % 5 {
            0 => Instr::alu(
                0x400 + (i % 16) * 8,
                Some(Reg(1)),
                Some(Reg(2)),
                None,
                state,
            ),
            1 => Instr::branch(0x480, state & 8 != 0, 0x500, None),
            2 => Instr::load(
                0x500,
                0x1_0000 + (state % 512) * 64,
                8,
                Reg((1 + state % 6) as u8),
                Some(Reg(1)),
                None,
                state,
            ),
            3 => Instr::store(0x508, 0x2_0000 + (state % 256) * 64, 8, Some(Reg(2)), None),
            _ => Instr::load(
                0x510,
                0x3_0000 + (state % 128) * 4096,
                8,
                Reg(3),
                None,
                None,
                state,
            ),
        }
    }

    #[test]
    fn step_block_matches_single_stepping() {
        use semloc_trace::{DecodedTrace, TraceBuffer, BLOCK_LEN};
        let n = 3 * BLOCK_LEN as u64 + 41; // exercise a partial tail block
        let mut buf = TraceBuffer::new();
        for i in 0..n {
            buf.push(&mixed_instr(i));
        }
        let decoded = DecodedTrace::decode(&buf);

        let mut single = cpu();
        for i in buf.iter() {
            single.instr(i);
        }
        let mut blocked = cpu();
        let mut at = 0usize;
        while at < decoded.len() {
            let end = (at + BLOCK_LEN).min(decoded.len());
            decoded.prefetch_block(end);
            blocked.step_block(&decoded.block(at, end));
            at = end;
        }
        assert_eq!(single.stats(), blocked.stats());
        assert_eq!(single.mem().stats(), blocked.mem().stats());
        assert_eq!(single.mem_accesses(), blocked.mem_accesses());

        // The full micro-architectural state must match too, not just the
        // counters: compare snapshots bit for bit.
        let mut w1 = SnapWriter::new();
        single.save(&mut w1);
        let mut w2 = SnapWriter::new();
        blocked.save(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut warm = cpu();
        for i in 0..5000 {
            warm.instr(mixed_instr(i));
        }
        let mut w = SnapWriter::new();
        warm.save(&mut w);
        let bytes = w.into_bytes();

        let mut restored = cpu();
        let mut r = SnapReader::new(&bytes);
        restored.restore(&mut r).unwrap();
        r.expect_end().unwrap();

        // Re-saving the restored core must reproduce the exact bytes.
        let mut w2 = SnapWriter::new();
        restored.save(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "save-restore-save must be stable");

        // Continuing both cores over the same suffix must stay identical.
        for i in 5000..8000 {
            warm.instr(mixed_instr(i));
            restored.instr(mixed_instr(i));
        }
        assert_eq!(warm.stats(), restored.stats());
        assert_eq!(warm.mem().stats(), restored.mem().stats());
        assert_eq!(warm.mem_accesses(), restored.mem_accesses());
    }

    #[test]
    fn snapshot_rejects_wrong_geometry() {
        let mut warm = cpu();
        for i in 0..100 {
            warm.instr(mixed_instr(i));
        }
        let mut w = SnapWriter::new();
        warm.save(&mut w);
        let bytes = w.into_bytes();
        let small = CpuConfig {
            bpred_log2_entries: 4,
            ..CpuConfig::default()
        };
        let mut other = Cpu::new(small, Hierarchy::new(MemConfig::default(), NoPrefetch), 0);
        let err = other.restore(&mut SnapReader::new(&bytes)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn finish_returns_stats_and_hierarchy() {
        let mut c = cpu();
        c.instr(Instr::load(0x400, 0x4000, 8, Reg(1), None, None, 0));
        let (stats, mem) = c.finish();
        assert_eq!(stats.instructions, 1);
        assert_eq!(mem.stats().demand_accesses, 1);
    }
}
