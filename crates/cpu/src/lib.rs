//! Trace-driven out-of-order core timing model.
//!
//! Models the gem5 configuration of Table 2 of the paper — a 4-wide
//! out-of-order x86-class core with a 192-entry ROB, 64-entry issue queue,
//! 32-entry load and store queues — as a *dependence-graph* timing model:
//! each dynamic instruction's dispatch, issue, completion and retirement
//! cycles are computed from
//!
//! * front-end bandwidth (fetch/dispatch width, branch-mispredict redirect),
//! * register dependencies (a load's consumers wait for the cache),
//! * structural resources (ROB/IQ/LQ/SQ occupancy), and
//! * the memory system ([`semloc_mem::Hierarchy`]), which bounds
//!   memory-level parallelism through its MSHR files.
//!
//! This reproduces exactly the phenomena the paper's prefetcher interacts
//! with: overlapped independent misses, serialized pointer chases, and the
//! out-of-order reordering that jitters prefetch distances (§4.3).
//!
//! The core implements [`TraceSink`], so a workload kernel drives it
//! directly and no trace is ever materialized.

// Mirror of semloc-lint rule D3 (no-unwrap); D1/D2 are mirrored via clippy.toml.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod bpred;
pub mod config;
pub mod core;
pub mod stats;

pub use bpred::Gshare;
pub use config::CpuConfig;
pub use core::Cpu;
pub use stats::CpuStats;

pub use semloc_trace::TraceSink;
