//! A gshare branch predictor.
//!
//! The paper's gem5 model includes a conventional branch predictor; its role
//! here is (a) to charge realistic front-end redirect penalties and (b) to
//! maintain the global branch-history register that feeds the prefetcher's
//! *branch history* context attribute (Table 1).

use semloc_trace::{snap_err, Addr, SnapReader, SnapWriter, Snapshot};

/// Global-history XOR PC predictor with 2-bit saturating counters.
///
/// ```rust
/// use semloc_cpu::Gshare;
///
/// let mut bp = Gshare::new(10);
/// for _ in 0..10 {
///     bp.predict_and_update(0x400, true);
/// }
/// assert!(bp.predict_and_update(0x400, true), "a constant branch is learned");
/// assert_eq!(bp.history() & 1, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    // semloc-lint: allow(snapshot-field-coverage): index mask derived from the table size at construction
    mask: u64,
    history: u16,
}

impl Gshare {
    /// A predictor with `2^log2_entries` counters, initialized weakly taken.
    pub fn new(log2_entries: u32) -> Self {
        let n = 1usize << log2_entries;
        Gshare {
            table: vec![2; n],
            mask: (n - 1) as u64,
            history: 0,
        }
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        (((pc >> 2) ^ self.history as u64) & self.mask) as usize
    }

    /// The global branch-history register (newest outcome in bit 0).
    #[inline]
    pub fn history(&self) -> u16 {
        self.history
    }

    /// Predict the branch at `pc`, then update with the actual outcome.
    /// Returns `true` when the prediction was correct.
    pub fn predict_and_update(&mut self, pc: Addr, taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = self.table[idx];
        let predicted = counter >= 2;
        self.table[idx] = match (taken, counter) {
            (true, c) if c < 3 => c + 1,
            (false, c) if c > 0 => c - 1,
            (_, c) => c,
        };
        self.history = (self.history << 1) | taken as u16;
        predicted == taken
    }
}

impl Snapshot for Gshare {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"BPRD", 1);
        w.put_u16(self.history);
        w.put_len(self.table.len());
        w.put_bytes(&self.table);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"BPRD", 1)?;
        let history = r.get_u16()?;
        let n = r.get_len()?;
        if n != self.table.len() {
            return Err(snap_err(format!(
                "gshare snapshot has {n} counters, predictor expects {}",
                self.table.len()
            )));
        }
        let table = r.get_bytes(n)?;
        if let Some(bad) = table.iter().find(|&&c| c > 3) {
            return Err(snap_err(format!("gshare counter {bad} out of 2-bit range")));
        }
        self.history = history;
        self.table.copy_from_slice(table);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_direction() {
        let mut p = Gshare::new(10);
        let mut wrong = 0;
        for _ in 0..100 {
            if !p.predict_and_update(0x400, true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 2, "constant branch mispredicted {wrong} times");
    }

    #[test]
    fn learns_an_alternating_pattern_through_history() {
        let mut p = Gshare::new(12);
        let mut wrong_tail = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            if !p.predict_and_update(0x500, taken) && i >= 200 {
                wrong_tail += 1;
            }
        }
        assert!(
            wrong_tail <= 4,
            "alternating branch not learned: {wrong_tail} late misses"
        );
    }

    #[test]
    fn history_records_outcomes_newest_first() {
        let mut p = Gshare::new(4);
        p.predict_and_update(0, true);
        p.predict_and_update(0, false);
        p.predict_and_update(0, true);
        assert_eq!(p.history() & 0b111, 0b101);
    }

    #[test]
    fn random_branches_are_hard() {
        // Sanity check that the predictor is not an oracle.
        let mut p = Gshare::new(10);
        let mut state = 0x12345678u64;
        let mut wrong = 0;
        let n = 2000;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (state >> 33) & 1 == 1;
            if !p.predict_and_update(0x600, taken) {
                wrong += 1;
            }
        }
        assert!(
            wrong > n / 4,
            "predictor suspiciously good on random stream"
        );
    }
}
