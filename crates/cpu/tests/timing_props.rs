//! Property-based tests of the out-of-order core's timing invariants.

use proptest::prelude::*;

use semloc_cpu::{Cpu, CpuConfig};
use semloc_mem::{Hierarchy, MemConfig, NoPrefetch};
use semloc_trace::{Instr, Reg, TraceSink};

fn cpu() -> Cpu<NoPrefetch> {
    Cpu::new(
        CpuConfig::default(),
        Hierarchy::new(MemConfig::default(), NoPrefetch),
        0,
    )
}

proptest! {
    /// IPC can never exceed the fetch width, and cycles grow monotonically
    /// with every consumed instruction.
    #[test]
    fn ipc_bounded_by_width(kinds in proptest::collection::vec(0u8..4, 1..500)) {
        let mut c = cpu();
        let mut last_cycles = 0;
        for (i, k) in kinds.iter().enumerate() {
            let pc = 0x400 + (i as u64 % 16) * 8;
            let instr = match k {
                0 => Instr::alu(pc, Some(Reg((i % 8) as u8)), None, None, i as u64),
                1 => Instr::load(pc, 0x10_0000 + (i as u64 * 24) % 65536, 8, Reg(1), None, None, 0),
                2 => Instr::store(pc, 0x20_0000 + (i as u64 * 40) % 65536, 8, None, Some(Reg(1))),
                _ => Instr::branch(pc, i % 3 == 0, 0x400, Some(Reg(1))),
            };
            c.instr(instr);
            prop_assert!(c.stats().cycles >= last_cycles, "cycles must be monotone");
            last_cycles = c.stats().cycles;
        }
        let s = c.stats();
        prop_assert!(s.ipc() <= CpuConfig::default().fetch_width as f64 + 1e-9);
        prop_assert_eq!(s.instructions, kinds.len() as u64);
    }

    /// A dependent ALU chain takes at least one cycle per instruction; an
    /// independent stream takes at most one cycle per instruction (plus a
    /// bounded pipeline tail).
    #[test]
    fn dependence_bounds(n in 16u64..600) {
        let mut dep = cpu();
        let mut indep = cpu();
        for i in 0..n {
            dep.instr(Instr::alu(0x400, Some(Reg(1)), Some(Reg(1)), None, i));
            indep.instr(Instr::alu(0x400, None, None, None, i));
        }
        prop_assert!(dep.stats().cycles >= n, "serial chain under 1 IPC");
        prop_assert!(indep.stats().cycles <= n / 4 + 16, "independent stream near full width");
        prop_assert!(dep.stats().cycles >= indep.stats().cycles);
    }

    /// Memory accesses reach the hierarchy exactly once per load/store, and
    /// the demand count matches the instruction mix.
    #[test]
    fn memory_access_accounting(ops in proptest::collection::vec((0u64..(1 << 20), any::<bool>()), 1..300)) {
        let mut c = cpu();
        let mut loads = 0u64;
        let mut stores = 0u64;
        for (i, &(addr, is_store)) in ops.iter().enumerate() {
            let pc = 0x500 + (i as u64 % 4) * 8;
            if is_store {
                stores += 1;
                c.instr(Instr::store(pc, addr, 8, None, None));
            } else {
                loads += 1;
                c.instr(Instr::load(pc, addr, 8, Reg(2), None, None, 0));
            }
        }
        prop_assert_eq!(c.stats().loads, loads);
        prop_assert_eq!(c.stats().stores, stores);
        prop_assert_eq!(c.mem().stats().demand_accesses, loads + stores);
        prop_assert_eq!(c.mem_accesses(), loads + stores);
    }

    /// A load's consumer never executes before the load's data is ready:
    /// with a cold DRAM miss feeding a dependent ALU chain, total cycles
    /// include the full memory latency.
    #[test]
    fn consumers_wait_for_loads(chain in 1u32..50) {
        let mut c = cpu();
        c.instr(Instr::load(0x400, 0xABC000, 8, Reg(1), None, None, 7));
        for _ in 0..chain {
            c.instr(Instr::alu(0x408, Some(Reg(1)), Some(Reg(1)), None, 0));
        }
        // 322-cycle cold miss + one cycle per dependent ALU.
        prop_assert!(c.stats().cycles >= 322 + chain as u64);
    }
}

#[test]
fn budget_is_exact() {
    for budget in [1u64, 7, 100] {
        let mut c = Cpu::new(
            CpuConfig::default(),
            Hierarchy::new(MemConfig::default(), NoPrefetch),
            budget,
        );
        for i in 0..200 {
            c.instr(Instr::alu(0x400, None, None, None, i));
        }
        assert_eq!(c.stats().instructions, budget);
    }
}

#[test]
fn branch_history_feeds_contexts() {
    use semloc_mem::{MemPressure, PrefetchReq, Prefetcher};
    use semloc_trace::AccessContext;
    #[derive(Default)]
    struct Capture(Vec<u16>);
    impl Prefetcher for Capture {
        fn name(&self) -> &'static str {
            "capture"
        }
        fn on_access(&mut self, ctx: &AccessContext, _p: MemPressure, _o: &mut Vec<PrefetchReq>) {
            self.0.push(ctx.branch_history);
        }
        fn storage_bytes(&self) -> usize {
            0
        }
    }
    let mut c = Cpu::new(
        CpuConfig::default(),
        Hierarchy::new(MemConfig::default(), Capture::default()),
        0,
    );
    // Alternate branch outcomes, loading after each branch.
    for i in 0..8u64 {
        c.instr(Instr::branch(0x400, i % 2 == 0, 0x500, None));
        c.instr(Instr::load(
            0x408,
            0x1000 + i * 64,
            8,
            Reg(1),
            None,
            None,
            0,
        ));
    }
    let histories = &c.mem().prefetcher().0;
    assert_eq!(histories.len(), 8);
    // Histories must differ over time (the BHR shifts each branch).
    let distinct: std::collections::BTreeSet<_> = histories.iter().collect();
    assert!(distinct.len() >= 4, "BHR must evolve, saw {distinct:?}");
}
