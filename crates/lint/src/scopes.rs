//! Test-scope tracking: which tokens live inside `#[cfg(test)]` /
//! `#[test]` items.
//!
//! Rules D1 and D3 apply to *library* code only; test code is free to
//! `unwrap()` and to build `HashSet`s for set-equality assertions. The
//! tracker walks the token stream once, pairing test attributes with the
//! brace block of the item they decorate:
//!
//! * `#[cfg(test)] mod tests { ... }` — the whole module body;
//! * `#[test] fn case() { ... }` — the function body;
//! * `#[cfg_attr(test, ...)]`-style attributes are treated as test-only
//!   when they mention `test` without `not` (conservative: over-marking a
//!   span as test can only *hide* a finding in code that is already
//!   test-gated under some cfg, never invent one).
//!
//! An attribute followed by a `;` before any `{` (e.g. `#[cfg(test)] use
//! x;`) decorates a non-block item and is dropped.

use crate::lexer::{Tok, Token};

/// For each token, whether it sits inside a test-gated item.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    // Brace stack: true entries are roots of test-gated blocks.
    let mut stack: Vec<bool> = Vec::new();
    let mut test_depth = 0usize;
    let mut pending_test = false;
    // Paren/bracket depth between a pending attribute and its item body,
    // so `fn f(x: [u8; 2])`'s brackets don't confuse the `{` search.
    let mut shield = 0usize;

    let mut i = 0usize;
    while i < tokens.len() {
        let in_test = test_depth > 0;
        mask[i] = in_test;
        match &tokens[i].kind {
            Tok::Punct('#') => {
                // `#[...]` or `#![...]`: scan the attribute, then decide.
                let mut j = i + 1;
                if matches!(tokens.get(j).map(|t| &t.kind), Some(Tok::Punct('!'))) {
                    j += 1; // inner attribute: never marks an item as test
                }
                if matches!(tokens.get(j).map(|t| &t.kind), Some(Tok::Punct('['))) {
                    let inner =
                        !matches!(tokens.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('[')));
                    let (end, is_test) = scan_attribute(tokens, j);
                    for m in mask.iter_mut().take(end.min(tokens.len())).skip(i) {
                        *m = in_test;
                    }
                    if !inner && is_test {
                        pending_test = true;
                        shield = 0;
                    }
                    i = end;
                    continue;
                }
            }
            Tok::Punct('(') | Tok::Punct('[') if pending_test => shield += 1,
            Tok::Punct(')') | Tok::Punct(']') if pending_test => shield = shield.saturating_sub(1),
            Tok::Punct(';') if pending_test && shield == 0 => pending_test = false,
            Tok::Punct('{') => {
                let root = pending_test && shield == 0;
                pending_test = false;
                stack.push(root);
                if root {
                    test_depth += 1;
                    mask[i] = true;
                }
                if test_depth > 0 {
                    mask[i] = true;
                }
            }
            Tok::Punct('}') => {
                if let Some(root) = stack.pop() {
                    if root {
                        test_depth = test_depth.saturating_sub(1);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    mask
}

/// Scan `[ ... ]` starting at the opening bracket index. Returns the index
/// just past the closing bracket and whether the attribute test-gates its
/// item.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].kind {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            Tok::Ident(s) => idents.push(s),
            _ => {}
        }
        j += 1;
    }
    let is_test = match idents.as_slice() {
        ["test"] => true,
        [first, rest @ ..] if *first == "cfg" || *first == "cfg_attr" => {
            rest.contains(&"test") && !rest.contains(&"not")
        }
        _ => false,
    };
    (j, is_test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn mask_for(src: &str) -> (Vec<Token>, Vec<bool>) {
        let toks = lex(src).tokens;
        let mask = test_mask(&toks);
        (toks, mask)
    }

    fn ident_in_test(src: &str, name: &str) -> Vec<bool> {
        let (toks, mask) = mask_for(src);
        toks.iter()
            .zip(&mask)
            .filter(|(t, _)| matches!(&t.kind, Tok::Ident(s) if s == name))
            .map(|(_, &m)| m)
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn lib() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }";
        assert_eq!(ident_in_test(src, "unwrap"), vec![false, true]);
    }

    #[test]
    fn test_fn_is_masked() {
        let src = "#[test]\nfn case() { x.unwrap(); }\nfn lib() { y.unwrap(); }";
        assert_eq!(ident_in_test(src, "unwrap"), vec![true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }";
        assert_eq!(ident_in_test(src, "unwrap"), vec![false]);
    }

    #[test]
    fn attribute_on_use_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { x.unwrap(); }";
        assert_eq!(ident_in_test(src, "unwrap"), vec![false]);
    }

    #[test]
    fn signature_brackets_do_not_confuse_the_body_search() {
        let src = "#[test]\nfn t(a: [u8; 2], f: fn(u8) -> u8) { x.unwrap(); }";
        assert_eq!(ident_in_test(src, "unwrap"), vec![true]);
    }

    #[test]
    fn nested_blocks_stay_masked_and_close_correctly() {
        let src =
            "#[cfg(test)]\nmod t { fn a() { if x { y.unwrap(); } } }\nfn lib() { z.unwrap(); }";
        assert_eq!(ident_in_test(src, "unwrap"), vec![true, false]);
    }

    #[test]
    fn inner_attribute_is_ignored() {
        let src = "#![cfg(feature = \"x\")]\nfn lib() { x.unwrap(); }";
        assert_eq!(ident_in_test(src, "unwrap"), vec![false]);
    }
}
