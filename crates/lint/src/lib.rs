//! `semloc-lint` — workspace static analysis for the semloc simulator.
//!
//! A dependency-free (offline-safe) lint pass with its own lightweight
//! Rust lexer. It walks every workspace crate and enforces the
//! project-specific invariants the test suite *assumes* but cannot state:
//!
//! | id | alias | what it denies |
//! |----|-------|----------------|
//! | `no-std-hash-collections` | d1 | `HashMap`/`HashSet` in sim-state crates |
//! | `no-wall-clock`           | d2 | `Instant`/`SystemTime` outside bench/criterion |
//! | `no-unwrap`               | d3 | `unwrap`/`expect`/`panic!` in sim-crate library code |
//! | `snapshot-coverage`       | d4 | run-state structs missing from checkpointing |
//! | `paper-constants`         | d5 | drift from the paper's Table 2 structural constants |
//! | `no-float-in-stats-accumulation` | d6 | `f32`/`f64` `+=` folds on sim-crate stats fields |
//! | `unsafe-audit`            | d7 | `unsafe` blocks lacking an adjacent safety-argument pragma |
//! | `snapshot-field-coverage` | d8 | manifested struct fields absent from save/restore bodies |
//! | `refcell-borrow-discipline` | d9 | RefCell guards held across `self`/re-borrow calls |
//! | `env-var-registry`        | d10 | unregistered/undocumented/dead `SEMLOC_*` env knobs |
//! | `stale-pragma`            | d11 | allow-pragmas that no longer suppress anything |
//!
//! D1–D7 match on the token stream; D8–D10 consume the item model
//! ([`model`]) — a dependency-free recursive-descent pass over the lexer
//! output that recovers structs-with-fields, impl blocks, functions and
//! `SEMLOC_*` env-read call sites. D11 runs inside the suppression pass
//! itself, after every other rule.
//!
//! Suppression is per-site via `// semloc-lint: allow(<rule>): reason`
//! pragmas (same line or the line above); `--explain <rule>` prints the
//! full rationale; `--json` and `--sarif` emit machine-readable reports.
//! See DESIGN.md §12 and §17 for the rule catalog and severity model.

pub mod lexer;
pub mod model;
pub mod rules;
pub mod sarif;
pub mod scopes;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{AllowPragma, Token};
use rules::{EnvRegistryEntry, ManifestEntry, RULES};

/// Finding severity. `Warn` findings are advisory unless `--deny-all`
/// promotes them; heuristic sub-checks (D4's composition scan) use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Deny,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One lint finding at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (see [`rules::RULES`]).
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl Finding {
    pub(crate) fn new(
        rule: &'static str,
        severity: Severity,
        file: &SourceFile,
        at: &Token,
        message: String,
    ) -> Self {
        Finding {
            rule,
            severity,
            file: file.rel_path.clone(),
            line: at.line,
            col: at.col,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}({}): {}",
            self.file,
            self.line,
            self.col,
            self.severity.label(),
            self.rule,
            self.message
        )
    }
}

/// What kind of target a source file belongs to (decides rule scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` (not `src/bin/`, not `src/main.rs`).
    LibSrc,
    /// Binary code: `src/bin/*` or `src/main.rs`.
    Bin,
    /// Integration tests under `tests/`.
    TestsDir,
    /// Criterion benches under `benches/`.
    Benches,
    /// Examples under `examples/`.
    Examples,
}

/// One workspace source file, loaded in memory (tests construct these
/// directly to lint fixture snippets without touching disk).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// `crates/<dir>` component, if any (`None` for the umbrella crate).
    pub crate_dir: Option<String>,
    pub kind: FileKind,
    pub content: String,
}

impl SourceFile {
    /// A fixture file for tests: crate dir + kind + source text.
    pub fn fixture(crate_dir: &str, kind: FileKind, rel_path: &str, content: &str) -> Self {
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_dir: Some(crate_dir.to_string()),
            kind,
            content: content.to_string(),
        }
    }
}

/// Lexed view of one file: tokens, test mask, pragmas.
#[derive(Debug)]
pub struct LexData {
    pub tokens: Vec<Token>,
    pub test_mask: Vec<bool>,
    pub pragmas: Vec<AllowPragma>,
}

impl LexData {
    pub fn of(content: &str) -> Self {
        let out = lexer::lex(content);
        let test_mask = scopes::test_mask(&out.tokens);
        LexData {
            tokens: out.tokens,
            test_mask,
            pragmas: out.pragmas,
        }
    }
}

/// The loaded workspace: every scanned source file plus the D4 manifest,
/// the D10 env-var registry, and the README text D10 cross-checks.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    pub manifest: Vec<ManifestEntry>,
    pub manifest_findings: Vec<Finding>,
    pub manifest_path: String,
    pub env_registry: Vec<EnvRegistryEntry>,
    pub env_registry_findings: Vec<Finding>,
    pub env_registry_path: String,
    /// README.md text, for D10's documentation cross-check.
    pub readme: String,
}

/// Path of the snapshot-coverage manifest, relative to the workspace root.
pub const MANIFEST_REL_PATH: &str = "crates/lint/snapshot_manifest.txt";

/// Path of the env-var registry, relative to the workspace root.
pub const ENV_REGISTRY_REL_PATH: &str = "crates/lint/env_registry.txt";

/// Vendored stand-ins for third-party crates: not our code, not scanned
/// (the criterion stub legitimately reads wall-clock time, and the stubs
/// mirror external APIs rather than project conventions).
const VENDOR_STUBS: &[&str] = &["rand", "proptest", "criterion"];

/// Load every scannable `.rs` file under the workspace root.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();

    // Umbrella crate: src/, tests/, examples/.
    for (dir, kind) in [
        ("src", FileKind::LibSrc),
        ("tests", FileKind::TestsDir),
        ("examples", FileKind::Examples),
    ] {
        collect_rs(&root.join(dir), root, None, kind, &mut files)?;
    }

    // Member crates.
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let p = entry?.path();
            if p.is_dir() {
                crate_dirs.push(p);
            }
        }
    }
    crate_dirs.sort();
    for cdir in crate_dirs {
        let name = cdir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if VENDOR_STUBS.contains(&name.as_str()) {
            continue;
        }
        for (dir, kind) in [
            ("src", FileKind::LibSrc),
            ("tests", FileKind::TestsDir),
            ("benches", FileKind::Benches),
        ] {
            collect_rs(&cdir.join(dir), root, Some(&name), kind, &mut files)?;
        }
    }

    let manifest_path_abs = root.join(MANIFEST_REL_PATH);
    let manifest_text = fs::read_to_string(&manifest_path_abs).unwrap_or_default();
    let (manifest, manifest_findings) = rules::parse_manifest(&manifest_text, MANIFEST_REL_PATH);

    let registry_text = fs::read_to_string(root.join(ENV_REGISTRY_REL_PATH)).unwrap_or_default();
    let (env_registry, env_registry_findings) =
        rules::parse_env_registry(&registry_text, ENV_REGISTRY_REL_PATH);
    let readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();

    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        manifest,
        manifest_findings,
        manifest_path: MANIFEST_REL_PATH.to_string(),
        env_registry,
        env_registry_findings,
        env_registry_path: ENV_REGISTRY_REL_PATH.to_string(),
        readme,
    })
}

/// Recursively collect `.rs` files, sorted for deterministic output.
fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_dir: Option<&str>,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, root, crate_dir, kind, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel_path = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            // `src/bin/*` and `src/main.rs` are binaries, not library code.
            let kind = if kind == FileKind::LibSrc
                && (rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs"))
            {
                FileKind::Bin
            } else {
                kind
            };
            let content = fs::read_to_string(&p)?;
            out.push(SourceFile {
                rel_path,
                crate_dir: crate_dir.map(str::to_string),
                kind,
                content,
            });
        }
    }
    Ok(())
}

/// Full lint report.
#[derive(Debug)]
pub struct LintReport {
    /// Surviving findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Findings suppressed by a matching pragma.
    pub pragmas_honored: usize,
    /// Wall time of load+lint in milliseconds, measured by the CLI (the
    /// library itself never reads a clock — see rule D2). `None` when
    /// unset; reported in the JSON summary for BENCH_lint.json.
    pub parse_ms: Option<u64>,
}

impl LintReport {
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    pub fn warn_count(&self) -> usize {
        self.findings.len() - self.deny_count()
    }

    /// Per-rule finding counts, in rule-catalog order.
    pub fn counts(&self) -> Vec<(&'static str, usize)> {
        RULES
            .iter()
            .map(|r| {
                (
                    r.id,
                    self.findings.iter().filter(|f| f.rule == r.id).count(),
                )
            })
            .collect()
    }
}

/// Run every rule over a loaded workspace.
pub fn lint(ws: &Workspace) -> LintReport {
    let lexed: Vec<LexData> = ws.files.iter().map(|f| LexData::of(&f.content)).collect();
    let pairs: Vec<(&SourceFile, &LexData)> = ws.files.iter().zip(lexed.iter()).collect();
    let ctxs = rules::analyze(&pairs);

    let mut raw: Vec<Finding> = Vec::new();
    raw.extend(ws.manifest_findings.iter().cloned());
    raw.extend(ws.env_registry_findings.iter().cloned());
    for (file, lx) in &pairs {
        raw.extend(rules::check_file(file, lx));
    }
    raw.extend(rules::check_snapshot_coverage(
        &ctxs,
        &ws.manifest,
        &ws.manifest_path,
    ));
    raw.extend(rules::check_paper_constants(&ctxs));
    raw.extend(rules::check_float_stats(&ctxs));
    raw.extend(rules::check_snapshot_field_coverage(&ctxs, &ws.manifest));
    raw.extend(rules::check_refcell_borrow_discipline(&ctxs));
    raw.extend(rules::check_env_registry(
        &ctxs,
        &ws.env_registry,
        &ws.env_registry_path,
        &ws.readme,
    ));

    // Suppression pass, tracking which pragma rule-entries earned their
    // keep — the residue drives D11 below.
    let mut used: Vec<Vec<Vec<bool>>> = pairs
        .iter()
        .map(|(_, lx)| {
            lx.pragmas
                .iter()
                .map(|p| vec![false; p.rules.len()])
                .collect()
        })
        .collect();
    let mut findings = Vec::new();
    let mut pragmas_honored = 0usize;
    for f in raw {
        let mut suppressed = false;
        if let Some(fi) = pairs.iter().position(|(file, _)| file.rel_path == f.file) {
            for (pi, p) in pairs[fi].1.pragmas.iter().enumerate() {
                if p.line != f.line && p.line + 1 != f.line {
                    continue;
                }
                for (ei, r) in p.rules.iter().enumerate() {
                    if r == "all" || rules::rule(r).is_some_and(|info| info.id == f.rule) {
                        used[fi][pi][ei] = true;
                        suppressed = true;
                    }
                }
            }
        }
        if suppressed {
            pragmas_honored += 1;
        } else {
            findings.push(f);
        }
    }

    // D11: a pragma rule-entry that suppressed zero findings is itself a
    // finding, as is one naming an unknown rule. Entries naming D11
    // itself are exempt (they suppress the findings this very pass
    // emits — flagging them would be circular).
    let mut stale: Vec<Finding> = Vec::new();
    for (fi, (file, lx)) in pairs.iter().enumerate() {
        for (pi, p) in lx.pragmas.iter().enumerate() {
            for (ei, r) in p.rules.iter().enumerate() {
                if r == "stale-pragma" || r == "d11" {
                    continue;
                }
                let message = if r != "all" && rules::rule(r).is_none() {
                    format!(
                        "pragma names unknown rule `{r}` — misspelled, or the rule was removed; \
                         fix or delete the entry"
                    )
                } else if !used[fi][pi][ei] {
                    format!(
                        "pragma entry `{r}` suppresses zero findings — the violation it \
                         justified is gone; delete the entry so the suppression cannot be \
                         inherited by future code (acknowledge with allow(stale-pragma) \
                         only if the site is scan-invisible, e.g. cfg-gated)"
                    )
                } else {
                    continue;
                };
                stale.push(Finding {
                    rule: "stale-pragma",
                    severity: Severity::Deny,
                    file: file.rel_path.clone(),
                    line: p.line,
                    col: 1,
                    message,
                });
            }
        }
    }
    // Stale-pragma findings are suppressible only by an entry naming D11
    // explicitly — `allow(all)` never satisfies D11, else any pragma
    // could launder its own staleness.
    for f in stale {
        let acknowledged = pairs
            .iter()
            .find(|(file, _)| file.rel_path == f.file)
            .map(|(_, lx)| lx.pragmas.as_slice())
            .unwrap_or(&[])
            .iter()
            .any(|p| {
                (p.line == f.line || p.line + 1 == f.line)
                    && p.rules.iter().any(|r| r == "stale-pragma" || r == "d11")
            });
        if acknowledged {
            pragmas_honored += 1;
        } else {
            findings.push(f);
        }
    }

    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    findings.dedup();

    LintReport {
        findings,
        files_scanned: ws.files.len(),
        pragmas_honored,
        parse_ms: None,
    }
}

/// Convenience for fixture tests: run the per-file rules (D1–D3) over one
/// in-memory file and apply pragma suppression.
pub fn lint_source(file: &SourceFile) -> Vec<Finding> {
    let lx = LexData::of(&file.content);
    let raw = rules::check_file(file, &lx);
    suppress(raw, &lx)
}

/// Apply pragma suppression to raw findings from a single file.
pub fn suppress(raw: Vec<Finding>, lx: &LexData) -> Vec<Finding> {
    raw.into_iter()
        .filter(|f| {
            !lx.pragmas.iter().any(|p| {
                (p.line == f.line || p.line + 1 == f.line)
                    && p.rules
                        .iter()
                        .any(|r| r == "all" || rules::rule(r).is_some_and(|info| info.id == f.rule))
            })
        })
        .collect()
}

/// Escape a string for JSON output (shared with the SARIF emitter).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the machine-readable report (stable field order, findings
/// sorted — byte-identical across runs on identical input).
pub fn to_json(report: &LintReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"version\": 1,\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"rule_count\": {},\n", RULES.len()));
    s.push_str(&format!(
        "  \"pragmas_honored\": {},\n",
        report.pragmas_honored
    ));
    if let Some(ms) = report.parse_ms {
        s.push_str(&format!("  \"parse_ms\": {ms},\n"));
    }
    s.push_str(&format!("  \"deny_findings\": {},\n", report.deny_count()));
    s.push_str(&format!("  \"warn_findings\": {},\n", report.warn_count()));
    s.push_str("  \"counts\": {");
    let counts = report.counts();
    for (i, (id, n)) in counts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{id}\": {n}"));
    }
    s.push_str("},\n");
    s.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"column\": {}, \"message\": \"{}\"}}",
            f.rule,
            f.severity.label(),
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}
