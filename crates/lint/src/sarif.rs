//! SARIF 2.1.0 output for CI annotation surfaces.
//!
//! GitHub (and most code-scanning UIs) ingest SARIF directly, turning
//! findings into inline PR annotations. The emitter mirrors `to_json`'s
//! guarantees: stable field order, findings already sorted by the lint
//! pass, byte-identical output across runs on identical input — no
//! timestamps, no absolute paths, no invocation metadata.
//!
//! Hand-rolled like everything else in this crate: the workspace is
//! offline, so no serde. The document shape is the minimum GitHub's
//! ingester requires: `version`, one `run` with a `tool.driver` carrying
//! the full rule catalog, and one `result` per finding referencing its
//! rule by index.

use crate::rules::RULES;
use crate::{json_escape, LintReport, Severity};

/// Render a [`LintReport`] as a SARIF 2.1.0 document.
pub fn to_sarif(report: &LintReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"semloc-lint\",\n");
    s.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&format!(
            "            {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"defaultConfiguration\": {{\"level\": \"{}\"}}}}",
            r.id,
            json_escape(r.alias),
            json_escape(r.summary),
            level(r.severity)
        ));
    }
    s.push_str("\n          ]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let rule_index = RULES
            .iter()
            .position(|r| r.id == f.rule)
            .unwrap_or_default();
        s.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            f.rule,
            rule_index,
            level(f.severity),
            json_escape(&f.message),
            json_escape(&f.file),
            f.line,
            f.col
        ));
    }
    if !report.findings.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

/// SARIF `level` for a finding severity.
fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Warn => "warning",
        Severity::Deny => "error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn report(findings: Vec<Finding>) -> LintReport {
        LintReport {
            findings,
            files_scanned: 1,
            pragmas_honored: 0,
            parse_ms: None,
        }
    }

    #[test]
    fn sarif_document_has_schema_rules_and_results() {
        let r = report(vec![Finding {
            rule: "no-unwrap",
            severity: Severity::Deny,
            file: "crates/core/src/lib.rs".into(),
            line: 7,
            col: 13,
            message: "`.unwrap()` in sim-crate library code".into(),
        }]);
        let doc = to_sarif(&r);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"name\": \"semloc-lint\""));
        assert!(doc.contains("\"ruleId\": \"no-unwrap\""));
        assert!(doc.contains("\"level\": \"error\""));
        assert!(doc.contains("\"uri\": \"crates/core/src/lib.rs\""));
        assert!(doc.contains("\"startLine\": 7"));
        assert!(doc.contains("\"startColumn\": 13"));
        // The full catalog rides along so annotation UIs can show summaries.
        for rule in RULES.iter() {
            assert!(doc.contains(&format!("\"id\": \"{}\"", rule.id)));
        }
    }

    #[test]
    fn warn_findings_map_to_warning_level() {
        let r = report(vec![Finding {
            rule: "snapshot-coverage",
            severity: Severity::Warn,
            file: "crates/mem/src/x.rs".into(),
            line: 1,
            col: 1,
            message: "embeds checkpointed state".into(),
        }]);
        assert!(to_sarif(&r).contains("\"level\": \"warning\""));
    }

    #[test]
    fn empty_report_is_well_formed_and_deterministic() {
        let a = to_sarif(&report(vec![]));
        let b = to_sarif(&report(vec![]));
        assert_eq!(a, b);
        assert!(a.contains("\"results\": []"));
    }
}
