//! A lightweight item model over the token stream: structs with fields,
//! impl blocks with their methods, free functions, and `SEMLOC_*` env-var
//! read sites.
//!
//! This is the layer that graduated `semloc-lint` from "grep with a
//! lexer" to structural analysis: rules D4 (snapshot coverage), D6 (float
//! stats folds), D8 (snapshot *field* coverage), D9 (RefCell borrow
//! discipline) and D10 (env-var registry) all consume it. It is a
//! dependency-free recursive-descent pass with the same philosophy as the
//! lexer: never misclassify *where* something is, tolerate anything it
//! does not understand (unknown items are simply skipped), and keep
//! enough source positions that findings land on the exact declaration.
//!
//! Deliberate simplifications:
//!
//! * Field *types* are kept as their token span plus the uppercase-initial
//!   identifiers in it — enough for embedding heuristics and direct
//!   `f32`/`f64` detection, without a type grammar.
//! * Function bodies are token-index ranges into the file's stream, not
//!   trees. Body-scanning rules (D8's save/restore reference check, D9's
//!   guard-liveness scan) walk the range with brace matching.
//! * Nested functions/closures inside a body belong to that body's range;
//!   the walker does not descend into them as separate items.

use crate::lexer::{Tok, Token};
use crate::LexData;

/// One named field of a struct declaration.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    pub name: String,
    pub line: u32,
    pub col: u32,
    /// Token-index range of the field's type (exclusive end).
    pub ty: (usize, usize),
}

/// A struct declaration with its fields.
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub line: u32,
    pub col: u32,
    /// True for `struct S { … }`; false for tuple/unit structs.
    pub named: bool,
    pub fields: Vec<FieldDecl>,
    /// Uppercase-initial identifiers appearing anywhere in the field list
    /// (the D4 composition heuristic's embedding candidates).
    pub field_type_idents: Vec<String>,
    /// Declared inside `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
}

/// A function item (free or inside an impl block).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    pub col: u32,
    /// Token-index range of the body *including* its braces (exclusive
    /// end); `None` for bodyless trait-method signatures.
    pub body: Option<(usize, usize)>,
    pub in_test: bool,
}

/// An `impl` block: `impl Target { … }` or `impl Trait for Target { … }`.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// Last path segment of the implemented trait (`Snapshot` in
    /// `impl trace::Snapshot for Cache`), `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Last path segment of the self type.
    pub target: String,
    pub line: u32,
    pub col: u32,
    pub fns: Vec<FnItem>,
    pub in_test: bool,
}

/// A `SEMLOC_*` env-var read site: `callee("SEMLOC_X", …)`.
#[derive(Debug, Clone)]
pub struct EnvRead {
    /// The environment variable name (the string literal).
    pub var: String,
    /// The identifier called with it (`var`, `var_os`, a local helper…).
    pub callee: String,
    pub line: u32,
    pub col: u32,
    pub in_test: bool,
}

/// The item model of one source file.
#[derive(Debug, Default)]
pub struct FileModel {
    pub structs: Vec<StructItem>,
    pub impls: Vec<ImplItem>,
    /// Free functions (methods live under [`ImplItem::fns`]).
    pub fns: Vec<FnItem>,
    pub env_reads: Vec<EnvRead>,
}

/// Build the item model for one lexed file.
pub fn build(lexed: &LexData) -> FileModel {
    let toks = &lexed.tokens;
    let mut m = FileModel::default();

    // Env reads are position-independent: one flat scan.
    for i in 0..toks.len() {
        let Tok::Ident(callee) = &toks[i].kind else {
            continue;
        };
        if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct('(')) {
            continue;
        }
        let Some(Token {
            kind: Tok::Str(s), ..
        }) = toks.get(i + 2)
        else {
            continue;
        };
        // A bare `"SEMLOC_"` literal is prefix-matching code (this very
        // pass, for one), not a knob name — require a non-empty suffix.
        if s.starts_with("SEMLOC_") && s.len() > "SEMLOC_".len() {
            m.env_reads.push(EnvRead {
                var: s.clone(),
                callee: callee.clone(),
                line: toks[i].line,
                col: toks[i].col,
                in_test: lexed.test_mask[i],
            });
        }
    }

    // Item walk.
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Ident(k) if k == "struct" && !is_struct_expr_context(toks, i) => {
                let (item, next) = parse_struct(lexed, i);
                if let Some(s) = item {
                    m.structs.push(s);
                }
                i = next;
            }
            Tok::Ident(k) if k == "impl" => {
                let (item, next) = parse_impl(lexed, i);
                if let Some(imp) = item {
                    m.impls.push(imp);
                }
                i = next;
            }
            Tok::Ident(k) if k == "fn" => {
                let (item, next) = parse_fn(lexed, i);
                if let Some(f) = item {
                    m.fns.push(f);
                }
                i = next;
            }
            _ => i += 1,
        }
    }

    m
}

/// `struct` appearing as part of an expression or bound (`impl Trait` has
/// no such case, but `as`-casts of fn pointers etc. could). The only
/// ambiguity that matters in practice is none — the keyword starts an
/// item — but require the *next* token to be an identifier so a stray
/// `struct` in malformed code cannot wedge the walker.
fn is_struct_expr_context(toks: &[Token], i: usize) -> bool {
    !matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Ident(_)))
}

fn parse_struct(lexed: &LexData, kw: usize) -> (Option<StructItem>, usize) {
    let toks = &lexed.tokens;
    let Some(Token {
        kind: Tok::Ident(name),
        line,
        col,
    }) = toks.get(kw + 1)
    else {
        return (None, kw + 1);
    };
    let mut j = kw + 2;
    if matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Punct('<'))) {
        j = skip_angles(toks, j);
    }
    // Skip a where clause up to the body / tuple / `;`.
    while j < toks.len()
        && !matches!(
            toks[j].kind,
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct(';')
        )
    {
        j += 1;
    }
    let mut item = StructItem {
        name: name.clone(),
        line: *line,
        col: *col,
        named: false,
        fields: Vec::new(),
        field_type_idents: Vec::new(),
        in_test: lexed.test_mask[kw],
    };
    match toks.get(j).map(|t| &t.kind) {
        Some(Tok::Punct('{')) => {
            let end = matching(toks, j, '{', '}');
            item.named = true;
            parse_named_fields(toks, j + 1, end.saturating_sub(1), &mut item);
            (Some(item), end)
        }
        Some(Tok::Punct('(')) => {
            let end = matching(toks, j, '(', ')');
            collect_uppercase(toks, j, end, &mut item.field_type_idents);
            (Some(item), end)
        }
        _ => (Some(item), j),
    }
}

/// Parse `name: Type` pairs between `start` and `end` (the braces
/// excluded). A field name is an identifier followed by a single `:` at
/// bracket depth 0; everything from past the `:` to the next depth-0 `,`
/// (or the end) is its type span. `#[…]` field attributes contribute
/// bracket depth, so their contents can never look like fields.
fn parse_named_fields(toks: &[Token], start: usize, end: usize, item: &mut StructItem) {
    let mut depth = 0i32;
    let mut k = start;
    while k < end {
        match &toks[k].kind {
            Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => {
                // `->` in fn-pointer types is not a closer.
                let arrow =
                    toks[k].kind == Tok::Punct('>') && k > 0 && toks[k - 1].kind == Tok::Punct('-');
                if !arrow {
                    depth -= 1;
                }
            }
            Tok::Ident(name)
                if depth == 0
                    && toks.get(k + 1).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                    && toks.get(k + 2).map(|t| &t.kind) != Some(&Tok::Punct(':'))
                    && (k == 0 || toks[k - 1].kind != Tok::Punct(':')) =>
            {
                // Type span: past the `:` to the next depth-0 `,`.
                let ty_start = k + 2;
                let mut t = ty_start;
                let mut tdepth = 0i32;
                while t < end {
                    match &toks[t].kind {
                        Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => tdepth += 1,
                        Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => {
                            let arrow = toks[t].kind == Tok::Punct('>')
                                && toks[t - 1].kind == Tok::Punct('-');
                            if !arrow {
                                tdepth -= 1;
                            }
                        }
                        Tok::Punct(',') if tdepth == 0 => break,
                        _ => {}
                    }
                    t += 1;
                }
                item.fields.push(FieldDecl {
                    name: name.clone(),
                    line: toks[k].line,
                    col: toks[k].col,
                    ty: (ty_start, t),
                });
                collect_uppercase(toks, ty_start, t, &mut item.field_type_idents);
                k = t;
                continue;
            }
            _ => {}
        }
        k += 1;
    }
}

fn collect_uppercase(toks: &[Token], start: usize, end: usize, out: &mut Vec<String>) {
    for t in toks.iter().take(end.min(toks.len())).skip(start) {
        if let Tok::Ident(s) = &t.kind {
            if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                out.push(s.clone());
            }
        }
    }
}

fn parse_impl(lexed: &LexData, kw: usize) -> (Option<ImplItem>, usize) {
    let toks = &lexed.tokens;
    let impl_tok = &toks[kw];
    let mut j = kw + 1;
    if matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Punct('<'))) {
        j = skip_angles(toks, j);
    }
    // Header: path idents up to `for`, then the target path.
    let mut trait_last: Option<String> = None;
    let mut target_last: Option<String> = None;
    let mut past_for = false;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Ident(s) if s == "for" => past_for = true,
            Tok::Ident(s) if s == "where" => break,
            Tok::Punct('{') => break,
            Tok::Punct(';') => return (None, j + 1), // `impl Trait for T;` — nothing to model
            Tok::Punct('<') => {
                j = skip_angles(toks, j);
                continue;
            }
            Tok::Ident(s) => {
                if past_for {
                    target_last = Some(s.clone());
                } else {
                    trait_last = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    while j < toks.len() && toks[j].kind != Tok::Punct('{') {
        j += 1;
    }
    if j >= toks.len() {
        return (None, j);
    }
    let end = matching(toks, j, '{', '}');
    // `impl Target { … }` (inherent): the "trait" path is the target.
    let (trait_name, target) = if past_for {
        (trait_last, target_last)
    } else {
        (None, trait_last)
    };
    let Some(target) = target else {
        return (None, end);
    };
    let mut item = ImplItem {
        trait_name,
        target,
        line: impl_tok.line,
        col: impl_tok.col,
        fns: Vec::new(),
        in_test: lexed.test_mask[kw],
    };
    // Methods: `fn` items at depth 1 of the impl body.
    let mut k = j + 1;
    while k < end {
        if toks[k].kind == Tok::Ident("fn".into()) {
            let (f, next) = parse_fn(lexed, k);
            if let Some(f) = f {
                item.fns.push(f);
            }
            k = next;
        } else if toks[k].kind == Tok::Punct('{') {
            // A const/static initializer block — skip it whole so nothing
            // inside is mistaken for a method.
            k = matching(toks, k, '{', '}');
        } else {
            k += 1;
        }
    }
    (Some(item), end)
}

fn parse_fn(lexed: &LexData, kw: usize) -> (Option<FnItem>, usize) {
    let toks = &lexed.tokens;
    let Some(Token {
        kind: Tok::Ident(name),
        line,
        col,
    }) = toks.get(kw + 1)
    else {
        return (None, kw + 1);
    };
    let mut j = kw + 2;
    if matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Punct('<'))) {
        j = skip_angles(toks, j);
    }
    // Parameter list.
    while j < toks.len() && toks[j].kind != Tok::Punct('(') {
        if toks[j].kind == Tok::Punct('{') || toks[j].kind == Tok::Punct(';') {
            return (None, j); // malformed; bail without consuming the brace
        }
        j += 1;
    }
    if j >= toks.len() {
        return (None, j);
    }
    j = matching(toks, j, '(', ')');
    // Return type / where clause up to the body or `;`.
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Punct('{') => {
                let end = matching(toks, j, '{', '}');
                return (
                    Some(FnItem {
                        name: name.clone(),
                        line: *line,
                        col: *col,
                        body: Some((j, end)),
                        in_test: lexed.test_mask[kw],
                    }),
                    end,
                );
            }
            Tok::Punct(';') => {
                return (
                    Some(FnItem {
                        name: name.clone(),
                        line: *line,
                        col: *col,
                        body: None,
                        in_test: lexed.test_mask[kw],
                    }),
                    j + 1,
                );
            }
            Tok::Punct('<') => {
                j = skip_angles(toks, j);
                continue;
            }
            _ => j += 1,
        }
    }
    (None, j)
}

/// Index just past the `>` matching the `<` at `open`. `->` arrows are
/// tolerated via the `-` lookbehind.
pub(crate) fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                let arrow = j > 0 && toks[j - 1].kind == Tok::Punct('-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index just past the closer matching the opener at `open`.
pub(crate) fn matching(toks: &[Token], open: usize, op: char, cl: char) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].kind == Tok::Punct(op) {
            depth += 1;
        } else if toks[j].kind == Tok::Punct(cl) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LexData;

    fn model(src: &str) -> (FileModel, LexData) {
        let lx = LexData::of(src);
        let m = build(&lx);
        (m, lx)
    }

    #[test]
    fn struct_fields_parse_with_positions_and_types() {
        let src = "pub struct Cache {\n    cfg: CacheConfig,\n    tags: Box<[u64]>,\n    ways: usize,\n}\n";
        let (m, lx) = model(src);
        assert_eq!(m.structs.len(), 1);
        let s = &m.structs[0];
        assert_eq!(s.name, "Cache");
        assert!(s.named);
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["cfg", "tags", "ways"]);
        assert_eq!(s.fields[1].line, 3);
        assert!(s.field_type_idents.contains(&"CacheConfig".into()));
        assert!(s.field_type_idents.contains(&"Box".into()));
        // Type span of `tags` covers `Box<[u64]>`.
        let (a, b) = s.fields[1].ty;
        assert!(lx.tokens[a..b]
            .iter()
            .any(|t| t.kind == Tok::Ident("Box".into())));
    }

    #[test]
    fn fn_pointer_and_generic_fields_do_not_confuse_the_parser() {
        let src = "struct S {\n    hook: fn(x: usize) -> u64,\n    map: BTreeMap<u64, Vec<(u32, u32)>>,\n    last: u8,\n}\n";
        let (m, _) = model(src);
        let names: Vec<&str> = m.structs[0]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, ["hook", "map", "last"], "{:?}", m.structs[0]);
    }

    #[test]
    fn field_attributes_are_skipped() {
        let src = "struct S {\n    #[allow(dead_code)]\n    kept: u64,\n    other: u32,\n}\n";
        let (m, _) = model(src);
        let names: Vec<&str> = m.structs[0]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, ["kept", "other"]);
    }

    #[test]
    fn tuple_and_unit_structs_model_without_fields() {
        let (m, _) = model("struct T(u64, Inner);\nstruct U;\n");
        assert_eq!(m.structs.len(), 2);
        assert!(!m.structs[0].named);
        assert!(m.structs[0].fields.is_empty());
        assert!(m.structs[0].field_type_idents.contains(&"Inner".into()));
        assert!(!m.structs[1].named);
    }

    #[test]
    fn impls_record_trait_target_and_methods() {
        let src = "impl Snapshot for Cache {\n    fn save(&self, w: &mut W) { self.tick; }\n    fn restore(&mut self, r: &mut R) -> io::Result<()> { Ok(()) }\n}\nimpl Cache {\n    fn new() -> Self { Cache }\n}\n";
        let (m, lx) = model(src);
        assert_eq!(m.impls.len(), 2);
        let snap = &m.impls[0];
        assert_eq!(snap.trait_name.as_deref(), Some("Snapshot"));
        assert_eq!(snap.target, "Cache");
        let names: Vec<&str> = snap.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["save", "restore"]);
        let (a, b) = snap.fns[0].body.unwrap();
        assert!(lx.tokens[a..b]
            .iter()
            .any(|t| t.kind == Tok::Ident("tick".into())));
        let inherent = &m.impls[1];
        assert_eq!(inherent.trait_name, None);
        assert_eq!(inherent.target, "Cache");
    }

    #[test]
    fn generic_impl_headers_resolve_last_segments() {
        let src =
            "impl<P: Prefetcher> trace::Snapshot for Hierarchy<P> { fn save(&self, w: &mut W) {} }";
        let (m, _) = model(src);
        assert_eq!(m.impls[0].trait_name.as_deref(), Some("Snapshot"));
        assert_eq!(m.impls[0].target, "Hierarchy");
    }

    #[test]
    fn free_fns_and_bodyless_signatures() {
        let src = "trait T { fn sig(&self); }\nfn free(x: u64) -> u64 { x }\n";
        let (m, _) = model(src);
        // The trait's bodyless method is picked up by the free-fn walk
        // (traits are not modeled as containers); `free` has a body.
        assert!(m.fns.iter().any(|f| f.name == "sig" && f.body.is_none()));
        assert!(m.fns.iter().any(|f| f.name == "free" && f.body.is_some()));
    }

    #[test]
    fn env_reads_capture_var_callee_and_position() {
        let src = "fn f() {\n    let a = std::env::var(\"SEMLOC_BUDGET\");\n    let b = env_u64(\"SEMLOC_ARENA_WARM\", 3);\n    let c = std::env::var_os(\"SEMLOC_TRACE_DIR\");\n    let d = format!(\"SEMLOC_NOT_A_READ\");\n}\n";
        let (m, _) = model(src);
        let vars: Vec<&str> = m.env_reads.iter().map(|e| e.var.as_str()).collect();
        assert_eq!(
            vars,
            ["SEMLOC_BUDGET", "SEMLOC_ARENA_WARM", "SEMLOC_TRACE_DIR"]
        );
        assert_eq!(m.env_reads[0].callee, "var");
        assert_eq!(m.env_reads[1].callee, "env_u64");
        assert_eq!(m.env_reads[2].line, 4);
    }

    #[test]
    fn raw_ident_fields_match_their_references() {
        let src =
            "struct S { r#type: u64 }\nimpl Snapshot for S { fn save(&self) { self.r#type; } }\n";
        let (m, lx) = model(src);
        assert_eq!(m.structs[0].fields[0].name, "r#type");
        let (a, b) = m.impls[0].fns[0].body.unwrap();
        assert!(lx.tokens[a..b]
            .iter()
            .any(|t| t.kind == Tok::Ident("r#type".into())));
    }

    #[test]
    fn test_mask_propagates_to_items() {
        let src = "struct Lib { x: u64 }\n#[cfg(test)]\nmod tests {\n    struct Fixture { y: u64 }\n    fn helper() {}\n}\n";
        let (m, _) = model(src);
        assert!(!m.structs.iter().find(|s| s.name == "Lib").unwrap().in_test);
        assert!(
            m.structs
                .iter()
                .find(|s| s.name == "Fixture")
                .unwrap()
                .in_test
        );
        assert!(m.fns.iter().find(|f| f.name == "helper").unwrap().in_test);
    }
}
