//! `semloc-lint` CLI.
//!
//! ```text
//! semloc-lint [--root <dir>] [--deny-all] [--json | --sarif]
//!             [--write-summary <path>] [--write-sarif <path>]
//! semloc-lint --explain <rule> | --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 findings at (or promoted to) deny level,
//! 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use semloc_lint::rules::{rule, RULES};
use semloc_lint::sarif::to_sarif;
use semloc_lint::{lint, load_workspace, to_json, Severity};

fn usage() -> &'static str {
    "semloc-lint: workspace static analysis (determinism, snapshot coverage, paper constants)

USAGE:
    semloc-lint [OPTIONS]

OPTIONS:
    --root <dir>            Workspace root (default: auto-detect from cwd)
    --deny-all              Promote warn-level findings to deny (CI mode)
    --json                  Emit the machine-readable JSON report on stdout
    --sarif                 Emit a SARIF 2.1.0 report on stdout (CI annotations)
    --write-summary <path>  Also write the JSON report to <path>
    --write-sarif <path>    Also write the SARIF report to <path>
    --explain <rule>        Print a rule's full rationale (id or an alias d1..d11)
    --list-rules            List the rule catalog
    -h, --help              This help
"
}

/// Walk up from `start` to the first directory whose Cargo.toml declares
/// a `[workspace]`.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut json = false;
    let mut sarif = false;
    let mut summary_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--write-summary" => match it.next() {
                Some(p) => summary_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--write-summary needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--write-sarif" => match it.next() {
                Some(p) => sarif_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--write-sarif needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in &RULES {
                    println!(
                        "{:<26} ({})  [{}]  {}",
                        r.id,
                        r.alias,
                        r.severity.label(),
                        r.summary
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                return match it.next().and_then(|id| rule(id)) {
                    Some(r) => {
                        println!("{} ({}) — {}\n\n{}", r.id, r.alias, r.summary, r.explain);
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!(
                            "--explain needs a known rule id; one of: {}",
                            RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
                        );
                        ExitCode::from(2)
                    }
                };
            }
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
        Some(r) => r,
        None => {
            eprintln!(
                "could not locate a workspace root (no Cargo.toml with [workspace]); pass --root"
            );
            return ExitCode::from(2);
        }
    };

    if json && sarif {
        eprintln!("--json and --sarif are mutually exclusive (use --write-sarif to get both)");
        return ExitCode::from(2);
    }

    // Timing lives here in the CLI, not the library: the lint pass itself
    // is clock-free (its own rule D2), but BENCH_lint.json tracks how
    // long a full workspace parse+lint takes as the rule set grows.
    #[allow(clippy::disallowed_methods)]
    // semloc-lint: allow(no-wall-clock): CLI-only measurement for BENCH_lint.json; never reaches simulation output
    let t0 = std::time::Instant::now();

    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("failed to load workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut report = lint(&ws);
    report.parse_ms = Some(t0.elapsed().as_millis() as u64);
    let rendered = to_json(&report);

    if let Some(path) = &summary_path {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, to_sarif(&report)) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{rendered}");
    } else if sarif {
        print!("{}", to_sarif(&report));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "semloc-lint: {} files, {} rules, {} deny / {} warn finding(s), {} pragma(s) honored",
            report.files_scanned,
            RULES.len(),
            report.deny_count(),
            report.warn_count(),
            report.pragmas_honored
        );
    }

    let failing = if deny_all {
        report.findings.len()
    } else {
        report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    };
    if failing > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
