//! A lightweight Rust lexer: just enough to tokenize real-world Rust for
//! line-oriented static analysis without any dependencies.
//!
//! The lexer's one job is to never misclassify *where code is*: rule
//! matching happens on the token stream, so anything that looks like a
//! violation inside a string literal, a (possibly nested) block comment, a
//! raw string, or a doc comment must not produce tokens. It also collects
//! `// semloc-lint: allow(...)` suppression pragmas with the line they
//! govern, and it is the substrate for the `#[cfg(test)]` scope tracker in
//! [`crate::scopes`].
//!
//! Deliberate simplifications (documented, tested):
//!
//! * Numeric literals keep their value only when they are plain integers
//!   (decimal / hex / octal / binary, `_` separators, type suffixes); float
//!   and malformed literals become valueless number tokens.
//! * Raw identifiers (`r#type`) lex as a single identifier *including* the
//!   `r#` prefix, so `let r#struct = …` can never be mistaken for a
//!   `struct` keyword by the item model, while a field named `r#type` and
//!   its `self.r#type` references still compare equal.
//! * Macro bodies are lexed like ordinary code (conservative: a `panic!`
//!   inside `macro_rules!` counts as a panic site).
//! * Plain/raw/byte *string* literals keep their text (as [`Tok::Str`]) so
//!   the env-var registry rule (D10) can see `std::env::var("SEMLOC_…")`
//!   call sites; rules must still never match *identifiers* inside them.

/// One lexical token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
    pub col: u32,
}

/// Token kind. Identifier-shaped text inside literals is deliberately
/// unreachable by rules: string literals keep their text only in the
/// dedicated [`Tok::Str`] variant (matched exclusively by the env-var
/// registry rule against `SEMLOC_*` names), never as [`Tok::Ident`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers keep their `r#` prefix).
    Ident(String),
    /// Single punctuation character (`.`, `!`, `{`, `<`, ...).
    Punct(char),
    /// Integer literal, with its value when it parses as `u64`.
    Int(Option<u64>),
    /// String literal (plain, raw, or byte) with its uninterpreted text
    /// (escape sequences are kept verbatim).
    Str(String),
    /// Any other literal: char, byte char, float.
    Lit,
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
}

/// A `// semloc-lint: allow(rule, ...)` pragma found while lexing.
///
/// `line` is the line the comment sits on; the suppression applies to
/// findings on that line and on the immediately following line (so the
/// pragma can trail the offending expression or sit on its own line just
/// above it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowPragma {
    pub line: u32,
    pub rules: Vec<String>,
}

/// Lexer output: the token stream plus every suppression pragma seen.
#[derive(Debug, Default)]
pub struct LexOut {
    pub tokens: Vec<Token>,
    pub pragmas: Vec<AllowPragma>,
}

/// Tokenize `src`, collecting suppression pragmas along the way.
pub fn lex(src: &str) -> LexOut {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: LexOut,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: LexOut::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advance one byte, maintaining line/column. Multi-byte UTF-8
    /// continuation bytes do not advance the column, so columns stay
    /// *approximately* right in the presence of non-ASCII source.
    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: Tok, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, line, col });
    }

    fn run(mut self) -> LexOut {
        while let Some(b) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.bump();
                    let text = self.string_body();
                    self.push(Tok::Str(text), line, col);
                }
                b'\'' => self.char_or_lifetime(line, col),
                b'r' | b'b' if self.raw_or_byte_literal(line, col) => {}
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(line, col),
                b'0'..=b'9' => self.number(line, col),
                _ => {
                    self.bump();
                    // Multi-byte UTF-8 puncts are rare and never rule
                    // targets; collapse them to their lead byte as char.
                    self.push(Tok::Punct(b as char), line, col);
                }
            }
        }
        self.out
    }

    /// `// ...` including doc comments. Pragmas are only honored in plain
    /// `//` comments (a doc comment describing the pragma syntax must not
    /// accidentally suppress findings).
    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        let body = text.trim_start_matches('/');
        let is_doc = text.starts_with("///") || text.starts_with("//!");
        if !is_doc {
            if let Some(p) = parse_pragma(body, line) {
                self.out.pragmas.push(p);
            }
        }
    }

    /// `/* ... */` with nesting (Rust block comments nest).
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Body of a `"..."` string (opening quote already consumed). Returns
    /// the uninterpreted text between the quotes.
    fn string_body(&mut self) -> String {
        let start = self.pos;
        let mut end = self.pos;
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
            end = self.pos;
        }
        String::from_utf8_lossy(&self.src[start..end]).into_owned()
    }

    /// `'a'` / `'\n'` char literals vs `'a` lifetimes.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // opening '
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume the backslash and the
                // escaped character, then scan to the closing quote
                // (covers \u{...} of any length and \' itself).
                self.bump();
                self.bump();
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(Tok::Lit, line, col);
            }
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 => {
                // `'x'` is a char literal; `'x` followed by anything else
                // is a lifetime.
                if self.peek(1) == Some(b'\'') && c != b'_' {
                    self.bump();
                    self.bump();
                    self.push(Tok::Lit, line, col);
                } else if self.peek(1) == Some(b'\'') {
                    // `'_'` — the underscore char literal.
                    self.bump();
                    self.bump();
                    self.push(Tok::Lit, line, col);
                } else {
                    while let Some(b) = self.peek(0) {
                        if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    // A trailing quote means this was a char literal whose
                    // payload is longer than one byte (multi-byte UTF-8
                    // like 'é'), not a lifetime: without this, the closing
                    // quote would start a bogus new literal and desync the
                    // stream ("lifetime in generic position" regression).
                    if self.peek(0) == Some(b'\'') {
                        self.bump();
                        self.push(Tok::Lit, line, col);
                    } else {
                        self.push(Tok::Lifetime, line, col);
                    }
                }
            }
            _ => {
                // Punctuation char literal such as '(' or '\''-less junk;
                // consume one char and an optional closing quote.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(Tok::Lit, line, col);
            }
        }
    }

    /// Try to lex `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`, or
    /// a raw identifier `r#type` starting at an `r`/`b`. Returns false if
    /// it is just an ordinary identifier.
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> bool {
        let mut ahead = 1usize;
        let first = self.peek(0);
        if first == Some(b'b') {
            match self.peek(1) {
                Some(b'\'') => {
                    // Byte char literal b'x' / b'\n'.
                    self.bump();
                    self.bump();
                    if self.peek(0) == Some(b'\\') {
                        self.bump();
                    }
                    while let Some(b) = self.bump() {
                        if b == b'\'' {
                            break;
                        }
                    }
                    self.push(Tok::Lit, line, col);
                    return true;
                }
                Some(b'"') => {
                    self.bump();
                    self.bump();
                    let text = self.string_body();
                    self.push(Tok::Str(text), line, col);
                    return true;
                }
                Some(b'r') => ahead = 2,
                _ => return false,
            }
        }
        // At `r` (ahead = 1) or `br` (ahead = 2): raw string?
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some(b'"') {
            // `r#ident` (exactly one hash, then an identifier start) is a
            // raw identifier: lex it as one Ident *keeping* the `r#`, so a
            // keyword-named binding (`let r#struct = …`) can never be
            // mistaken for the keyword, while `self.r#type` references
            // still compare equal to an `r#type` field declaration.
            if ahead == 1
                && hashes == 1
                && self
                    .peek(2)
                    .is_some_and(|b| b == b'_' || b.is_ascii_alphabetic() || b >= 0x80)
            {
                self.bump(); // r
                self.bump(); // #
                let start = self.pos;
                while let Some(b) = self.peek(0) {
                    if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let name = format!("r#{}", String::from_utf8_lossy(&self.src[start..self.pos]));
                self.push(Tok::Ident(name), line, col);
                return true;
            }
            return false;
        }
        for _ in 0..(ahead + hashes + 1) {
            self.bump();
        }
        let start = self.pos;
        let mut end = self.pos;
        // Scan for `"` followed by `hashes` hashes.
        'scan: while let Some(b) = self.bump() {
            if b == b'"' {
                for h in 0..hashes {
                    if self.peek(h) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            end = self.pos;
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push(Tok::Str(text), line, col);
        true
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap_or("")
            .to_string();
        self.push(Tok::Ident(s), line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else if b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                // `1.5` continues the literal; `0..n` and `1.max(..)` do not.
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        self.push(Tok::Int(parse_int(text)), line, col);
    }
}

/// Parse an integer literal's value: radix prefixes, `_` separators and
/// type suffixes allowed. Returns `None` for floats or out-of-range values.
fn parse_int(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(d) = clean.strip_prefix("0x").or(clean.strip_prefix("0X")) {
        (16, d)
    } else if let Some(d) = clean.strip_prefix("0o") {
        (8, d)
    } else if let Some(d) = clean.strip_prefix("0b") {
        (2, d)
    } else {
        (10, clean.as_str())
    };
    // Strip a type suffix (usize, u64, i32, ...): cut at the first char
    // that is not a digit of the radix.
    let end = digits
        .char_indices()
        .find(|&(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(digits.len());
    let (num, suffix) = digits.split_at(end);
    const SUFFIXES: [&str; 12] = [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    if !suffix.is_empty() && !SUFFIXES.contains(&suffix) {
        return None; // float (`5e3`, `2f64`) or malformed
    }
    u64::from_str_radix(num, radix).ok()
}

/// Parse `semloc-lint: allow(rule-a, rule-b): optional reason` from a
/// comment body (leading slashes already stripped).
fn parse_pragma(body: &str, line: u32) -> Option<AllowPragma> {
    let body = body.trim_start();
    let rest = body.strip_prefix("semloc-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    Some(AllowPragma { line, rules })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_idents() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap /* nested HashMap */ still comment */
            let a = "HashMap::new()";
            let b = r#"HashMap"#;
            let c = b"HashMap";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
    }

    #[test]
    fn lifetimes_do_not_eat_following_code() {
        let ids = idents("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literals_lex_as_literals() {
        let toks = lex(r"let c = 'x'; let q = '\''; let u = '\u{1F600}'; let n = '_';").tokens;
        let lits = toks.iter().filter(|t| t.kind == Tok::Lit).count();
        assert_eq!(lits, 4);
    }

    #[test]
    fn int_values_parse() {
        let toks = lex("16 * 1024, 0x40, 2048usize, 1 << 11, 1_000, 1.5").tokens;
        let ints: Vec<Option<u64>> = toks
            .iter()
            .filter_map(|t| match t.kind {
                Tok::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(
            ints,
            vec![
                Some(16),
                Some(1024),
                Some(0x40),
                Some(2048),
                Some(1),
                Some(11),
                Some(1000),
                None
            ]
        );
    }

    #[test]
    fn pragma_parses_with_reason() {
        let out = lex("let x = m.get(k); // semloc-lint: allow(no-unwrap, d1): keyed access only");
        assert_eq!(out.pragmas.len(), 1);
        assert_eq!(out.pragmas[0].rules, vec!["no-unwrap", "d1"]);
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        let out = lex("/// semloc-lint: allow(no-unwrap)\nfn f() {}");
        assert!(out.pragmas.is_empty());
    }

    #[test]
    fn raw_ident_r_does_not_break_lexing() {
        let ids = idents("let r#type = 1; let rx = r; HashMap");
        assert!(ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn raw_idents_lex_as_single_idents_with_prefix() {
        // `r#type` is ONE identifier (with its prefix), so a declaration
        // and a field access spell the same token, and `r#struct` can
        // never satisfy a `== "struct"` keyword check in the item model.
        let ids = idents("struct S { r#type: u64 }\nfn f(s: &S) -> u64 { s.r#type }");
        assert_eq!(
            ids.iter().filter(|s| s.as_str() == "r#type").count(),
            2,
            "{ids:?}"
        );
        let ids = idents("let r#struct = 1; let r#fn = 2;");
        assert!(ids.contains(&"r#struct".to_string()), "{ids:?}");
        assert!(!ids.contains(&"struct".to_string()), "{ids:?}");
    }

    #[test]
    fn raw_ident_does_not_shadow_raw_strings() {
        // `r#"..."#` must still lex as a string, not a raw identifier.
        let out = lex(r###"let a = r#"text"#; let b = r#raw_id;"###);
        assert!(out.tokens.iter().any(|t| t.kind == Tok::Str("text".into())));
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == Tok::Ident("r#raw_id".into())));
    }

    #[test]
    fn lifetimes_in_generic_position_stay_lifetimes() {
        let out = lex("fn f<'a, 'b: 'a>(x: &'a str, y: &'b [u8]) -> &'a str { x }");
        let lifetimes = out
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Lifetime)
            .count();
        assert_eq!(lifetimes, 6, "{:?}", out.tokens);
        // And the stream stays aligned: the trailing body ident survives.
        let ids = idents("impl<'a> Tr<'a> for S<'a> { fn g(&'a self) { h.unwrap(); } }");
        assert!(ids.contains(&"unwrap".to_string()), "{ids:?}");
    }

    #[test]
    fn multibyte_char_literal_is_not_a_lifetime() {
        // 'é' is a char literal; misreading it as a lifetime leaves the
        // closing quote to start a phantom literal and desync everything
        // after it.
        let ids = idents("let c = 'é'; x.unwrap()");
        assert!(ids.contains(&"unwrap".to_string()), "{ids:?}");
        let lifetimes = lex("let c = 'é';")
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Lifetime)
            .count();
        assert_eq!(lifetimes, 0);
    }

    #[test]
    fn string_literals_keep_their_text() {
        let out = lex(r#"std::env::var("SEMLOC_BUDGET"); let b = b"bytes";"#);
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == Tok::Str("SEMLOC_BUDGET".into())));
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == Tok::Str("bytes".into())));
        // Escapes are kept verbatim, not interpreted.
        let out = lex(r#"let s = "a\nb";"#);
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == Tok::Str("a\\nb".into())));
    }
}
