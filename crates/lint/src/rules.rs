//! The rule set: D1–D5 from launch, D6 (no-float-in-stats-accumulation)
//! from the block-replay work, D7 (unsafe-audit) from the acceleration
//! layer, and the item-model rules D8–D11 (snapshot field coverage,
//! RefCell borrow discipline, the env-var registry, stale pragmas).
//!
//! Each rule documents *why* it exists in its `explain` text (shown by
//! `semloc-lint --explain <rule>`): the project's correctness story rests
//! on bit-identical determinism (golden stat digests, the spec-vs-core
//! differential oracle, checkpoint/restore fidelity), and these rules make
//! the assumptions behind that story statically checkable.
//!
//! D1–D3 and D7 match directly on the token stream; D4, D6 and D8–D10
//! consume the item model ([`crate::model`]) built once per file by
//! [`analyze`]. D11 lives in the suppression pass itself
//! (`crate::lint`), because a pragma's staleness is only known after
//! every other rule has run.

use crate::lexer::{Tok, Token};
use crate::model::{self, FileModel};
use crate::{FileKind, Finding, LexData, Severity, SourceFile};

/// Crates holding simulation state: iteration order, panics and hidden
/// state in these crates can silently break golden digests.
pub const SIM_CRATES: &[&str] = &["core", "mem", "cpu", "bandit", "baselines", "spec", "trace"];

/// Crates allowed to read wall-clock time (measurement harnesses).
pub const WALL_CLOCK_CRATES: &[&str] = &["bench", "criterion"];

/// Crates sharing `Rc<RefCell<…>>` state (the shared-L2 handle), where
/// rule D9 polices guard lifetimes.
pub const REFCELL_CRATES: &[&str] = &["mem", "harness"];

/// Static description of one rule.
pub struct RuleInfo {
    /// Stable rule id, used in findings, pragmas and JSON output.
    pub id: &'static str,
    /// Short alias accepted in pragmas (`d1`..`d11`).
    pub alias: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
    pub explain: &'static str,
}

/// The rule catalog.
pub const RULES: [RuleInfo; 11] = [
    RuleInfo {
        id: "no-std-hash-collections",
        alias: "d1",
        severity: Severity::Deny,
        summary: "sim-state crates must not use std HashMap/HashSet",
        explain: "\
std's HashMap/HashSet randomize their hash seed per process, so their
iteration order differs between runs. Any map whose iteration order can
reach statistics, prediction order, or serialized state silently breaks
bit-identical reproducibility (golden digest 0xe1cb22f196f55582, the
spec-vs-core differential oracle, checkpoint fidelity). In sim-state
crates (core, mem, cpu, bandit, baselines, spec, trace), use BTreeMap,
Vec, or index tables instead. A map that is provably keyed-access-only
with a fixed-seed hasher may be kept with a pragma:
  // semloc-lint: allow(no-std-hash-collections): <why order never leaks>
Scope: library and binary code of sim crates; #[cfg(test)] code is exempt
(tests only use hash sets for order-insensitive set equality).",
    },
    RuleInfo {
        id: "no-wall-clock",
        alias: "d2",
        severity: Severity::Deny,
        summary: "no Instant::now/SystemTime outside bench/criterion",
        explain: "\
Wall-clock reads make simulation output depend on host timing. The
simulator models its own clock; only the measurement crates (bench,
criterion) and benches/ targets may read real time. Everywhere else,
Instant and SystemTime are denied — including test code, where a timing
assertion would be flaky by construction.",
    },
    RuleInfo {
        id: "no-unwrap",
        alias: "d3",
        severity: Severity::Deny,
        summary: "no unwrap/expect/panic in sim-crate library code",
        explain: "\
A panic path in library code of a sim crate can take down a whole matrix
run and, worse, hides the error taxonomy the harness relies on (typed
io::Errors for snapshot/trace corruption, SpeedupError for degenerate
stats). Library (non-test, non-bin) code of sim crates must return typed
errors or use infallible indexing. Flagged: .unwrap(), .expect(),
panic!, unreachable!, todo!, unimplemented!. Not flagged: assert!
(constructor precondition checks documented under '# Panics' are
deliberate API contracts). Provably-unreachable sites keep a pragma with
a one-line justification:
  // semloc-lint: allow(no-unwrap): <the invariant that makes this safe>",
    },
    RuleInfo {
        id: "snapshot-coverage",
        alias: "d4",
        severity: Severity::Deny,
        summary: "every run-state struct must be checkpoint-covered and manifested",
        explain: "\
Checkpoint/restore (PR 4) only stays exact if *every* struct holding
mutable run state participates in snapshotting. The source of truth is
crates/lint/snapshot_manifest.txt: each entry names a sim-crate struct
and its coverage mechanism ('snapshot' for `impl Snapshot for X`,
'state' for a `fn save_state` override inside an `impl ... for X`
block). The rule fails when (a) a manifest entry has no matching
coverage in its crate, (b) a covered struct is missing from the
manifest, or (c) — heuristic, warn-level — a non-test struct embeds a
manifested state type in its fields without being covered itself, which
is how new state silently escapes checkpointing. Fix (c) by
implementing Snapshot and adding the struct to the manifest, or pragma
the declaration if the field is genuinely derived/transient state:
  // semloc-lint: allow(snapshot-coverage): <why this is not run state>",
    },
    RuleInfo {
        id: "paper-constants",
        alias: "d5",
        severity: Severity::Deny,
        summary: "Table 2 structural constants must match the paper",
        explain: "\
The paper (Peled et al., ISCA 2015, Table 2) fixes the prefetcher's
structural constants: 2K-entry CST with 4 links, 16K-entry reducer (8x
the CST), 50-entry history queue, 128-entry prefetch queue, and the
18-50-access bell reward window. Experiments and docs all assume these
defaults; silent drift would invalidate every pinned figure. The rule
re-parses crates/core/src/config.rs (Default impl), crates/core/src/cst.rs
(LINKS), crates/spec/src/tables.rs (SPEC_LINKS) and
crates/bandit/src/reward.rs (BellReward::new literals in paper_default)
and checks the values, power-of-two table sizes, the reducer = 8x CST
ratio, and that the bell window fits inside the history queue. A
deliberate sweep default may be annotated:
  // semloc-lint: allow(paper-constants): <why the default departs>",
    },
    RuleInfo {
        id: "no-float-in-stats-accumulation",
        alias: "d6",
        severity: Severity::Deny,
        summary: "no f32/f64 `+=` folds on stats-struct fields",
        explain: "\
Floating-point addition is not associative, so a float accumulator's
value depends on fold order — and the harness folds statistics in
several orders that must all agree bit-for-bit: per-instruction
streaming, per-block batched stepping (block-local fold + one merge),
shard-pool parallel cells, and checkpoint/restore replays. An f32/f64
`+=` on a stats field silently ties the golden digest to whichever
order ran. Stats structs (any sim-crate struct named *Stats) must
accumulate in integers (counts, cycle sums, fixed-point) and derive
rates as f64 *methods* at read time — IPC, MPKI and hit-rate getters
are fine; accumulating them is not. The check infers field types from
the struct declarations (light inference: direct f32/f64 fields) and
flags every `.field +=` fold on such a field. A field that provably
never reaches a digest or report may be kept with a pragma:
  // semloc-lint: allow(no-float-in-stats-accumulation): <why order never leaks>",
    },
    RuleInfo {
        id: "unsafe-audit",
        alias: "d7",
        severity: Severity::Deny,
        summary: "every unsafe block needs an adjacent safety-argument pragma",
        explain: "\
The acceleration layer (crates/accel) is the only place the workspace
uses `unsafe` — SIMD pointer intrinsics and `#[target_feature]` dispatch.
Each such block is trusted code on the bit-identical hot path: a missed
bounds argument corrupts simulation state silently instead of panicking,
which the golden digest would only catch after the fact. Every `unsafe {`
block in non-test code must therefore carry its safety argument right
next to it, machine-checkably, as a pragma on the same line or the line
above:
  // semloc-lint: allow(unsafe-audit): <why the operation is sound>
The argument should name the invariant that makes the operation in the
block sound (e.g. which bounds check covers a raw load, or why a CPU
feature is known present at a call site). Test code is exempt; vendor
stubs are not scanned.",
    },
    RuleInfo {
        id: "snapshot-field-coverage",
        alias: "d8",
        severity: Severity::Deny,
        summary: "every field of a manifested Snapshot struct must appear in save AND restore",
        explain: "\
Rule D4 proves a state struct *has* a Snapshot impl; it says nothing
about whether the impl is *complete*. The failure mode D8 closes: a new
field is added to a manifested struct, `save`/`restore` are not updated,
the struct still round-trips without error — and every SEMLOC-CKPT /
MCCK checkpoint silently resumes with the new field reset to its
constructed value, diverging from an uninterrupted run. The rule walks
the item model: for every snapshot-mechanism manifest entry whose
declaration is a named-field struct, each field identifier must be
referenced somewhere in BOTH the `save` body and the `restore` body of
the matching `impl Snapshot` (helper delegation like
`self.table.save_into(w)` counts — the field name appears). Fields that
are genuinely construction-time configuration or derived/rebuildable
state carry a per-field pragma on the declaration line (or the line
above):
  // semloc-lint: allow(snapshot-field-coverage): <why this field is not run state>
Enum and tuple-struct snapshot targets are out of scope (no named
fields). The meta-test suite seeds a mutation — deleting one field
reference from a real save body — and asserts the lint catches it, so
the rule itself cannot silently rot.",
    },
    RuleInfo {
        id: "refcell-borrow-discipline",
        alias: "d9",
        severity: Severity::Deny,
        summary: "no RefCell borrow guard held across a self/shared-handle call",
        explain: "\
The multi-core mode shares one L2 between cores through
`Rc<RefCell<SharedL2>>` (crates/mem shared_l2.rs, crates/harness mc.rs).
RefCell defers borrow checking to runtime: a `borrow_mut()` guard that
is still alive when control re-enters the same cell — via a method on
`self` that also borrows, or via a second `.borrow()` on any handle —
panics at runtime, and only on the schedule that actually hits the
re-entrant path (exactly the kind of latent bug an interference search
surfaces in production, not in CI). In the RefCell-sharing crates (mem,
harness), rule D9 flags a borrow guard *bound to a local*
(`let g = h.borrow_mut();`) when, before the guard's enclosing block
ends (or an explicit `drop(g)`), the function makes a direct method call
on `self` or takes another `.borrow()`/`.borrow_mut()`. The sanctioned
patterns are temporaries (`h.borrow_mut().step(…)` — the guard dies at
the statement's end) and tight scopes (`{ let g = h.borrow_mut(); … }`
closed before the next call). A guard that provably cannot re-enter may
be kept with a pragma:
  // semloc-lint: allow(refcell-borrow-discipline): <why no call in scope can re-borrow>",
    },
    RuleInfo {
        id: "env-var-registry",
        alias: "d10",
        severity: Severity::Deny,
        summary:
            "every SEMLOC_* env read must be registered and documented; every registry entry live",
        explain: "\
Pythia's lesson (PAPERS.md, arXiv 2109.12021) is that configurability
explodes silently: every knob multiplies the state that must stay
consistent across checkpoint, replay, and CI. This workspace's knobs
are SEMLOC_* environment variables, and D10 keeps them from escaping
the documentation the way unregistered state once escaped
checkpointing. Three checks, cross-referenced like D4's manifest: (a)
every `SEMLOC_*` read site in non-test code — any call whose first
argument is a `\"SEMLOC_…\"` literal, e.g. `std::env::var`,
`std::env::var_os`, or a local helper — must name a variable listed in
crates/lint/env_registry.txt; (b) the same variable must be documented
in README.md; (c) every registry entry must have at least one live read
site — a deleted knob must leave the registry, or the registry rots
into fiction. Register a new variable by adding
  SEMLOC_MY_KNOB  <one-line description>
to the registry and documenting it in the README. `set_var`/`remove_var`
sites are writes, not reads, and do not count.",
    },
    RuleInfo {
        id: "stale-pragma",
        alias: "d11",
        severity: Severity::Deny,
        summary: "an allow(...) pragma that suppresses zero findings is itself a finding",
        explain: "\
Every `// semloc-lint: allow(<rule>): <why>` pragma is a standing claim
that a specific violation exists at that line and is justified. When the
code under a pragma is refactored until the violation disappears, the
pragma keeps making its claim — and readers (and future lint-rule
authors) keep believing the site is dangerous. Worse, a stale pragma is
a loaded gun: new code drifting onto that line inherits a suppression it
never argued for. D11 closes the loop: after all other rules run, any
pragma rule-entry that suppressed zero findings is itself a deny-level
finding — delete the pragma (or the dead rule name inside it). A pragma
naming an unknown rule is flagged the same way. This is what keeps the
justified-pragma count in BENCH_lint.json an honest audit trail rather
than a high-water mark. In the rare case a pragma must outlive its
finding (e.g. a cfg-gated violation the scan cannot see), suppress the
staleness finding itself, explicitly:
  // semloc-lint: allow(stale-pragma): <why the suppressed site is cfg-invisible>
(`allow(all)` never satisfies D11 — staleness must be acknowledged by
name.)",
    },
];

/// Look up a rule by id or alias.
pub fn rule(id_or_alias: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.id == id_or_alias || r.alias == id_or_alias)
}

fn is_sim_crate(file: &SourceFile) -> bool {
    file.crate_dir
        .as_deref()
        .is_some_and(|c| SIM_CRATES.contains(&c))
}

// ---------------------------------------------------------------------------
// The analysis context: lexed tokens + item model per file
// ---------------------------------------------------------------------------

/// One file with its lexed view and item model — the input to every
/// cross-file rule.
pub struct FileCtx<'a> {
    pub file: &'a SourceFile,
    pub lex: &'a LexData,
    pub model: FileModel,
}

/// Build the item model for every file. Rules D4, D6, D8, D9 and D10 all
/// share the result; the model is built exactly once per file.
pub fn analyze<'a>(pairs: &[(&'a SourceFile, &'a LexData)]) -> Vec<FileCtx<'a>> {
    pairs
        .iter()
        .map(|(file, lex)| FileCtx {
            file,
            lex,
            model: model::build(lex),
        })
        .collect()
}

/// D1–D3, D7: single-file token rules. `lexed` must come from `file.content`.
pub fn check_file(file: &SourceFile, lexed: &LexData) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    let d1_applies = is_sim_crate(file) && matches!(file.kind, FileKind::LibSrc | FileKind::Bin);
    let d2_applies = !file
        .crate_dir
        .as_deref()
        .is_some_and(|c| WALL_CLOCK_CRATES.contains(&c))
        && file.kind != FileKind::Benches;
    let d3_applies = is_sim_crate(file) && file.kind == FileKind::LibSrc;
    let d7_applies = file.kind != FileKind::TestsDir;

    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.kind else { continue };
        let in_test = lexed.test_mask[i];

        if d1_applies && !in_test && (name == "HashMap" || name == "HashSet") {
            out.push(Finding::new(
                "no-std-hash-collections",
                Severity::Deny,
                file,
                t,
                format!(
                    "std::collections::{name} in sim-state crate `{}`: iteration order is \
                     nondeterministic; use BTreeMap/Vec/an index table, or pragma a \
                     provably keyed-access-only fixed-seed map",
                    file.crate_dir.as_deref().unwrap_or("?")
                ),
            ));
        }

        // D7: every `unsafe {` block in non-test code must carry an
        // adjacent safety-argument pragma. The pragma *is* the audit
        // record: a justified block suppresses this finding via the
        // normal pragma machinery, an unjustified one survives to deny.
        // `unsafe fn`/`unsafe impl` headers are declarations, not trusted
        // operations, and are not flagged.
        if d7_applies
            && !in_test
            && name == "unsafe"
            && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('{'))
        {
            out.push(Finding::new(
                "unsafe-audit",
                Severity::Deny,
                file,
                t,
                "`unsafe` block without a safety argument: add \
                 `// semloc-lint: allow(unsafe-audit): <why the operation is sound>` \
                 on this line or the line above"
                    .to_string(),
            ));
        }

        if d2_applies && (name == "Instant" || name == "SystemTime") {
            out.push(Finding::new(
                "no-wall-clock",
                Severity::Deny,
                file,
                t,
                format!("wall-clock type `{name}` outside bench/criterion: simulation output must not depend on host time"),
            ));
        }

        if d3_applies && !in_test {
            let prev_dot = i > 0 && toks[i - 1].kind == Tok::Punct('.');
            let next = toks.get(i + 1).map(|t| &t.kind);
            let next_paren = next == Some(&Tok::Punct('('));
            let next_bang = next == Some(&Tok::Punct('!'));
            let hit = match name.as_str() {
                "unwrap" | "expect" => prev_dot && next_paren,
                "panic" | "unreachable" | "todo" | "unimplemented" => next_bang,
                _ => false,
            };
            if hit {
                let display = if next_bang {
                    format!("{name}!")
                } else {
                    format!(".{name}()")
                };
                out.push(Finding::new(
                    "no-unwrap",
                    Severity::Deny,
                    file,
                    t,
                    format!(
                        "`{display}` in sim-crate library code: return a typed error or use \
                         infallible indexing; pragma only with a one-line invariant justification"
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D4: snapshot coverage
// ---------------------------------------------------------------------------

/// Coverage mechanism named in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// `impl Snapshot for X` (crates/trace/src/snap.rs trait).
    Snapshot,
    /// `fn save_state` override inside an `impl ... for X` block
    /// (the `Prefetcher` trait's state hooks).
    State,
}

impl Mechanism {
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Snapshot => "snapshot",
            Mechanism::State => "state",
        }
    }
}

/// One `crate/Struct mechanism` line of the manifest.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    pub crate_dir: String,
    pub name: String,
    pub mechanism: Mechanism,
    pub line: u32,
}

/// Parse `snapshot_manifest.txt`. Malformed lines become findings.
pub fn parse_manifest(text: &str, path: &str) -> (Vec<ManifestEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx as u32 + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut parts = l.split_whitespace();
        let target = parts.next().unwrap_or("");
        let mech = parts.next().unwrap_or("");
        let mechanism = match mech {
            "snapshot" => Some(Mechanism::Snapshot),
            "state" => Some(Mechanism::State),
            _ => None,
        };
        match (target.split_once('/'), mechanism) {
            (Some((c, n)), Some(m)) if !c.is_empty() && !n.is_empty() => {
                entries.push(ManifestEntry {
                    crate_dir: c.to_string(),
                    name: n.to_string(),
                    mechanism: m,
                    line,
                });
            }
            _ => findings.push(Finding {
                rule: "snapshot-coverage",
                severity: Severity::Deny,
                file: path.to_string(),
                line,
                col: 1,
                message: format!(
                    "malformed manifest line `{l}`: expected `crate/Struct snapshot|state`"
                ),
            }),
        }
    }
    (entries, findings)
}

/// A type covered by one of the two mechanisms.
#[derive(Debug)]
struct Coverage {
    crate_dir: String,
    name: String,
    mechanism: Mechanism,
    file: String,
    line: u32,
    col: u32,
}

/// Whether a file contributes sim-state declarations (D4/D6/D8 scope).
fn is_sim_lib(ctx: &FileCtx<'_>) -> bool {
    is_sim_crate(ctx.file) && ctx.file.kind == FileKind::LibSrc
}

/// Coverage sites across all sim-crate library files, from the item
/// model: `impl Snapshot for X` is the snapshot mechanism; a trait impl
/// carrying a `fn save_state` override is the state mechanism. Inherent
/// impls never count (matching the launch rule's semantics).
fn collect_coverage(ctxs: &[FileCtx<'_>]) -> Vec<Coverage> {
    let mut covered = Vec::new();
    for ctx in ctxs {
        if !is_sim_lib(ctx) {
            continue;
        }
        let crate_dir = ctx.file.crate_dir.clone().unwrap_or_default();
        for imp in &ctx.model.impls {
            if imp.in_test {
                continue;
            }
            let mechanism = if imp.trait_name.as_deref() == Some("Snapshot") {
                Some(Mechanism::Snapshot)
            } else if imp.trait_name.is_some() && imp.fns.iter().any(|f| f.name == "save_state") {
                Some(Mechanism::State)
            } else {
                None
            };
            if let Some(mechanism) = mechanism {
                covered.push(Coverage {
                    crate_dir: crate_dir.clone(),
                    name: imp.target.clone(),
                    mechanism,
                    file: ctx.file.rel_path.clone(),
                    line: imp.line,
                    col: imp.col,
                });
            }
        }
    }
    covered
}

/// D4: cross-file snapshot-coverage check over all sim-crate library files.
pub fn check_snapshot_coverage(
    ctxs: &[FileCtx<'_>],
    manifest: &[ManifestEntry],
    manifest_path: &str,
) -> Vec<Finding> {
    let covered = collect_coverage(ctxs);
    let mut out = Vec::new();

    // (a) Every manifest entry must be covered, by the declared mechanism.
    for e in manifest {
        match covered
            .iter()
            .find(|c| c.crate_dir == e.crate_dir && c.name == e.name)
        {
            None => out.push(Finding {
                rule: "snapshot-coverage",
                severity: Severity::Deny,
                file: manifest_path.to_string(),
                line: e.line,
                col: 1,
                message: format!(
                    "manifest entry {}/{} has no `impl Snapshot`/`fn save_state` coverage in crate `{}` — \
                     state struct lost its checkpointing, or the manifest is stale",
                    e.crate_dir, e.name, e.crate_dir
                ),
            }),
            Some(c) if c.mechanism != e.mechanism => out.push(Finding {
                rule: "snapshot-coverage",
                severity: Severity::Deny,
                file: manifest_path.to_string(),
                line: e.line,
                col: 1,
                message: format!(
                    "manifest entry {}/{} declares mechanism `{}` but the code covers it via `{}` — update the manifest",
                    e.crate_dir,
                    e.name,
                    e.mechanism.label(),
                    c.mechanism.label()
                ),
            }),
            Some(_) => {}
        }
    }

    // (b) Every covered struct declared in a sim crate must be manifested.
    for c in &covered {
        let declared_here = ctxs.iter().any(|ctx| {
            is_sim_lib(ctx)
                && ctx.file.crate_dir.as_deref() == Some(c.crate_dir.as_str())
                && ctx
                    .model
                    .structs
                    .iter()
                    .any(|s| !s.in_test && s.name == c.name)
        });
        let manifested = manifest
            .iter()
            .any(|e| e.crate_dir == c.crate_dir && e.name == c.name);
        if declared_here && !manifested {
            out.push(Finding {
                rule: "snapshot-coverage",
                severity: Severity::Deny,
                file: c.file.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "{}/{} implements {} coverage but is missing from {} — add `{}/{} {}` so coverage is tracked",
                    c.crate_dir,
                    c.name,
                    c.mechanism.label(),
                    manifest_path,
                    c.crate_dir,
                    c.name,
                    c.mechanism.label()
                ),
            });
        }
    }

    // (c) Heuristic: a struct embedding a manifested state type must itself
    // be covered (new state must not escape checkpointing by composition).
    let manifest_names: Vec<&str> = manifest.iter().map(|e| e.name.as_str()).collect();
    for ctx in ctxs {
        if !is_sim_lib(ctx) {
            continue;
        }
        let crate_dir = ctx.file.crate_dir.as_deref().unwrap_or_default();
        let aliases = use_aliases(ctx.lex);
        for s in &ctx.model.structs {
            if s.in_test {
                continue;
            }
            // Field types as written plus alias-resolved, so a
            // `use cst::Table as Tbl` rename cannot hide an embedding.
            let mut embeds: Vec<&str> = Vec::new();
            for t in &s.field_type_idents {
                if manifest_names.contains(&t.as_str()) {
                    embeds.push(t);
                } else if let Some((_, orig)) = aliases.iter().find(|(alias, _)| alias == t) {
                    if manifest_names.contains(&orig.as_str()) {
                        embeds.push(orig);
                    }
                }
            }
            if embeds.is_empty() {
                continue;
            }
            let is_covered = covered
                .iter()
                .any(|c| c.crate_dir == crate_dir && c.name == s.name);
            let manifested = manifest
                .iter()
                .any(|e| e.crate_dir == crate_dir && e.name == s.name);
            if !is_covered && !manifested {
                out.push(Finding {
                    rule: "snapshot-coverage",
                    severity: Severity::Warn,
                    file: ctx.file.rel_path.clone(),
                    line: s.line,
                    col: s.col,
                    message: format!(
                        "struct {}/{} embeds checkpointed state ({}) but is not snapshot-covered — \
                         implement Snapshot (or a save_state override) and add it to the manifest, \
                         or pragma the declaration if the field is derived/transient",
                        crate_dir,
                        s.name,
                        embeds.join(", ")
                    ),
                });
            }
        }
    }

    out
}

/// `use path::X as Y;` renames in a file: `(alias, original)` pairs.
/// Grouped imports (`use m::{A as B, C as D}`) yield one pair per rename.
/// The composition heuristic resolves embedded field types through these
/// so a rename cannot hide a manifested state type.
fn use_aliases(lexed: &LexData) -> Vec<(String, String)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if lexed.test_mask[i] || toks[i].kind != Tok::Ident("use".into()) {
            i += 1;
            continue;
        }
        // Scan the statement up to its `;`, picking up `X as Y` pairs.
        // `as` only appears in use statements as a rename, so the idents
        // on either side are exactly (original, alias).
        let mut j = i + 1;
        while j < toks.len() && toks[j].kind != Tok::Punct(';') {
            if toks[j].kind == Tok::Ident("as".into()) {
                if let (
                    Some(Token {
                        kind: Tok::Ident(orig),
                        ..
                    }),
                    Some(Token {
                        kind: Tok::Ident(alias),
                        ..
                    }),
                ) = (toks.get(j - 1), toks.get(j + 1))
                {
                    out.push((alias.clone(), orig.clone()));
                }
            }
            j += 1;
        }
        i = j;
    }
    out
}

// ---------------------------------------------------------------------------
// D8: snapshot field coverage
// ---------------------------------------------------------------------------

/// D8: every named field of a snapshot-mechanism manifest entry must be
/// referenced in both the `save` and `restore` bodies of its `impl
/// Snapshot`. Findings land on the field declaration, so a per-field
/// pragma there suppresses them.
pub fn check_snapshot_field_coverage(
    ctxs: &[FileCtx<'_>],
    manifest: &[ManifestEntry],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for e in manifest {
        if e.mechanism != Mechanism::Snapshot {
            continue;
        }
        // The struct declaration (named fields only — enums and tuple
        // structs have no field identifiers to track).
        let decl = ctxs.iter().find_map(|ctx| {
            if !is_sim_lib(ctx) || ctx.file.crate_dir.as_deref() != Some(e.crate_dir.as_str()) {
                return None;
            }
            ctx.model
                .structs
                .iter()
                .find(|s| !s.in_test && s.named && s.name == e.name)
                .map(|s| (ctx, s))
        });
        let Some((decl_ctx, s)) = decl else {
            continue;
        };
        // The Snapshot impl and its save/restore bodies.
        let cov = ctxs.iter().find_map(|ctx| {
            if !is_sim_lib(ctx) || ctx.file.crate_dir.as_deref() != Some(e.crate_dir.as_str()) {
                return None;
            }
            ctx.model
                .impls
                .iter()
                .find(|imp| {
                    !imp.in_test
                        && imp.trait_name.as_deref() == Some("Snapshot")
                        && imp.target == e.name
                })
                .map(|imp| (ctx, imp))
        });
        let Some((impl_ctx, imp)) = cov else {
            continue; // D4 reports the missing impl
        };
        let body_of = |name: &str| imp.fns.iter().find(|f| f.name == name).and_then(|f| f.body);
        let (Some(save), Some(restore)) = (body_of("save"), body_of("restore")) else {
            continue; // would not compile as a Snapshot impl
        };
        let referenced = |range: (usize, usize), field: &str| {
            impl_ctx.lex.tokens[range.0..range.1]
                .iter()
                .any(|t| matches!(&t.kind, Tok::Ident(n) if n == field))
        };
        for field in &s.fields {
            let in_save = referenced(save, &field.name);
            let in_restore = referenced(restore, &field.name);
            if in_save && in_restore {
                continue;
            }
            let missing = match (in_save, in_restore) {
                (false, false) => "save or restore body",
                (false, true) => "save body",
                (true, false) => "restore body",
                (true, true) => unreachable!(),
            };
            out.push(Finding {
                rule: "snapshot-field-coverage",
                severity: Severity::Deny,
                file: decl_ctx.file.rel_path.clone(),
                line: field.line,
                col: field.col,
                message: format!(
                    "field `{}` of manifested struct {}/{} is never referenced in the {} of its \
                     Snapshot impl ({}:{}) — an unserialized field silently corrupts \
                     SEMLOC-CKPT/MCCK round-trips; wire it into save+restore, or pragma this \
                     declaration if it is construction-time config or derived state",
                    field.name, e.crate_dir, e.name, missing, impl_ctx.file.rel_path, imp.line
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D9: RefCell borrow discipline
// ---------------------------------------------------------------------------

/// D9: in the RefCell-sharing crates, flag a borrow guard bound to a
/// local that is still alive (same block, no `drop(guard)`) when the
/// function calls a method on `self` or takes another borrow.
pub fn check_refcell_borrow_discipline(ctxs: &[FileCtx<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    for ctx in ctxs {
        let in_scope = ctx
            .file
            .crate_dir
            .as_deref()
            .is_some_and(|c| REFCELL_CRATES.contains(&c))
            && matches!(ctx.file.kind, FileKind::LibSrc | FileKind::Bin);
        if !in_scope {
            continue;
        }
        let bodies = ctx
            .model
            .fns
            .iter()
            .chain(ctx.model.impls.iter().flat_map(|i| i.fns.iter()))
            .filter(|f| !f.in_test)
            .filter_map(|f| f.body);
        for (start, end) in bodies {
            scan_guard_liveness(ctx, start, end, &mut out);
        }
    }
    out
}

/// Walk one function body looking for `let g = ….borrow[_mut]();`
/// bindings, then for a re-entrancy hazard while `g` is in scope.
fn scan_guard_liveness(ctx: &FileCtx<'_>, start: usize, end: usize, out: &mut Vec<Finding>) {
    let toks = &ctx.lex.tokens;
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        match &toks[i].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => depth -= 1,
            Tok::Ident(k) if k == "let" => {
                // `let [mut] name = … .borrow[_mut]() ;`
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Ident(m)) if m == "mut") {
                    j += 1;
                }
                let Some(Token {
                    kind: Tok::Ident(name),
                    ..
                }) = toks.get(j)
                else {
                    i += 1;
                    continue;
                };
                if toks.get(j + 1).map(|t| &t.kind) != Some(&Tok::Punct('=')) {
                    i += 1;
                    continue;
                }
                // Find the statement-ending `;` at nesting depth 0.
                let mut k = j + 2;
                let mut nest = 0i32;
                while k < end {
                    match &toks[k].kind {
                        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => nest += 1,
                        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => nest -= 1,
                        Tok::Punct(';') if nest == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                // A guard binding ends in `.borrow()` / `.borrow_mut()`
                // immediately before the `;` — a trailing method chain
                // (`.borrow().stats()`) means the guard is a temporary.
                let tail_is_borrow = k >= 4
                    && toks[k - 1].kind == Tok::Punct(')')
                    && toks[k - 2].kind == Tok::Punct('(')
                    && matches!(&toks[k - 3].kind,
                        Tok::Ident(m) if m == "borrow" || m == "borrow_mut")
                    && toks[k - 4].kind == Tok::Punct('.');
                if !tail_is_borrow {
                    i = k;
                    continue;
                }
                if let Some(hazard) = guard_hazard(toks, k + 1, end, depth, name) {
                    out.push(Finding {
                        rule: "refcell-borrow-discipline",
                        severity: Severity::Deny,
                        file: ctx.file.rel_path.clone(),
                        line: toks[i].line,
                        col: toks[i].col,
                        message: format!(
                            "borrow guard `{name}` is still alive at line {hazard} where the \
                             function {} — a re-entrant borrow of the shared cell panics at \
                             runtime; scope the guard in its own block, use a temporary, or \
                             `drop({name})` first",
                            hazard_kind(toks, end, hazard)
                        ),
                    });
                }
                i = k;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Scan from `from` while the guard's enclosing block (at `let_depth`) is
/// open and the guard is not dropped; return the line of the first
/// hazard: a direct `self.method(…)` call or another `.borrow[_mut](`.
fn guard_hazard(
    toks: &[Token],
    from: usize,
    end: usize,
    let_depth: i32,
    guard: &str,
) -> Option<u32> {
    let mut depth = let_depth;
    let mut i = from;
    while i < end {
        match &toks[i].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth < let_depth {
                    return None; // guard's block closed
                }
            }
            // `drop(guard)` ends the guard's liveness.
            Tok::Ident(k)
                if k == "drop"
                    && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('('))
                    && matches!(toks.get(i + 2).map(|t| &t.kind),
                        Some(Tok::Ident(g)) if g == guard)
                    && toks.get(i + 3).map(|t| &t.kind) == Some(&Tok::Punct(')')) =>
            {
                return None;
            }
            // Direct method call on self: `self . ident (`.
            Tok::Ident(k)
                if k == "self"
                    && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('.'))
                    && matches!(toks.get(i + 2).map(|t| &t.kind), Some(Tok::Ident(_)))
                    && toks.get(i + 3).map(|t| &t.kind) == Some(&Tok::Punct('(')) =>
            {
                return Some(toks[i].line);
            }
            Tok::Ident(k)
                if (k == "borrow" || k == "borrow_mut")
                    && i > 0
                    && toks[i - 1].kind == Tok::Punct('.')
                    && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('(')) =>
            {
                return Some(toks[i].line);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Human label for the hazard at `line` (used in the D9 message).
fn hazard_kind(toks: &[Token], end: usize, line: u32) -> String {
    let reborrow = toks.iter().take(end).any(|t| {
        t.line == line && matches!(&t.kind, Tok::Ident(k) if k == "borrow" || k == "borrow_mut")
    });
    if reborrow {
        format!("takes another borrow (line {line})")
    } else {
        format!("calls a method on `self` (line {line})")
    }
}

// ---------------------------------------------------------------------------
// D10: env-var registry
// ---------------------------------------------------------------------------

/// One `SEMLOC_NAME <description>` line of the env-var registry.
#[derive(Debug, Clone)]
pub struct EnvRegistryEntry {
    pub name: String,
    pub line: u32,
}

/// Parse `env_registry.txt`. Malformed lines become findings.
pub fn parse_env_registry(text: &str, path: &str) -> (Vec<EnvRegistryEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx as u32 + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut parts = l.split_whitespace();
        let name = parts.next().unwrap_or("");
        let has_desc = parts.next().is_some();
        if name.starts_with("SEMLOC_") && name.len() > "SEMLOC_".len() && has_desc {
            entries.push(EnvRegistryEntry {
                name: name.to_string(),
                line,
            });
        } else {
            findings.push(Finding {
                rule: "env-var-registry",
                severity: Severity::Deny,
                file: path.to_string(),
                line,
                col: 1,
                message: format!(
                    "malformed registry line `{l}`: expected `SEMLOC_NAME <one-line description>`"
                ),
            });
        }
    }
    (entries, findings)
}

/// D10: cross-check `SEMLOC_*` read sites against the registry and the
/// README, both directions.
pub fn check_env_registry(
    ctxs: &[FileCtx<'_>],
    registry: &[EnvRegistryEntry],
    registry_path: &str,
    readme: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    // First read site per variable, in scan order (files are sorted, so
    // this is deterministic); duplicate reads of one variable share a
    // single registration, so one finding per variable is enough.
    let mut first_read: Vec<(&str, &FileCtx<'_>, u32, u32)> = Vec::new();
    for ctx in ctxs {
        if ctx.file.kind == FileKind::TestsDir {
            continue;
        }
        for r in &ctx.model.env_reads {
            if r.in_test || r.callee == "set_var" || r.callee == "remove_var" {
                continue;
            }
            if !first_read.iter().any(|(v, ..)| *v == r.var) {
                first_read.push((&r.var, ctx, r.line, r.col));
            }
        }
    }

    for (var, ctx, line, col) in &first_read {
        if !registry.iter().any(|e| e.name == *var) {
            out.push(Finding {
                rule: "env-var-registry",
                severity: Severity::Deny,
                file: ctx.file.rel_path.clone(),
                line: *line,
                col: *col,
                message: format!(
                    "env var `{var}` is read here but not registered in {registry_path} — \
                     every SEMLOC_* knob must be listed (name + one-line description) so \
                     configuration state stays auditable"
                ),
            });
        }
        if !readme.contains(var as &str) {
            out.push(Finding {
                rule: "env-var-registry",
                severity: Severity::Deny,
                file: ctx.file.rel_path.clone(),
                line: *line,
                col: *col,
                message: format!(
                    "env var `{var}` is read here but never mentioned in README.md — \
                     document the knob where users will actually find it"
                ),
            });
        }
    }

    for e in registry {
        if !first_read.iter().any(|(v, ..)| *v == e.name) {
            out.push(Finding {
                rule: "env-var-registry",
                severity: Severity::Deny,
                file: registry_path.to_string(),
                line: e.line,
                col: 1,
                message: format!(
                    "registry entry `{}` has no live read site in non-test code — the knob \
                     was removed or renamed; delete the entry (and its README section) or \
                     restore the read",
                    e.name
                ),
            });
        }
    }

    out
}

// ---------------------------------------------------------------------------
// D5: paper constants
// ---------------------------------------------------------------------------

/// Expected Table 2 values (see the rule's `explain` text).
const CONFIG_EXPECTED: [(&str, u64); 4] = [
    ("cst_entries", 2048),
    ("reducer_entries", 16 * 1024),
    ("history_len", 50),
    ("pfq_len", 128),
];

/// D5: verify the paper's structural constants in the four anchor files.
pub fn check_paper_constants(ctxs: &[FileCtx<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    let find = |suffix: &str| ctxs.iter().find(|c| c.file.rel_path.ends_with(suffix));

    let mut history_len: Option<u64> = None;
    let mut bell_hi: Option<(u64, String, u32)> = None;

    match find("core/src/config.rs") {
        None => out.push(missing_anchor("crates/core/src/config.rs")),
        Some(ctx) => {
            let (file, lexed) = (ctx.file, ctx.lex);
            let mut values: Vec<(u64, u64, u32, u32)> = Vec::new(); // (idx into CONFIG_EXPECTED, value, line, col)
            for (k, (name, _)) in CONFIG_EXPECTED.iter().enumerate() {
                for occ in literal_field_values(lexed, name) {
                    values.push((k as u64, occ.0, occ.1, occ.2));
                }
            }
            for (k, (name, expected)) in CONFIG_EXPECTED.iter().enumerate() {
                let occs: Vec<_> = values.iter().filter(|v| v.0 == k as u64).collect();
                if occs.is_empty() {
                    out.push(Finding {
                        rule: "paper-constants",
                        severity: Severity::Deny,
                        file: file.rel_path.clone(),
                        line: 1,
                        col: 1,
                        message: format!(
                            "could not find a literal default for `{name}` — the D5 anchor moved; \
                             update semloc-lint's paper-constant table"
                        ),
                    });
                    continue;
                }
                for &&(_, value, line, col) in &occs {
                    if *name == "history_len" {
                        history_len = Some(value);
                    }
                    let pow2_field = *name == "cst_entries" || *name == "reducer_entries";
                    if value != *expected {
                        out.push(Finding {
                            rule: "paper-constants",
                            severity: Severity::Deny,
                            file: file.rel_path.clone(),
                            line,
                            col,
                            message: format!(
                                "`{name}` defaults to {value}, but Table 2 fixes it at {expected}; \
                                 pragma the line if this is a deliberate sweep default"
                            ),
                        });
                    } else if pow2_field && !value.is_power_of_two() {
                        out.push(Finding {
                            rule: "paper-constants",
                            severity: Severity::Deny,
                            file: file.rel_path.clone(),
                            line,
                            col,
                            message: format!("`{name}` = {value} must be a power of two"),
                        });
                    }
                }
            }
            // Reducer = 8x CST (Table 2: 16K over 2K).
            let get = |k: usize| {
                values
                    .iter()
                    .find(|v| v.0 == k as u64)
                    .map(|&(_, v, l, c)| (v, l, c))
            };
            if let (Some((cst, _, _)), Some((red, line, col))) = (get(0), get(1)) {
                if red != cst * 8 {
                    out.push(Finding {
                        rule: "paper-constants",
                        severity: Severity::Deny,
                        file: file.rel_path.clone(),
                        line,
                        col,
                        message: format!(
                            "reducer_entries ({red}) must be 8x cst_entries ({cst}) per Table 2"
                        ),
                    });
                }
            }
        }
    }

    for (suffix, konst) in [
        ("core/src/cst.rs", "LINKS"),
        ("spec/src/tables.rs", "SPEC_LINKS"),
    ] {
        match find(suffix) {
            None => out.push(missing_anchor(suffix)),
            Some(ctx) => match const_value(ctx.lex, konst) {
                None => out.push(Finding {
                    rule: "paper-constants",
                    severity: Severity::Deny,
                    file: ctx.file.rel_path.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "could not find `const {konst}` — the D5 anchor moved; update semloc-lint"
                    ),
                }),
                Some((v, line, col)) if v != 4 => out.push(Finding {
                    rule: "paper-constants",
                    severity: Severity::Deny,
                    file: ctx.file.rel_path.clone(),
                    line,
                    col,
                    message: format!(
                        "`{konst}` = {v}, but the paper's CST stores 4 links per entry"
                    ),
                }),
                Some(_) => {}
            },
        }
    }

    match find("bandit/src/reward.rs") {
        None => out.push(missing_anchor("crates/bandit/src/reward.rs")),
        Some(ctx) => {
            let (file, lexed) = (ctx.file, ctx.lex);
            let calls = literal_ctor_args(lexed, "BellReward");
            if calls.is_empty() {
                out.push(Finding {
                    rule: "paper-constants",
                    severity: Severity::Deny,
                    file: file.rel_path.clone(),
                    line: 1,
                    col: 1,
                    message: "could not find a literal BellReward::new(lo, hi, ..) — the D5 \
                              anchor moved; update semloc-lint"
                        .into(),
                });
            }
            for (args, line, col) in calls {
                if args.len() >= 2 && (args[0], args[1]) != (18, 50) {
                    out.push(Finding {
                        rule: "paper-constants",
                        severity: Severity::Deny,
                        file: file.rel_path.clone(),
                        line,
                        col,
                        message: format!(
                            "bell reward window ({}, {}) departs from the paper's 18-50 accesses \
                             (Fig 5 / §7.1); pragma if deliberate",
                            args[0], args[1]
                        ),
                    });
                } else if args.len() >= 2 {
                    bell_hi = Some((args[1], file.rel_path.clone(), line));
                }
            }
        }
    }

    if let (Some(hist), Some((hi, file, line))) = (history_len, bell_hi) {
        if hi > hist {
            out.push(Finding {
                rule: "paper-constants",
                severity: Severity::Deny,
                file,
                line,
                col: 1,
                message: format!(
                    "bell window upper edge ({hi}) exceeds the history queue depth ({hist}): \
                     late hits could never be observed or rewarded"
                ),
            });
        }
    }

    out
}

// ---------------------------------------------------------------------------
// D6: no float accumulation in stats structs
// ---------------------------------------------------------------------------

/// A float-typed field declared in a sim-crate `*Stats` struct.
#[derive(Debug)]
struct FloatStatsField {
    /// Owning struct, for the finding message.
    owner: String,
    field: String,
}

/// D6: flag `.field +=` folds on float-typed `*Stats` fields across all
/// sim-crate non-test code.
pub fn check_float_stats(ctxs: &[FileCtx<'_>]) -> Vec<Finding> {
    // Phase A: field-type inference over every sim-crate declaration,
    // straight off the item model: a direct `f32`/`f64` field is a type
    // span of exactly one token.
    let mut float_fields: Vec<FloatStatsField> = Vec::new();
    for ctx in ctxs {
        if !is_sim_lib(ctx) {
            continue;
        }
        for s in &ctx.model.structs {
            if s.in_test || !s.name.ends_with("Stats") {
                continue;
            }
            for f in &s.fields {
                let (a, b) = f.ty;
                if b == a + 1
                    && matches!(&ctx.lex.tokens[a].kind,
                        Tok::Ident(ty) if ty == "f32" || ty == "f64")
                {
                    float_fields.push(FloatStatsField {
                        owner: s.name.clone(),
                        field: f.name.clone(),
                    });
                }
            }
        }
    }
    if float_fields.is_empty() {
        return Vec::new();
    }

    // Phase B: find `.field +=` accumulation sites on those fields.
    let mut out = Vec::new();
    for ctx in ctxs {
        if !is_sim_crate(ctx.file) || ctx.file.kind == FileKind::TestsDir {
            continue;
        }
        let (file, lexed) = (ctx.file, ctx.lex);
        let toks = &lexed.tokens;
        for i in 0..toks.len().saturating_sub(3) {
            if lexed.test_mask[i] {
                continue;
            }
            let (Tok::Punct('.'), Tok::Ident(field), Tok::Punct('+'), Tok::Punct('=')) = (
                &toks[i].kind,
                &toks[i + 1].kind,
                &toks[i + 2].kind,
                &toks[i + 3].kind,
            ) else {
                continue;
            };
            let Some(ff) = float_fields.iter().find(|f| &f.field == field) else {
                continue;
            };
            out.push(Finding::new(
                "no-float-in-stats-accumulation",
                Severity::Deny,
                file,
                &toks[i + 1],
                format!(
                    "float `+=` fold on stats field `{}` (declared f32/f64 in `{}`): \
                     accumulation order would leak into the golden digest; accumulate \
                     in integers and derive the rate in a getter instead",
                    ff.field, ff.owner
                ),
            ));
        }
    }
    out
}

fn missing_anchor(path: &str) -> Finding {
    Finding {
        rule: "paper-constants",
        severity: Severity::Deny,
        file: path.to_string(),
        line: 1,
        col: 1,
        message: "D5 anchor file missing from the workspace scan".into(),
    }
}

/// All `name: <int expr>` occurrences in non-test code, with the evaluated
/// value (supports `a * b` and `a << b`). Type ascriptions (`name: usize`)
/// are skipped because they do not evaluate.
fn literal_field_values(lexed: &LexData, name: &str) -> Vec<(u64, u32, u32)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if lexed.test_mask[i] || toks[i].kind != Tok::Ident(name.into()) {
            continue;
        }
        if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct(':')) {
            continue;
        }
        // `::` means a path, not a field init.
        if toks.get(i + 2).map(|t| &t.kind) == Some(&Tok::Punct(':')) {
            continue;
        }
        if let Some(v) = eval_int_expr(toks, i + 2) {
            out.push((v, toks[i].line, toks[i].col));
        }
    }
    out
}

/// Value of `const NAME ... = <int expr>`, if present in non-test code.
fn const_value(lexed: &LexData, name: &str) -> Option<(u64, u32, u32)> {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if lexed.test_mask[i]
            || toks[i].kind != Tok::Ident(name.into())
            || i == 0
            || !matches!(&toks[i - 1].kind, Tok::Ident(k) if k == "const")
        {
            continue;
        }
        let mut j = i + 1;
        while j < toks.len() && toks[j].kind != Tok::Punct('=') && toks[j].kind != Tok::Punct(';') {
            j += 1;
        }
        if toks.get(j).map(|t| &t.kind) == Some(&Tok::Punct('=')) {
            if let Some(v) = eval_int_expr(toks, j + 1) {
                return Some((v, toks[i].line, toks[i].col));
            }
        }
    }
    None
}

/// All-literal argument lists of `Type::new(...)` calls in non-test code.
fn literal_ctor_args(lexed: &LexData, ty: &str) -> Vec<(Vec<u64>, u32, u32)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if lexed.test_mask[i] || toks[i].kind != Tok::Ident(ty.into()) {
            continue;
        }
        let shape = [
            toks.get(i + 1).map(|t| &t.kind),
            toks.get(i + 2).map(|t| &t.kind),
            toks.get(i + 3).map(|t| &t.kind),
            toks.get(i + 4).map(|t| &t.kind),
        ];
        let (a, b, c, d) = (&shape[0], &shape[1], &shape[2], &shape[3]);
        if *a != Some(&Tok::Punct(':'))
            || *b != Some(&Tok::Punct(':'))
            || *c != Some(&Tok::Ident("new".into()))
            || *d != Some(&Tok::Punct('('))
        {
            continue;
        }
        // Parse leading literal args; stop at the first non-literal.
        let mut args = Vec::new();
        let mut j = i + 5;
        loop {
            match toks.get(j).map(|t| &t.kind) {
                Some(Tok::Punct('-')) => {
                    // Negative literal: record magnitude 0 placeholder —
                    // only the first two (unsigned window) args matter.
                    j += 2;
                    args.push(u64::MAX);
                }
                Some(Tok::Int(Some(v))) => {
                    args.push(*v);
                    j += 1;
                }
                _ => break,
            }
            match toks.get(j).map(|t| &t.kind) {
                Some(Tok::Punct(',')) => j += 1,
                _ => break,
            }
        }
        if !args.is_empty() {
            out.push((args, toks[i].line, toks[i].col));
        }
    }
    out
}

/// Evaluate `Int (('*' | '<<') Int)*` starting at `start`. Returns `None`
/// if the expression is anything else (identifiers, calls, floats).
fn eval_int_expr(toks: &[Token], start: usize) -> Option<u64> {
    let Tok::Int(Some(mut acc)) = toks.get(start)?.kind else {
        return None;
    };
    let mut j = start + 1;
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(Tok::Punct('*')) => {
                let Some(Token {
                    kind: Tok::Int(Some(v)),
                    ..
                }) = toks.get(j + 1)
                else {
                    return None;
                };
                acc = acc.checked_mul(*v)?;
                j += 2;
            }
            Some(Tok::Punct('<')) if toks.get(j + 1).map(|t| &t.kind) == Some(&Tok::Punct('<')) => {
                let Some(Token {
                    kind: Tok::Int(Some(v)),
                    ..
                }) = toks.get(j + 2)
                else {
                    return None;
                };
                acc = acc.checked_shl(*v as u32)?;
                j += 3;
            }
            // A field init ends at `,` or `}`; a const ends at `;`.
            Some(Tok::Punct(',')) | Some(Tok::Punct(';')) | Some(Tok::Punct('}')) | None => {
                return Some(acc)
            }
            _ => return None,
        }
    }
}
