//! The rule set: D1–D5 from launch, D6 (no-float-in-stats-accumulation)
//! from the block-replay work, plus D7 (unsafe-audit) from the
//! acceleration layer.
//!
//! Each rule documents *why* it exists in its `explain` text (shown by
//! `semloc-lint --explain <rule>`): the project's correctness story rests
//! on bit-identical determinism (golden stat digests, the spec-vs-core
//! differential oracle, checkpoint/restore fidelity), and these rules make
//! the assumptions behind that story statically checkable.

use crate::lexer::{Tok, Token};
use crate::{FileKind, Finding, LexData, Severity, SourceFile};

/// Crates holding simulation state: iteration order, panics and hidden
/// state in these crates can silently break golden digests.
pub const SIM_CRATES: &[&str] = &["core", "mem", "cpu", "bandit", "baselines", "spec", "trace"];

/// Crates allowed to read wall-clock time (measurement harnesses).
pub const WALL_CLOCK_CRATES: &[&str] = &["bench", "criterion"];

/// Static description of one rule.
pub struct RuleInfo {
    /// Stable rule id, used in findings, pragmas and JSON output.
    pub id: &'static str,
    /// Short alias accepted in pragmas (`d1`..`d7`).
    pub alias: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
    pub explain: &'static str,
}

/// The rule catalog.
pub const RULES: [RuleInfo; 7] = [
    RuleInfo {
        id: "no-std-hash-collections",
        alias: "d1",
        severity: Severity::Deny,
        summary: "sim-state crates must not use std HashMap/HashSet",
        explain: "\
std's HashMap/HashSet randomize their hash seed per process, so their
iteration order differs between runs. Any map whose iteration order can
reach statistics, prediction order, or serialized state silently breaks
bit-identical reproducibility (golden digest 0xe1cb22f196f55582, the
spec-vs-core differential oracle, checkpoint fidelity). In sim-state
crates (core, mem, cpu, bandit, baselines, spec, trace), use BTreeMap,
Vec, or index tables instead. A map that is provably keyed-access-only
with a fixed-seed hasher may be kept with a pragma:
  // semloc-lint: allow(no-std-hash-collections): <why order never leaks>
Scope: library and binary code of sim crates; #[cfg(test)] code is exempt
(tests only use hash sets for order-insensitive set equality).",
    },
    RuleInfo {
        id: "no-wall-clock",
        alias: "d2",
        severity: Severity::Deny,
        summary: "no Instant::now/SystemTime outside bench/criterion",
        explain: "\
Wall-clock reads make simulation output depend on host timing. The
simulator models its own clock; only the measurement crates (bench,
criterion) and benches/ targets may read real time. Everywhere else,
Instant and SystemTime are denied — including test code, where a timing
assertion would be flaky by construction.",
    },
    RuleInfo {
        id: "no-unwrap",
        alias: "d3",
        severity: Severity::Deny,
        summary: "no unwrap/expect/panic in sim-crate library code",
        explain: "\
A panic path in library code of a sim crate can take down a whole matrix
run and, worse, hides the error taxonomy the harness relies on (typed
io::Errors for snapshot/trace corruption, SpeedupError for degenerate
stats). Library (non-test, non-bin) code of sim crates must return typed
errors or use infallible indexing. Flagged: .unwrap(), .expect(),
panic!, unreachable!, todo!, unimplemented!. Not flagged: assert!
(constructor precondition checks documented under '# Panics' are
deliberate API contracts). Provably-unreachable sites keep a pragma with
a one-line justification:
  // semloc-lint: allow(no-unwrap): <the invariant that makes this safe>",
    },
    RuleInfo {
        id: "snapshot-coverage",
        alias: "d4",
        severity: Severity::Deny,
        summary: "every run-state struct must be checkpoint-covered and manifested",
        explain: "\
Checkpoint/restore (PR 4) only stays exact if *every* struct holding
mutable run state participates in snapshotting. The source of truth is
crates/lint/snapshot_manifest.txt: each entry names a sim-crate struct
and its coverage mechanism ('snapshot' for `impl Snapshot for X`,
'state' for a `fn save_state` override inside an `impl ... for X`
block). The rule fails when (a) a manifest entry has no matching
coverage in its crate, (b) a covered struct is missing from the
manifest, or (c) — heuristic, warn-level — a non-test struct embeds a
manifested state type in its fields without being covered itself, which
is how new state silently escapes checkpointing. Fix (c) by
implementing Snapshot and adding the struct to the manifest, or pragma
the declaration if the field is genuinely derived/transient state:
  // semloc-lint: allow(snapshot-coverage): <why this is not run state>",
    },
    RuleInfo {
        id: "paper-constants",
        alias: "d5",
        severity: Severity::Deny,
        summary: "Table 2 structural constants must match the paper",
        explain: "\
The paper (Peled et al., ISCA 2015, Table 2) fixes the prefetcher's
structural constants: 2K-entry CST with 4 links, 16K-entry reducer (8x
the CST), 50-entry history queue, 128-entry prefetch queue, and the
18-50-access bell reward window. Experiments and docs all assume these
defaults; silent drift would invalidate every pinned figure. The rule
re-parses crates/core/src/config.rs (Default impl), crates/core/src/cst.rs
(LINKS), crates/spec/src/tables.rs (SPEC_LINKS) and
crates/bandit/src/reward.rs (BellReward::new literals in paper_default)
and checks the values, power-of-two table sizes, the reducer = 8x CST
ratio, and that the bell window fits inside the history queue. A
deliberate sweep default may be annotated:
  // semloc-lint: allow(paper-constants): <why the default departs>",
    },
    RuleInfo {
        id: "no-float-in-stats-accumulation",
        alias: "d6",
        severity: Severity::Deny,
        summary: "no f32/f64 `+=` folds on stats-struct fields",
        explain: "\
Floating-point addition is not associative, so a float accumulator's
value depends on fold order — and the harness folds statistics in
several orders that must all agree bit-for-bit: per-instruction
streaming, per-block batched stepping (block-local fold + one merge),
shard-pool parallel cells, and checkpoint/restore replays. An f32/f64
`+=` on a stats field silently ties the golden digest to whichever
order ran. Stats structs (any sim-crate struct named *Stats) must
accumulate in integers (counts, cycle sums, fixed-point) and derive
rates as f64 *methods* at read time — IPC, MPKI and hit-rate getters
are fine; accumulating them is not. The check infers field types from
the struct declarations (light inference: direct f32/f64 fields) and
flags every `.field +=` fold on such a field. A field that provably
never reaches a digest or report may be kept with a pragma:
  // semloc-lint: allow(no-float-in-stats-accumulation): <why order never leaks>",
    },
    RuleInfo {
        id: "unsafe-audit",
        alias: "d7",
        severity: Severity::Deny,
        summary: "every unsafe block needs an adjacent safety-argument pragma",
        explain: "\
The acceleration layer (crates/accel) is the only place the workspace
uses `unsafe` — SIMD pointer intrinsics and `#[target_feature]` dispatch.
Each such block is trusted code on the bit-identical hot path: a missed
bounds argument corrupts simulation state silently instead of panicking,
which the golden digest would only catch after the fact. Every `unsafe {`
block in non-test code must therefore carry its safety argument right
next to it, machine-checkably, as a pragma on the same line or the line
above:
  // semloc-lint: allow(unsafe-audit): <why the operation is sound>
The argument should name the invariant that makes the operation in the
block sound (e.g. which bounds check covers a raw load, or why a CPU
feature is known present at a call site). Test code is exempt; vendor
stubs are not scanned.",
    },
];

/// Look up a rule by id or alias.
pub fn rule(id_or_alias: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.id == id_or_alias || r.alias == id_or_alias)
}

fn is_sim_crate(file: &SourceFile) -> bool {
    file.crate_dir
        .as_deref()
        .is_some_and(|c| SIM_CRATES.contains(&c))
}

/// D1–D3: single-file token rules. `lexed` must come from `file.content`.
pub fn check_file(file: &SourceFile, lexed: &LexData) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    let d1_applies = is_sim_crate(file) && matches!(file.kind, FileKind::LibSrc | FileKind::Bin);
    let d2_applies = !file
        .crate_dir
        .as_deref()
        .is_some_and(|c| WALL_CLOCK_CRATES.contains(&c))
        && file.kind != FileKind::Benches;
    let d3_applies = is_sim_crate(file) && file.kind == FileKind::LibSrc;
    let d7_applies = file.kind != FileKind::TestsDir;

    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.kind else { continue };
        let in_test = lexed.test_mask[i];

        if d1_applies && !in_test && (name == "HashMap" || name == "HashSet") {
            out.push(Finding::new(
                "no-std-hash-collections",
                Severity::Deny,
                file,
                t,
                format!(
                    "std::collections::{name} in sim-state crate `{}`: iteration order is \
                     nondeterministic; use BTreeMap/Vec/an index table, or pragma a \
                     provably keyed-access-only fixed-seed map",
                    file.crate_dir.as_deref().unwrap_or("?")
                ),
            ));
        }

        // D7: every `unsafe {` block in non-test code must carry an
        // adjacent safety-argument pragma. The pragma *is* the audit
        // record: a justified block suppresses this finding via the
        // normal pragma machinery, an unjustified one survives to deny.
        // `unsafe fn`/`unsafe impl` headers are declarations, not trusted
        // operations, and are not flagged.
        if d7_applies
            && !in_test
            && name == "unsafe"
            && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('{'))
        {
            out.push(Finding::new(
                "unsafe-audit",
                Severity::Deny,
                file,
                t,
                "`unsafe` block without a safety argument: add \
                 `// semloc-lint: allow(unsafe-audit): <why the operation is sound>` \
                 on this line or the line above"
                    .to_string(),
            ));
        }

        if d2_applies && (name == "Instant" || name == "SystemTime") {
            out.push(Finding::new(
                "no-wall-clock",
                Severity::Deny,
                file,
                t,
                format!("wall-clock type `{name}` outside bench/criterion: simulation output must not depend on host time"),
            ));
        }

        if d3_applies && !in_test {
            let prev_dot = i > 0 && toks[i - 1].kind == Tok::Punct('.');
            let next = toks.get(i + 1).map(|t| &t.kind);
            let next_paren = next == Some(&Tok::Punct('('));
            let next_bang = next == Some(&Tok::Punct('!'));
            let hit = match name.as_str() {
                "unwrap" | "expect" => prev_dot && next_paren,
                "panic" | "unreachable" | "todo" | "unimplemented" => next_bang,
                _ => false,
            };
            if hit {
                let display = if next_bang {
                    format!("{name}!")
                } else {
                    format!(".{name}()")
                };
                out.push(Finding::new(
                    "no-unwrap",
                    Severity::Deny,
                    file,
                    t,
                    format!(
                        "`{display}` in sim-crate library code: return a typed error or use \
                         infallible indexing; pragma only with a one-line invariant justification"
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D4: snapshot coverage
// ---------------------------------------------------------------------------

/// Coverage mechanism named in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// `impl Snapshot for X` (crates/trace/src/snap.rs trait).
    Snapshot,
    /// `fn save_state` override inside an `impl ... for X` block
    /// (the `Prefetcher` trait's state hooks).
    State,
}

impl Mechanism {
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Snapshot => "snapshot",
            Mechanism::State => "state",
        }
    }
}

/// One `crate/Struct mechanism` line of the manifest.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    pub crate_dir: String,
    pub name: String,
    pub mechanism: Mechanism,
    pub line: u32,
}

/// Parse `snapshot_manifest.txt`. Malformed lines become findings.
pub fn parse_manifest(text: &str, path: &str) -> (Vec<ManifestEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx as u32 + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut parts = l.split_whitespace();
        let target = parts.next().unwrap_or("");
        let mech = parts.next().unwrap_or("");
        let mechanism = match mech {
            "snapshot" => Some(Mechanism::Snapshot),
            "state" => Some(Mechanism::State),
            _ => None,
        };
        match (target.split_once('/'), mechanism) {
            (Some((c, n)), Some(m)) if !c.is_empty() && !n.is_empty() => {
                entries.push(ManifestEntry {
                    crate_dir: c.to_string(),
                    name: n.to_string(),
                    mechanism: m,
                    line,
                });
            }
            _ => findings.push(Finding {
                rule: "snapshot-coverage",
                severity: Severity::Deny,
                file: path.to_string(),
                line,
                col: 1,
                message: format!(
                    "malformed manifest line `{l}`: expected `crate/Struct snapshot|state`"
                ),
            }),
        }
    }
    (entries, findings)
}

/// A struct declaration found in a sim crate (non-test code).
#[derive(Debug)]
struct StructDecl {
    crate_dir: String,
    name: String,
    file: String,
    line: u32,
    col: u32,
    /// Uppercase-initial identifiers appearing in the field list.
    field_types: Vec<String>,
}

/// A type covered by one of the two mechanisms.
#[derive(Debug)]
struct Coverage {
    crate_dir: String,
    name: String,
    mechanism: Mechanism,
    file: String,
    line: u32,
    col: u32,
}

/// D4: cross-file snapshot-coverage check over all sim-crate library files.
pub fn check_snapshot_coverage(
    files: &[(&SourceFile, &LexData)],
    manifest: &[ManifestEntry],
    manifest_path: &str,
) -> Vec<Finding> {
    let mut structs: Vec<StructDecl> = Vec::new();
    let mut covered: Vec<Coverage> = Vec::new();

    for (file, lexed) in files {
        if !is_sim_crate(file) || file.kind != FileKind::LibSrc {
            continue;
        }
        let crate_dir = file.crate_dir.clone().unwrap_or_default();
        collect_structs(file, lexed, &crate_dir, &mut structs);
        collect_coverage(file, lexed, &crate_dir, &mut covered);
    }

    let mut out = Vec::new();

    // (a) Every manifest entry must be covered, by the declared mechanism.
    for e in manifest {
        match covered
            .iter()
            .find(|c| c.crate_dir == e.crate_dir && c.name == e.name)
        {
            None => out.push(Finding {
                rule: "snapshot-coverage",
                severity: Severity::Deny,
                file: manifest_path.to_string(),
                line: e.line,
                col: 1,
                message: format!(
                    "manifest entry {}/{} has no `impl Snapshot`/`fn save_state` coverage in crate `{}` — \
                     state struct lost its checkpointing, or the manifest is stale",
                    e.crate_dir, e.name, e.crate_dir
                ),
            }),
            Some(c) if c.mechanism != e.mechanism => out.push(Finding {
                rule: "snapshot-coverage",
                severity: Severity::Deny,
                file: manifest_path.to_string(),
                line: e.line,
                col: 1,
                message: format!(
                    "manifest entry {}/{} declares mechanism `{}` but the code covers it via `{}` — update the manifest",
                    e.crate_dir,
                    e.name,
                    e.mechanism.label(),
                    c.mechanism.label()
                ),
            }),
            Some(_) => {}
        }
    }

    // (b) Every covered struct declared in a sim crate must be manifested.
    for c in &covered {
        let declared_here = structs
            .iter()
            .any(|s| s.crate_dir == c.crate_dir && s.name == c.name);
        let manifested = manifest
            .iter()
            .any(|e| e.crate_dir == c.crate_dir && e.name == c.name);
        if declared_here && !manifested {
            out.push(Finding {
                rule: "snapshot-coverage",
                severity: Severity::Deny,
                file: c.file.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "{}/{} implements {} coverage but is missing from {} — add `{}/{} {}` so coverage is tracked",
                    c.crate_dir,
                    c.name,
                    c.mechanism.label(),
                    manifest_path,
                    c.crate_dir,
                    c.name,
                    c.mechanism.label()
                ),
            });
        }
    }

    // (c) Heuristic: a struct embedding a manifested state type must itself
    // be covered (new state must not escape checkpointing by composition).
    let manifest_names: Vec<&str> = manifest.iter().map(|e| e.name.as_str()).collect();
    for s in &structs {
        let embeds: Vec<&str> = s
            .field_types
            .iter()
            .map(|t| t.as_str())
            .filter(|t| manifest_names.contains(t))
            .collect();
        if embeds.is_empty() {
            continue;
        }
        let is_covered = covered
            .iter()
            .any(|c| c.crate_dir == s.crate_dir && c.name == s.name);
        let manifested = manifest
            .iter()
            .any(|e| e.crate_dir == s.crate_dir && e.name == s.name);
        if !is_covered && !manifested {
            out.push(Finding {
                rule: "snapshot-coverage",
                severity: Severity::Warn,
                file: s.file.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "struct {}/{} embeds checkpointed state ({}) but is not snapshot-covered — \
                     implement Snapshot (or a save_state override) and add it to the manifest, \
                     or pragma the declaration if the field is derived/transient",
                    s.crate_dir,
                    s.name,
                    embeds.join(", ")
                ),
            });
        }
    }

    out
}

/// `use path::X as Y;` renames in a file: `(alias, original)` pairs.
/// Grouped imports (`use m::{A as B, C as D}`) yield one pair per rename.
/// The composition heuristic resolves embedded field types through these
/// so a rename cannot hide a manifested state type.
fn use_aliases(lexed: &LexData) -> Vec<(String, String)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if lexed.test_mask[i] || toks[i].kind != Tok::Ident("use".into()) {
            i += 1;
            continue;
        }
        // Scan the statement up to its `;`, picking up `X as Y` pairs.
        // `as` only appears in use statements as a rename, so the idents
        // on either side are exactly (original, alias).
        let mut j = i + 1;
        while j < toks.len() && toks[j].kind != Tok::Punct(';') {
            if toks[j].kind == Tok::Ident("as".into()) {
                if let (
                    Some(Token {
                        kind: Tok::Ident(orig),
                        ..
                    }),
                    Some(Token {
                        kind: Tok::Ident(alias),
                        ..
                    }),
                ) = (toks.get(j - 1), toks.get(j + 1))
                {
                    out.push((alias.clone(), orig.clone()));
                }
            }
            j += 1;
        }
        i = j;
    }
    out
}

/// Collect non-test struct declarations with their field-type identifiers.
/// Field types are recorded both as written and resolved through the
/// file's `use ... as ...` renames, so `use cst::Table as Tbl` followed by
/// a `Tbl` field still matches a manifested `Table`.
fn collect_structs(file: &SourceFile, lexed: &LexData, crate_dir: &str, out: &mut Vec<StructDecl>) {
    let aliases = use_aliases(lexed);
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if lexed.test_mask[i] || toks[i].kind != Tok::Ident("struct".into()) {
            i += 1;
            continue;
        }
        let Some(Token {
            kind: Tok::Ident(name),
            line,
            col,
        }) = toks.get(i + 1)
        else {
            i += 1;
            continue;
        };
        let mut j = i + 2;
        // Skip generic parameters.
        if matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Punct('<'))) {
            j = skip_angles(toks, j);
        }
        // Skip a where clause up to the body.
        while j < toks.len()
            && !matches!(
                toks[j].kind,
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct(';')
            )
        {
            j += 1;
        }
        let mut field_types = Vec::new();
        match toks.get(j).map(|t| &t.kind) {
            Some(Tok::Punct('{')) => {
                let end = matching(toks, j, '{', '}');
                for t in &toks[j..end] {
                    if let Tok::Ident(s) = &t.kind {
                        if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                            field_types.push(s.clone());
                        }
                    }
                }
                i = end;
            }
            Some(Tok::Punct('(')) => {
                let end = matching(toks, j, '(', ')');
                for t in &toks[j..end] {
                    if let Tok::Ident(s) = &t.kind {
                        if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                            field_types.push(s.clone());
                        }
                    }
                }
                i = end;
            }
            _ => i = j,
        }
        // Append alias-resolved names so renamed embeddings still match.
        let resolved: Vec<String> = field_types
            .iter()
            .filter_map(|t| {
                aliases
                    .iter()
                    .find(|(alias, _)| alias == t)
                    .map(|(_, orig)| orig.clone())
            })
            .collect();
        field_types.extend(resolved);
        out.push(StructDecl {
            crate_dir: crate_dir.to_string(),
            name: name.clone(),
            file: file.rel_path.clone(),
            line: *line,
            col: *col,
            field_types,
        });
    }
}

/// Collect coverage sites: `impl Snapshot for X` and `fn save_state`
/// overrides inside `impl ... for X` blocks (non-test code only).
fn collect_coverage(file: &SourceFile, lexed: &LexData, crate_dir: &str, out: &mut Vec<Coverage>) {
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if lexed.test_mask[i] || toks[i].kind != Tok::Ident("impl".into()) {
            i += 1;
            continue;
        }
        let impl_tok = &toks[i];
        let mut j = i + 1;
        if matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Punct('<'))) {
            j = skip_angles(toks, j);
        }
        // Collect the header: path idents up to `for`, then the target path.
        let mut trait_last: Option<&str> = None;
        let mut target_last: Option<&str> = None;
        let mut past_for = false;
        while j < toks.len() {
            match &toks[j].kind {
                Tok::Ident(s) if s == "for" => past_for = true,
                Tok::Ident(s) if s == "where" => break,
                Tok::Punct('{') => break,
                Tok::Punct('<') => {
                    j = skip_angles(toks, j);
                    continue;
                }
                Tok::Ident(s) => {
                    if past_for {
                        target_last = Some(s);
                    } else {
                        trait_last = Some(s);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Punct('{'))) {
            i = j;
            continue;
        }
        let end = matching(toks, j, '{', '}');
        if let (true, Some(target)) = (past_for, target_last) {
            let is_snapshot_impl = trait_last == Some("Snapshot");
            let has_save_state = (j..end).any(|k| {
                toks[k].kind == Tok::Ident("fn".into())
                    && toks.get(k + 1).map(|t| &t.kind) == Some(&Tok::Ident("save_state".into()))
            });
            let mechanism = if is_snapshot_impl {
                Some(Mechanism::Snapshot)
            } else if has_save_state {
                Some(Mechanism::State)
            } else {
                None
            };
            if let Some(mechanism) = mechanism {
                out.push(Coverage {
                    crate_dir: crate_dir.to_string(),
                    name: target.to_string(),
                    mechanism,
                    file: file.rel_path.clone(),
                    line: impl_tok.line,
                    col: impl_tok.col,
                });
            }
        }
        i = end;
    }
}

/// Index just past the `>` matching the `<` at `open`. `->` arrows and
/// comparison-like stray `>` are tolerated via the `-` lookbehind.
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                let arrow = j > 0 && toks[j - 1].kind == Tok::Punct('-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index just past the closer matching the opener at `open`.
fn matching(toks: &[Token], open: usize, op: char, cl: char) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].kind == Tok::Punct(op) {
            depth += 1;
        } else if toks[j].kind == Tok::Punct(cl) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------------
// D5: paper constants
// ---------------------------------------------------------------------------

/// Expected Table 2 values (see the rule's `explain` text).
const CONFIG_EXPECTED: [(&str, u64); 4] = [
    ("cst_entries", 2048),
    ("reducer_entries", 16 * 1024),
    ("history_len", 50),
    ("pfq_len", 128),
];

/// D5: verify the paper's structural constants in the four anchor files.
pub fn check_paper_constants(files: &[(&SourceFile, &LexData)]) -> Vec<Finding> {
    let mut out = Vec::new();
    let find = |suffix: &str| {
        files
            .iter()
            .find(|(f, _)| f.rel_path.ends_with(suffix))
            .copied()
    };

    let mut history_len: Option<u64> = None;
    let mut bell_hi: Option<(u64, String, u32)> = None;

    match find("core/src/config.rs") {
        None => out.push(missing_anchor("crates/core/src/config.rs")),
        Some((file, lexed)) => {
            let mut values: Vec<(u64, u64, u32, u32)> = Vec::new(); // (idx into CONFIG_EXPECTED, value, line, col)
            for (k, (name, _)) in CONFIG_EXPECTED.iter().enumerate() {
                for occ in literal_field_values(lexed, name) {
                    values.push((k as u64, occ.0, occ.1, occ.2));
                }
            }
            for (k, (name, expected)) in CONFIG_EXPECTED.iter().enumerate() {
                let occs: Vec<_> = values.iter().filter(|v| v.0 == k as u64).collect();
                if occs.is_empty() {
                    out.push(Finding {
                        rule: "paper-constants",
                        severity: Severity::Deny,
                        file: file.rel_path.clone(),
                        line: 1,
                        col: 1,
                        message: format!(
                            "could not find a literal default for `{name}` — the D5 anchor moved; \
                             update semloc-lint's paper-constant table"
                        ),
                    });
                    continue;
                }
                for &&(_, value, line, col) in &occs {
                    if *name == "history_len" {
                        history_len = Some(value);
                    }
                    let pow2_field = *name == "cst_entries" || *name == "reducer_entries";
                    if value != *expected {
                        out.push(Finding {
                            rule: "paper-constants",
                            severity: Severity::Deny,
                            file: file.rel_path.clone(),
                            line,
                            col,
                            message: format!(
                                "`{name}` defaults to {value}, but Table 2 fixes it at {expected}; \
                                 pragma the line if this is a deliberate sweep default"
                            ),
                        });
                    } else if pow2_field && !value.is_power_of_two() {
                        out.push(Finding {
                            rule: "paper-constants",
                            severity: Severity::Deny,
                            file: file.rel_path.clone(),
                            line,
                            col,
                            message: format!("`{name}` = {value} must be a power of two"),
                        });
                    }
                }
            }
            // Reducer = 8x CST (Table 2: 16K over 2K).
            let get = |k: usize| {
                values
                    .iter()
                    .find(|v| v.0 == k as u64)
                    .map(|&(_, v, l, c)| (v, l, c))
            };
            if let (Some((cst, _, _)), Some((red, line, col))) = (get(0), get(1)) {
                if red != cst * 8 {
                    out.push(Finding {
                        rule: "paper-constants",
                        severity: Severity::Deny,
                        file: file.rel_path.clone(),
                        line,
                        col,
                        message: format!(
                            "reducer_entries ({red}) must be 8x cst_entries ({cst}) per Table 2"
                        ),
                    });
                }
            }
        }
    }

    for (suffix, konst) in [
        ("core/src/cst.rs", "LINKS"),
        ("spec/src/tables.rs", "SPEC_LINKS"),
    ] {
        match find(suffix) {
            None => out.push(missing_anchor(suffix)),
            Some((file, lexed)) => match const_value(lexed, konst) {
                None => out.push(Finding {
                    rule: "paper-constants",
                    severity: Severity::Deny,
                    file: file.rel_path.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "could not find `const {konst}` — the D5 anchor moved; update semloc-lint"
                    ),
                }),
                Some((v, line, col)) if v != 4 => out.push(Finding {
                    rule: "paper-constants",
                    severity: Severity::Deny,
                    file: file.rel_path.clone(),
                    line,
                    col,
                    message: format!(
                        "`{konst}` = {v}, but the paper's CST stores 4 links per entry"
                    ),
                }),
                Some(_) => {}
            },
        }
    }

    match find("bandit/src/reward.rs") {
        None => out.push(missing_anchor("crates/bandit/src/reward.rs")),
        Some((file, lexed)) => {
            let calls = literal_ctor_args(lexed, "BellReward");
            if calls.is_empty() {
                out.push(Finding {
                    rule: "paper-constants",
                    severity: Severity::Deny,
                    file: file.rel_path.clone(),
                    line: 1,
                    col: 1,
                    message: "could not find a literal BellReward::new(lo, hi, ..) — the D5 \
                              anchor moved; update semloc-lint"
                        .into(),
                });
            }
            for (args, line, col) in calls {
                if args.len() >= 2 && (args[0], args[1]) != (18, 50) {
                    out.push(Finding {
                        rule: "paper-constants",
                        severity: Severity::Deny,
                        file: file.rel_path.clone(),
                        line,
                        col,
                        message: format!(
                            "bell reward window ({}, {}) departs from the paper's 18-50 accesses \
                             (Fig 5 / §7.1); pragma if deliberate",
                            args[0], args[1]
                        ),
                    });
                } else if args.len() >= 2 {
                    bell_hi = Some((args[1], file.rel_path.clone(), line));
                }
            }
        }
    }

    if let (Some(hist), Some((hi, file, line))) = (history_len, bell_hi) {
        if hi > hist {
            out.push(Finding {
                rule: "paper-constants",
                severity: Severity::Deny,
                file,
                line,
                col: 1,
                message: format!(
                    "bell window upper edge ({hi}) exceeds the history queue depth ({hist}): \
                     late hits could never be observed or rewarded"
                ),
            });
        }
    }

    out
}

// ---------------------------------------------------------------------------
// D6: no float accumulation in stats structs
// ---------------------------------------------------------------------------

/// A float-typed field declared in a sim-crate `*Stats` struct.
#[derive(Debug)]
struct FloatStatsField {
    /// Owning struct, for the finding message.
    owner: String,
    field: String,
}

/// Collect `name: f32|f64` fields of non-test `*Stats` struct declarations.
fn collect_float_stats_fields(lexed: &LexData, out: &mut Vec<FloatStatsField>) {
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if lexed.test_mask[i] || toks[i].kind != Tok::Ident("struct".into()) {
            i += 1;
            continue;
        }
        let Some(Token {
            kind: Tok::Ident(name),
            ..
        }) = toks.get(i + 1)
        else {
            i += 1;
            continue;
        };
        if !name.ends_with("Stats") {
            i += 2;
            continue;
        }
        let mut j = i + 2;
        if matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Punct('<'))) {
            j = skip_angles(toks, j);
        }
        while j < toks.len()
            && !matches!(
                toks[j].kind,
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct(';')
            )
        {
            j += 1;
        }
        if toks.get(j).map(|t| &t.kind) != Some(&Tok::Punct('{')) {
            i = j;
            continue;
        }
        let end = matching(toks, j, '{', '}');
        // Field pattern inside the body: Ident ':' Ident("f32"|"f64").
        // (`Vec<f64>` and friends don't match — the light inference only
        // covers direct float fields, which is what a `+=` fold targets.)
        for k in j..end.saturating_sub(2) {
            let (Tok::Ident(field), Tok::Punct(':'), Tok::Ident(ty)) =
                (&toks[k].kind, &toks[k + 1].kind, &toks[k + 2].kind)
            else {
                continue;
            };
            if (ty == "f32" || ty == "f64")
                // `::` is a path, not a field type ascription.
                && toks.get(k + 3).map(|t| &t.kind) != Some(&Tok::Punct(':'))
            {
                out.push(FloatStatsField {
                    owner: name.clone(),
                    field: field.clone(),
                });
            }
        }
        i = end;
    }
}

/// D6: flag `.field +=` folds on float-typed `*Stats` fields across all
/// sim-crate non-test code.
pub fn check_float_stats(files: &[(&SourceFile, &LexData)]) -> Vec<Finding> {
    // Phase A: field-type inference over every sim-crate declaration.
    let mut float_fields: Vec<FloatStatsField> = Vec::new();
    for (file, lexed) in files {
        if is_sim_crate(file) && file.kind == FileKind::LibSrc {
            collect_float_stats_fields(lexed, &mut float_fields);
        }
    }
    if float_fields.is_empty() {
        return Vec::new();
    }

    // Phase B: find `.field +=` accumulation sites on those fields.
    let mut out = Vec::new();
    for (file, lexed) in files {
        if !is_sim_crate(file) || file.kind == FileKind::TestsDir {
            continue;
        }
        let toks = &lexed.tokens;
        for i in 0..toks.len().saturating_sub(3) {
            if lexed.test_mask[i] {
                continue;
            }
            let (Tok::Punct('.'), Tok::Ident(field), Tok::Punct('+'), Tok::Punct('=')) = (
                &toks[i].kind,
                &toks[i + 1].kind,
                &toks[i + 2].kind,
                &toks[i + 3].kind,
            ) else {
                continue;
            };
            let Some(ff) = float_fields.iter().find(|f| &f.field == field) else {
                continue;
            };
            out.push(Finding::new(
                "no-float-in-stats-accumulation",
                Severity::Deny,
                file,
                &toks[i + 1],
                format!(
                    "float `+=` fold on stats field `{}` (declared f32/f64 in `{}`): \
                     accumulation order would leak into the golden digest; accumulate \
                     in integers and derive the rate in a getter instead",
                    ff.field, ff.owner
                ),
            ));
        }
    }
    out
}

fn missing_anchor(path: &str) -> Finding {
    Finding {
        rule: "paper-constants",
        severity: Severity::Deny,
        file: path.to_string(),
        line: 1,
        col: 1,
        message: "D5 anchor file missing from the workspace scan".into(),
    }
}

/// All `name: <int expr>` occurrences in non-test code, with the evaluated
/// value (supports `a * b` and `a << b`). Type ascriptions (`name: usize`)
/// are skipped because they do not evaluate.
fn literal_field_values(lexed: &LexData, name: &str) -> Vec<(u64, u32, u32)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if lexed.test_mask[i] || toks[i].kind != Tok::Ident(name.into()) {
            continue;
        }
        if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct(':')) {
            continue;
        }
        // `::` means a path, not a field init.
        if toks.get(i + 2).map(|t| &t.kind) == Some(&Tok::Punct(':')) {
            continue;
        }
        if let Some(v) = eval_int_expr(toks, i + 2) {
            out.push((v, toks[i].line, toks[i].col));
        }
    }
    out
}

/// Value of `const NAME ... = <int expr>`, if present in non-test code.
fn const_value(lexed: &LexData, name: &str) -> Option<(u64, u32, u32)> {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if lexed.test_mask[i]
            || toks[i].kind != Tok::Ident(name.into())
            || i == 0
            || !matches!(&toks[i - 1].kind, Tok::Ident(k) if k == "const")
        {
            continue;
        }
        let mut j = i + 1;
        while j < toks.len() && toks[j].kind != Tok::Punct('=') && toks[j].kind != Tok::Punct(';') {
            j += 1;
        }
        if toks.get(j).map(|t| &t.kind) == Some(&Tok::Punct('=')) {
            if let Some(v) = eval_int_expr(toks, j + 1) {
                return Some((v, toks[i].line, toks[i].col));
            }
        }
    }
    None
}

/// All-literal argument lists of `Type::new(...)` calls in non-test code.
fn literal_ctor_args(lexed: &LexData, ty: &str) -> Vec<(Vec<u64>, u32, u32)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if lexed.test_mask[i] || toks[i].kind != Tok::Ident(ty.into()) {
            continue;
        }
        let shape = [
            toks.get(i + 1).map(|t| &t.kind),
            toks.get(i + 2).map(|t| &t.kind),
            toks.get(i + 3).map(|t| &t.kind),
            toks.get(i + 4).map(|t| &t.kind),
        ];
        let (a, b, c, d) = (&shape[0], &shape[1], &shape[2], &shape[3]);
        if *a != Some(&Tok::Punct(':'))
            || *b != Some(&Tok::Punct(':'))
            || *c != Some(&Tok::Ident("new".into()))
            || *d != Some(&Tok::Punct('('))
        {
            continue;
        }
        // Parse leading literal args; stop at the first non-literal.
        let mut args = Vec::new();
        let mut j = i + 5;
        loop {
            match toks.get(j).map(|t| &t.kind) {
                Some(Tok::Punct('-')) => {
                    // Negative literal: record magnitude 0 placeholder —
                    // only the first two (unsigned window) args matter.
                    j += 2;
                    args.push(u64::MAX);
                }
                Some(Tok::Int(Some(v))) => {
                    args.push(*v);
                    j += 1;
                }
                _ => break,
            }
            match toks.get(j).map(|t| &t.kind) {
                Some(Tok::Punct(',')) => j += 1,
                _ => break,
            }
        }
        if !args.is_empty() {
            out.push((args, toks[i].line, toks[i].col));
        }
    }
    out
}

/// Evaluate `Int (('*' | '<<') Int)*` starting at `start`. Returns `None`
/// if the expression is anything else (identifiers, calls, floats).
fn eval_int_expr(toks: &[Token], start: usize) -> Option<u64> {
    let Tok::Int(Some(mut acc)) = toks.get(start)?.kind else {
        return None;
    };
    let mut j = start + 1;
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(Tok::Punct('*')) => {
                let Some(Token {
                    kind: Tok::Int(Some(v)),
                    ..
                }) = toks.get(j + 1)
                else {
                    return None;
                };
                acc = acc.checked_mul(*v)?;
                j += 2;
            }
            Some(Tok::Punct('<')) if toks.get(j + 1).map(|t| &t.kind) == Some(&Tok::Punct('<')) => {
                let Some(Token {
                    kind: Tok::Int(Some(v)),
                    ..
                }) = toks.get(j + 2)
                else {
                    return None;
                };
                acc = acc.checked_shl(*v as u32)?;
                j += 3;
            }
            // A field init ends at `,` or `}`; a const ends at `;`.
            Some(Tok::Punct(',')) | Some(Tok::Punct(';')) | Some(Tok::Punct('}')) | None => {
                return Some(acc)
            }
            _ => return None,
        }
    }
}
