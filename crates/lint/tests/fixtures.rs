//! Per-rule fixture tests: every rule fires on a seeded violation with the
//! right rule id, file and line, stays quiet on conforming code, and honors
//! `// semloc-lint: allow(...)` pragmas.

use semloc_lint::rules::{
    analyze, check_env_registry, check_paper_constants, check_refcell_borrow_discipline,
    check_snapshot_coverage, check_snapshot_field_coverage, parse_env_registry, parse_manifest,
    rule,
};
use semloc_lint::{
    lint, lint_source, to_json, FileKind, Finding, LexData, LintReport, Severity, SourceFile,
    Workspace,
};
use std::path::PathBuf;

fn fixture(crate_dir: &str, kind: FileKind, content: &str) -> SourceFile {
    let sub = match kind {
        FileKind::LibSrc => "src/fixture.rs",
        FileKind::Bin => "src/bin/fixture.rs",
        FileKind::TestsDir => "tests/fixture.rs",
        FileKind::Benches => "benches/fixture.rs",
        FileKind::Examples => "examples/fixture.rs",
    };
    SourceFile::fixture(
        crate_dir,
        kind,
        &format!("crates/{crate_dir}/{sub}"),
        content,
    )
}

fn findings_for(crate_dir: &str, kind: FileKind, content: &str) -> Vec<Finding> {
    lint_source(&fixture(crate_dir, kind, content))
}

#[track_caller]
fn assert_fires(findings: &[Finding], rule_id: &str, line: u32) {
    assert!(
        findings.iter().any(|f| f.rule == rule_id && f.line == line),
        "expected {rule_id} at line {line}, got: {findings:?}"
    );
}

// ---------------------------------------------------------------------------
// D1: no-std-hash-collections
// ---------------------------------------------------------------------------

#[test]
fn d1_fires_on_hashmap_in_sim_lib() {
    let f = findings_for(
        "core",
        FileKind::LibSrc,
        "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u64> }\n",
    );
    assert_fires(&f, "no-std-hash-collections", 1);
    assert_fires(&f, "no-std-hash-collections", 2);
    assert!(f.iter().all(|x| x.severity == Severity::Deny));
}

#[test]
fn d1_fires_in_sim_bins_too() {
    let f = findings_for(
        "core",
        FileKind::Bin,
        "fn main() { let _ = std::collections::HashSet::<u64>::new(); }\n",
    );
    assert_fires(&f, "no-std-hash-collections", 1);
}

#[test]
fn d1_quiet_on_btree_and_non_sim_crates() {
    assert!(findings_for(
        "core",
        FileKind::LibSrc,
        "use std::collections::BTreeMap;\nstruct S { m: BTreeMap<u64, u64> }\n",
    )
    .is_empty());
    // The harness crate is not sim state: HashMap is allowed there.
    assert!(findings_for(
        "harness",
        FileKind::LibSrc,
        "use std::collections::HashMap;\n",
    )
    .is_empty());
}

#[test]
fn d1_exempts_cfg_test_code() {
    let src = "pub fn f() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   use std::collections::HashSet;\n\
               \x20   #[test]\n\
               \x20   fn t() { let _ = HashSet::<u64>::new(); }\n\
               }\n";
    assert!(findings_for("core", FileKind::LibSrc, src).is_empty());
    // Integration tests are test code wholesale.
    assert!(findings_for(
        "core",
        FileKind::TestsDir,
        "use std::collections::HashMap;\n",
    )
    .is_empty());
}

#[test]
fn d1_ident_must_match_exactly_and_strings_are_ignored() {
    let src = "struct MyHashMapLike;\nconst DOC: &str = \"HashMap\"; // HashMap in comment\n";
    assert!(findings_for("core", FileKind::LibSrc, src).is_empty());
}

// ---------------------------------------------------------------------------
// D2: no-wall-clock
// ---------------------------------------------------------------------------

#[test]
fn d2_fires_on_instant_and_system_time() {
    let f = findings_for(
        "core",
        FileKind::LibSrc,
        "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\nfn g() { let _ = std::time::SystemTime::now(); }\n",
    );
    assert_fires(&f, "no-wall-clock", 1);
    assert_fires(&f, "no-wall-clock", 2);
    assert_fires(&f, "no-wall-clock", 3);
}

#[test]
fn d2_applies_even_in_test_code() {
    // A wall-clock assertion in a test is flaky by construction.
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
    let f = findings_for("harness", FileKind::LibSrc, src);
    assert_fires(&f, "no-wall-clock", 4);
}

#[test]
fn d2_exempts_bench_crates_and_bench_targets() {
    let src = "fn f() { let _ = std::time::Instant::now(); }\n";
    assert!(findings_for("bench", FileKind::LibSrc, src).is_empty());
    assert!(findings_for("criterion", FileKind::LibSrc, src).is_empty());
    assert!(findings_for("core", FileKind::Benches, src).is_empty());
}

// ---------------------------------------------------------------------------
// D3: no-unwrap
// ---------------------------------------------------------------------------

#[test]
fn d3_fires_on_unwrap_expect_and_panics() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               fn g(x: Option<u32>) -> u32 { x.expect(\"boom\") }\n\
               fn h() { panic!(\"no\") }\n\
               fn i() { unreachable!() }\n\
               fn j() { todo!() }\n\
               fn k() { unimplemented!() }\n";
    let f = findings_for("mem", FileKind::LibSrc, src);
    for line in 1..=6 {
        assert_fires(&f, "no-unwrap", line);
    }
}

#[test]
fn d3_scope_is_sim_lib_only() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    // Bins may panic (CLI error handling), tests/examples are exempt, and
    // non-sim crates are out of scope.
    assert!(findings_for("core", FileKind::Bin, src).is_empty());
    assert!(findings_for("core", FileKind::TestsDir, src).is_empty());
    assert!(findings_for("core", FileKind::Examples, src).is_empty());
    assert!(findings_for("harness", FileKind::LibSrc, src).is_empty());
}

#[test]
fn d3_does_not_flag_lookalikes() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }\n\
               fn g(x: Option<u32>) -> u32 { x.unwrap_or(7) }\n\
               fn h(v: u64) { assert!(v > 0, \"precondition\"); }\n\
               fn unwrap(x: u32) -> u32 { x }\n";
    assert!(findings_for("mem", FileKind::LibSrc, src).is_empty());
}

#[test]
fn d3_exempts_cfg_test_fns_and_modules() {
    let src = "pub fn lib() {}\n\
               #[test]\n\
               fn t() { None::<u32>.unwrap(); }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   pub fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n\
               }\n";
    assert!(findings_for("spec", FileKind::LibSrc, src).is_empty());
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

#[test]
fn pragma_suppresses_own_line_and_next_line() {
    let own = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // semloc-lint: allow(no-unwrap): test\n";
    assert!(findings_for("core", FileKind::LibSrc, own).is_empty());

    let above = "// semloc-lint: allow(no-unwrap): caller checked\n\
                 fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(findings_for("core", FileKind::LibSrc, above).is_empty());
}

#[test]
fn pragma_does_not_reach_two_lines_down() {
    let src = "// semloc-lint: allow(no-unwrap): too far away\n\
               fn pad() {}\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let f = findings_for("core", FileKind::LibSrc, src);
    assert_fires(&f, "no-unwrap", 3);
}

#[test]
fn pragma_is_rule_scoped() {
    // A D1 pragma does not excuse a D3 violation on the same line.
    let src = "// semloc-lint: allow(no-std-hash-collections): wrong rule\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let f = findings_for("core", FileKind::LibSrc, src);
    assert_fires(&f, "no-unwrap", 2);
}

#[test]
fn pragma_accepts_aliases_and_all() {
    let alias = "// semloc-lint: allow(d3): alias form\n\
                 fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(findings_for("core", FileKind::LibSrc, alias).is_empty());

    let all = "// semloc-lint: allow(all): kitchen sink\n\
               fn f() { let _ = std::collections::HashMap::<u8, u8>::new(); }\n";
    assert!(findings_for("core", FileKind::LibSrc, all).is_empty());
}

#[test]
fn doc_comments_never_carry_pragmas() {
    // A doc comment quoting the pragma syntax must not suppress anything.
    let src = "/// semloc-lint: allow(no-unwrap): just documentation\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let f = findings_for("core", FileKind::LibSrc, src);
    assert_fires(&f, "no-unwrap", 2);
}

// ---------------------------------------------------------------------------
// D4: snapshot-coverage
// ---------------------------------------------------------------------------

fn d4_run(manifest_text: &str, files: &[SourceFile]) -> Vec<Finding> {
    let (manifest, mut findings) = parse_manifest(manifest_text, "manifest.txt");
    let lexed: Vec<LexData> = files.iter().map(|f| LexData::of(&f.content)).collect();
    let pairs: Vec<(&SourceFile, &LexData)> = files.iter().zip(lexed.iter()).collect();
    let ctxs = analyze(&pairs);
    findings.extend(check_snapshot_coverage(&ctxs, &manifest, "manifest.txt"));
    findings
}

const COVERED: &str = "pub struct Table { v: Vec<u64> }\n\
                       impl Snapshot for Table {\n\
                       \x20   fn save(&self, _w: &mut W) {}\n\
                       }\n";

#[test]
fn d4_clean_when_manifest_and_coverage_agree() {
    let files = [fixture("core", FileKind::LibSrc, COVERED)];
    assert!(d4_run("core/Table snapshot\n", &files).is_empty());
}

#[test]
fn d4_fires_when_manifest_entry_loses_coverage() {
    let files = [fixture(
        "core",
        FileKind::LibSrc,
        "pub struct Table { v: Vec<u64> }\n",
    )];
    let f = d4_run("core/Table snapshot\n", &files);
    assert_fires(&f, "snapshot-coverage", 1);
    assert!(f[0].file == "manifest.txt", "{f:?}");
}

#[test]
fn d4_fires_on_mechanism_mismatch() {
    let files = [fixture("core", FileKind::LibSrc, COVERED)];
    let f = d4_run("core/Table state\n", &files);
    assert_fires(&f, "snapshot-coverage", 1);
    assert!(f[0].message.contains("mechanism"), "{f:?}");
}

#[test]
fn d4_fires_when_coverage_is_unmanifested() {
    let files = [fixture("core", FileKind::LibSrc, COVERED)];
    let f = d4_run("", &files);
    // Reported at the impl site, inside the fixture file.
    assert_fires(&f, "snapshot-coverage", 2);
    assert!(f[0].file.ends_with("src/fixture.rs"), "{f:?}");
}

#[test]
fn d4_save_state_override_counts_as_state_mechanism() {
    let src = "pub struct P { n: u64 }\n\
               impl Prefetcher for P {\n\
               \x20   fn save_state(&self, _w: &mut W) {}\n\
               }\n";
    let files = [fixture("baselines", FileKind::LibSrc, src)];
    assert!(d4_run("baselines/P state\n", &files).is_empty());
}

#[test]
fn d4_composition_heuristic_warns() {
    let src = "pub struct Table { v: Vec<u64> }\n\
               impl Snapshot for Table { fn save(&self) {} }\n\
               pub struct Wrapper { inner: Table }\n";
    let files = [fixture("core", FileKind::LibSrc, src)];
    let f = d4_run("core/Table snapshot\n", &files);
    assert_fires(&f, "snapshot-coverage", 3);
    let w = f.iter().find(|x| x.line == 3).unwrap();
    assert_eq!(w.severity, Severity::Warn, "heuristic is warn-level");
    assert!(w.message.contains("Wrapper"), "{w:?}");
}

#[test]
fn d4_composition_heuristic_sees_through_use_renames() {
    // `use X as Y` must not let an embedded state type escape the
    // heuristic: the field is written with the alias, the manifest names
    // the original.
    let table = fixture("core", FileKind::LibSrc, COVERED);
    let wrapper = SourceFile::fixture(
        "core",
        FileKind::LibSrc,
        "crates/core/src/wrap.rs",
        "use crate::fixture::Table as Tbl;\npub struct Wrapper { inner: Tbl }\n",
    );
    let f = d4_run("core/Table snapshot\n", &[table, wrapper]);
    let w = f
        .iter()
        .find(|x| x.file == "crates/core/src/wrap.rs")
        .expect("renamed embedding must still warn");
    assert_eq!(w.rule, "snapshot-coverage");
    assert_eq!(w.line, 2);
    assert_eq!(w.severity, Severity::Warn);
    assert!(w.message.contains("Wrapper"), "{w:?}");

    // Grouped renames resolve too.
    let grouped = SourceFile::fixture(
        "core",
        FileKind::LibSrc,
        "crates/core/src/wrap.rs",
        "use crate::fixture::{Table as Tbl, Other as O};\npub struct Wrapper { inner: Tbl }\n",
    );
    let table = fixture("core", FileKind::LibSrc, COVERED);
    let f = d4_run("core/Table snapshot\n", &[table, grouped]);
    assert!(
        f.iter().any(|x| x.file == "crates/core/src/wrap.rs"),
        "grouped rename escaped the heuristic: {f:?}"
    );
}

#[test]
fn d4_malformed_manifest_line_is_a_deny_finding() {
    let f = d4_run("core/Table teleport\n", &[]);
    assert!(
        f.iter()
            .any(|x| x.rule == "snapshot-coverage" && x.severity == Severity::Deny),
        "{f:?}"
    );
}

// ---------------------------------------------------------------------------
// D5: paper-constants
// ---------------------------------------------------------------------------

const GOOD_CONFIG: &str = "impl Default for ContextConfig {\n\
    \x20   fn default() -> Self {\n\
    \x20       ContextConfig {\n\
    \x20           cst_entries: 2048,\n\
    \x20           reducer_entries: 16 * 1024,\n\
    \x20           history_len: 50,\n\
    \x20           pfq_len: 128,\n\
    \x20       }\n\
    \x20   }\n\
    }\n";
const GOOD_CST: &str = "pub const LINKS: usize = 4;\n";
const GOOD_SPEC: &str = "pub const SPEC_LINKS: usize = 4;\n";
const GOOD_REWARD: &str =
    "pub fn paper_default() -> BellReward { BellReward::new(18, 50, 16, -8, -4) }\n";

fn d5_anchors(config: &str, cst: &str, spec: &str, reward: &str) -> Vec<SourceFile> {
    vec![
        SourceFile::fixture(
            "core",
            FileKind::LibSrc,
            "crates/core/src/config.rs",
            config,
        ),
        SourceFile::fixture("core", FileKind::LibSrc, "crates/core/src/cst.rs", cst),
        SourceFile::fixture("spec", FileKind::LibSrc, "crates/spec/src/tables.rs", spec),
        SourceFile::fixture(
            "bandit",
            FileKind::LibSrc,
            "crates/bandit/src/reward.rs",
            reward,
        ),
    ]
}

fn d5_run(files: &[SourceFile]) -> Vec<Finding> {
    let lexed: Vec<LexData> = files.iter().map(|f| LexData::of(&f.content)).collect();
    let pairs: Vec<(&SourceFile, &LexData)> = files.iter().zip(lexed.iter()).collect();
    check_paper_constants(&analyze(&pairs))
}

#[test]
fn d5_clean_on_table2_values() {
    let files = d5_anchors(GOOD_CONFIG, GOOD_CST, GOOD_SPEC, GOOD_REWARD);
    assert!(d5_run(&files).is_empty());
}

#[test]
fn d5_fires_on_drifted_config_value() {
    let bad = GOOD_CONFIG.replace("history_len: 50", "history_len: 49");
    let files = d5_anchors(&bad, GOOD_CST, GOOD_SPEC, GOOD_REWARD);
    let f = d5_run(&files);
    // history_len sits on line 6 of the fixture, and 49 also breaks the
    // bell-window-fits-in-history invariant (hi = 50 > 49).
    assert_fires(&f, "paper-constants", 6);
    assert!(f.iter().any(|x| x.message.contains("49")), "{f:?}");
}

#[test]
fn d5_fires_on_broken_reducer_ratio() {
    let bad = GOOD_CONFIG.replace("reducer_entries: 16 * 1024", "reducer_entries: 4096");
    let files = d5_anchors(&bad, GOOD_CST, GOOD_SPEC, GOOD_REWARD);
    let f = d5_run(&files);
    assert!(
        f.iter().any(|x| x.message.contains("8x")),
        "expected the 8x-ratio finding, got {f:?}"
    );
}

#[test]
fn d5_fires_on_wrong_link_count() {
    let files = d5_anchors(
        GOOD_CONFIG,
        "pub const LINKS: usize = 8;\n",
        GOOD_SPEC,
        GOOD_REWARD,
    );
    let f = d5_run(&files);
    assert_fires(&f, "paper-constants", 1);
    assert!(f.iter().any(|x| x.file.ends_with("cst.rs")), "{f:?}");
}

#[test]
fn d5_fires_on_shifted_bell_window() {
    let bad = GOOD_REWARD.replace("new(18, 50", "new(10, 60");
    let files = d5_anchors(GOOD_CONFIG, GOOD_CST, GOOD_SPEC, &bad);
    let f = d5_run(&files);
    assert!(
        f.iter().any(|x| x.message.contains("18-50")),
        "expected the bell-window finding, got {f:?}"
    );
}

#[test]
fn d5_fires_when_anchor_goes_missing() {
    let files = d5_anchors(GOOD_CONFIG, GOOD_CST, GOOD_SPEC, GOOD_REWARD);
    let f = d5_run(&files[..3]);
    assert!(
        f.iter().any(|x| x.file.contains("reward.rs")),
        "missing anchor must be reported, got {f:?}"
    );
}

#[test]
fn d5_understands_const_expressions() {
    // `16 * 1024` and `1 << 11` must evaluate, not silently skip.
    let shifted = GOOD_CONFIG.replace("cst_entries: 2048", "cst_entries: 1 << 11");
    let files = d5_anchors(&shifted, GOOD_CST, GOOD_SPEC, GOOD_REWARD);
    assert!(d5_run(&files).is_empty());
}

// ---------------------------------------------------------------------------
// D7: unsafe-audit
// ---------------------------------------------------------------------------

#[test]
fn d7_fires_on_unjustified_unsafe_block() {
    let f = findings_for(
        "accel",
        FileKind::LibSrc,
        "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    assert_fires(&f, "unsafe-audit", 1);
    assert!(f.iter().all(|x| x.severity == Severity::Deny));
}

#[test]
fn d7_applies_to_every_crate_and_bins() {
    let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_fires(
        &findings_for("harness", FileKind::LibSrc, src),
        "unsafe-audit",
        1,
    );
    assert_fires(&findings_for("core", FileKind::Bin, src), "unsafe-audit", 1);
}

#[test]
fn d7_honors_safety_argument_pragmas() {
    let above = "// semloc-lint: allow(unsafe-audit): caller checked the pointer is in bounds\n\
                 pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert!(findings_for("accel", FileKind::LibSrc, above).is_empty());

    let own = "pub fn f(p: *const u8) -> u8 { unsafe { *p } } // semloc-lint: allow(unsafe-audit): bounds-checked above\n";
    assert!(findings_for("accel", FileKind::LibSrc, own).is_empty());

    let alias = "// semloc-lint: allow(d7): alias form works too\n\
                 pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert!(findings_for("accel", FileKind::LibSrc, alias).is_empty());
}

#[test]
fn d7_exempts_test_code_and_declarations() {
    // Test code is exempt.
    let test = "#[cfg(test)]\nmod tests {\n    fn t(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
    assert!(findings_for("accel", FileKind::LibSrc, test).is_empty());
    assert!(findings_for(
        "accel",
        FileKind::TestsDir,
        "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    )
    .is_empty());
    // `unsafe fn` / `unsafe impl` headers declare contracts rather than
    // trusting an operation; their *call sites'* blocks get audited.
    let decls = "pub unsafe fn raw() {}\nunsafe impl Send for W {}\nstruct W;\n";
    assert!(findings_for("accel", FileKind::LibSrc, decls).is_empty());
}

// ---------------------------------------------------------------------------
// End-to-end: seeded violations through `lint()` + JSON shape
// ---------------------------------------------------------------------------

#[test]
fn seeded_workspace_fires_every_rule_with_positions() {
    let mut files = d5_anchors(
        GOOD_CONFIG,
        "pub const LINKS: usize = 8;\n", // D5 violation, cst.rs line 1
        GOOD_SPEC,
        GOOD_REWARD,
    );
    files.push(SourceFile::fixture(
        "mem",
        FileKind::LibSrc,
        "crates/mem/src/bad.rs",
        "use std::collections::HashMap;\n\
         fn f() { let _ = std::time::Instant::now(); }\n\
         fn g(x: Option<u32>) -> u32 { x.unwrap() }\n\
         fn h(p: *const u8) -> u8 { unsafe { *p } }\n",
    ));
    files.push(SourceFile::fixture(
        "cpu",
        FileKind::LibSrc,
        "crates/cpu/src/badstats.rs",
        "pub struct LatStats { pub sum: f64 }\n\
         fn fold(s: &mut LatStats, l: f64) { s.sum += l; }\n",
    ));
    let (manifest, manifest_findings) = parse_manifest("mem/Ghost snapshot\n", "manifest.txt");
    let ws = Workspace {
        root: PathBuf::from("."),
        files,
        manifest,
        manifest_findings,
        manifest_path: "manifest.txt".into(),
        env_registry: Vec::new(),
        env_registry_findings: Vec::new(),
        env_registry_path: "env_registry.txt".into(),
        readme: String::new(),
    };
    let report = lint(&ws);

    let expect = [
        ("no-std-hash-collections", "crates/mem/src/bad.rs", 1),
        ("no-wall-clock", "crates/mem/src/bad.rs", 2),
        ("no-unwrap", "crates/mem/src/bad.rs", 3),
        ("unsafe-audit", "crates/mem/src/bad.rs", 4),
        ("snapshot-coverage", "manifest.txt", 1),
        ("paper-constants", "crates/core/src/cst.rs", 1),
        (
            "no-float-in-stats-accumulation",
            "crates/cpu/src/badstats.rs",
            2,
        ),
    ];
    for (rule_id, file, line) in expect {
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == rule_id && f.file == file && f.line == line),
            "expected {rule_id} at {file}:{line}, got: {:?}",
            report.findings
        );
    }

    // Findings are sorted by (file, line, col, rule) for stable output.
    let keys: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.col, f.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);

    // JSON shape: stable top-level keys, one entry per finding, valid
    // per-rule counts.
    let json = to_json(&report);
    for key in [
        "\"version\": 1",
        "\"files_scanned\": 6",
        "\"rule_count\": 11",
        "\"pragmas_honored\"",
        "\"deny_findings\"",
        "\"warn_findings\"",
        "\"counts\"",
        "\"findings\"",
    ] {
        assert!(json.contains(key), "missing {key} in JSON:\n{json}");
    }
    assert_eq!(
        json.matches("{\"rule\": ").count(),
        report.findings.len(),
        "one JSON object per finding"
    );
    for (rule_id, _, _) in expect {
        assert!(json.contains(&format!("\"rule\": \"{rule_id}\"")));
    }
}

#[test]
fn rule_lookup_resolves_ids_and_aliases() {
    for (id, alias) in [
        ("no-std-hash-collections", "d1"),
        ("no-wall-clock", "d2"),
        ("no-unwrap", "d3"),
        ("snapshot-coverage", "d4"),
        ("paper-constants", "d5"),
        ("no-float-in-stats-accumulation", "d6"),
        ("unsafe-audit", "d7"),
        ("snapshot-field-coverage", "d8"),
        ("refcell-borrow-discipline", "d9"),
        ("env-var-registry", "d10"),
        ("stale-pragma", "d11"),
    ] {
        assert_eq!(rule(id).unwrap().id, id);
        assert_eq!(rule(alias).unwrap().id, id);
        assert!(!rule(id).unwrap().explain.is_empty());
    }
    assert!(rule("no-such-rule").is_none());
}

#[test]
fn empty_report_serializes_cleanly() {
    let report = LintReport {
        findings: Vec::new(),
        files_scanned: 0,
        pragmas_honored: 0,
        parse_ms: None,
    };
    let json = to_json(&report);
    assert!(json.contains("\"deny_findings\": 0"));
    assert!(json.contains("\"findings\": []"), "{json}");
}

// ---------------------------------------------------------------------------
// D6: no-float-in-stats-accumulation
// ---------------------------------------------------------------------------

fn d6_run(files: &[SourceFile]) -> Vec<Finding> {
    let lexed: Vec<LexData> = files.iter().map(|f| LexData::of(&f.content)).collect();
    let pairs: Vec<(&SourceFile, &LexData)> = files.iter().zip(lexed.iter()).collect();
    semloc_lint::rules::check_float_stats(&analyze(&pairs))
}

#[test]
fn d6_fires_on_float_fold_in_stats_struct() {
    let decl = fixture(
        "cpu",
        FileKind::LibSrc,
        "pub struct CoreStats { pub cycles: u64, pub avg_lat: f64 }\n",
    );
    let fold = fixture(
        "cpu",
        FileKind::LibSrc,
        "fn fold(s: &mut super::CoreStats, l: f64) {\n    s.avg_lat += l;\n}\n",
    );
    let f = d6_run(&[decl, fold]);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "no-float-in-stats-accumulation");
    assert_eq!(f[0].line, 2);
    assert!(f[0].message.contains("avg_lat"), "{}", f[0].message);
    assert!(f[0].message.contains("CoreStats"), "{}", f[0].message);
}

#[test]
fn d6_infers_types_across_files_and_ignores_integer_folds() {
    let decl = fixture(
        "mem",
        FileKind::LibSrc,
        "pub struct CacheStats { pub hits: u64, pub miss_rate: f32 }\n",
    );
    // Integer fold on the same struct: fine. Float fold in a *different*
    // sim crate still resolves against the declaration.
    let ok = fixture(
        "mem",
        FileKind::LibSrc,
        "fn tally(s: &mut CacheStats) { s.hits += 1; }\n",
    );
    let bad = fixture(
        "cpu",
        FileKind::LibSrc,
        "fn merge(s: &mut CacheStats, r: f32) { s.miss_rate += r; }\n",
    );
    let f = d6_run(&[decl, ok, bad]);
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].file.contains("cpu"), "{f:?}");
}

#[test]
fn d6_quiet_on_derived_rate_methods_and_non_stats_structs() {
    // Rate getters compute floats at read time — no fold, no finding; and
    // float accumulation on a non-Stats struct is out of scope.
    let stats = fixture(
        "cpu",
        FileKind::LibSrc,
        "pub struct CpuStats { pub instructions: u64, pub cycles: u64 }\n\
         impl CpuStats {\n\
         \x20   pub fn ipc(&self) -> f64 { self.instructions as f64 / self.cycles as f64 }\n\
         }\n",
    );
    let other = fixture(
        "bandit",
        FileKind::LibSrc,
        "pub struct Ema { pub value: f64 }\n\
         fn update(e: &mut Ema, x: f64) { e.value += x; }\n",
    );
    assert!(d6_run(&[stats, other]).is_empty());
}

#[test]
fn d6_exempts_test_code_and_non_sim_crates() {
    let decl = fixture(
        "cpu",
        FileKind::LibSrc,
        "pub struct RunStats { pub score: f64 }\n",
    );
    let test_fold = fixture(
        "cpu",
        FileKind::TestsDir,
        "fn t(s: &mut RunStats) { s.score += 1.0; }\n",
    );
    // The harness crate is not sim state; its folds are out of D6 scope.
    let harness_fold = fixture(
        "harness",
        FileKind::LibSrc,
        "fn f(s: &mut RunStats) { s.score += 1.0; }\n",
    );
    assert!(d6_run(&[decl, test_fold, harness_fold]).is_empty());
}

// ---------------------------------------------------------------------------
// D8: snapshot-field-coverage
// ---------------------------------------------------------------------------

fn d8_run(manifest_text: &str, files: &[SourceFile]) -> Vec<Finding> {
    let (manifest, _) = parse_manifest(manifest_text, "manifest.txt");
    let lexed: Vec<LexData> = files.iter().map(|f| LexData::of(&f.content)).collect();
    let pairs: Vec<(&SourceFile, &LexData)> = files.iter().zip(lexed.iter()).collect();
    check_snapshot_field_coverage(&analyze(&pairs), &manifest)
}

const SNAP_FULL: &str = "pub struct Table {\n\
                         \x20   v: Vec<u64>,\n\
                         \x20   tick: u64,\n\
                         }\n\
                         impl Snapshot for Table {\n\
                         \x20   fn save(&self, w: &mut W) { w.bytes(&self.v); w.u64(self.tick); }\n\
                         \x20   fn restore(&mut self, r: &mut R) -> E { self.v = r.bytes()?; self.tick = r.u64()?; Ok(()) }\n\
                         }\n";

#[test]
fn d8_clean_when_every_field_is_saved_and_restored() {
    let files = [fixture("mem", FileKind::LibSrc, SNAP_FULL)];
    assert!(d8_run("mem/Table snapshot\n", &files).is_empty());
}

#[test]
fn d8_fires_on_field_missing_from_restore_at_the_declaration() {
    let src = SNAP_FULL.replace("self.tick = r.u64()?; ", "");
    let files = [fixture("mem", FileKind::LibSrc, src.as_str())];
    let f = d8_run("mem/Table snapshot\n", &files);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "snapshot-field-coverage");
    assert_eq!(f[0].severity, Severity::Deny);
    // The finding anchors on the field declaration (line 3: `tick`),
    // where the per-field pragma would go.
    assert_eq!((f[0].line, f[0].col), (3, 5), "{f:?}");
    assert!(f[0].message.contains("tick"), "{}", f[0].message);
    assert!(f[0].message.contains("restore body"), "{}", f[0].message);
}

#[test]
fn d8_fires_on_field_missing_from_save_and_from_both() {
    let no_save = SNAP_FULL.replace("w.u64(self.tick); ", "");
    let f = d8_run(
        "mem/Table snapshot\n",
        &[fixture("mem", FileKind::LibSrc, no_save.as_str())],
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("save body"), "{}", f[0].message);

    let neither = SNAP_FULL
        .replace("w.u64(self.tick); ", "")
        .replace("self.tick = r.u64()?; ", "");
    let f = d8_run(
        "mem/Table snapshot\n",
        &[fixture("mem", FileKind::LibSrc, neither.as_str())],
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(
        f[0].message.contains("save or restore body"),
        "{}",
        f[0].message
    );
}

#[test]
fn d8_helper_delegation_counts_as_a_reference() {
    // `self.v.save_into(w)` mentions the field: covered.
    let src = SNAP_FULL.replace("w.bytes(&self.v);", "self.v.save_into(w);");
    let files = [fixture("mem", FileKind::LibSrc, src.as_str())];
    assert!(d8_run("mem/Table snapshot\n", &files).is_empty());
}

#[test]
fn d8_scope_skips_state_mechanism_enums_and_unmanifested_structs() {
    // State-mechanism entries are out of D8 scope (save_state overrides
    // serialize through a different shape), as are enums (no named
    // fields) and structs that are not manifested at all.
    let state = "pub struct P { n: u64 }\n\
                 impl Prefetcher for P { fn save_state(&self, _w: &mut W) {} }\n";
    assert!(d8_run("mem/P state\n", &[fixture("mem", FileKind::LibSrc, state)]).is_empty());

    let enm = "pub enum Mode { A, B(u64) }\n\
               impl Snapshot for Mode {\n\
               \x20   fn save(&self, _w: &mut W) {}\n\
               \x20   fn restore(&mut self, _r: &mut R) -> E { Ok(()) }\n\
               }\n";
    assert!(d8_run(
        "mem/Mode snapshot\n",
        &[fixture("mem", FileKind::LibSrc, enm)]
    )
    .is_empty());

    let uncovered = SNAP_FULL.replace("self.tick = r.u64()?; ", "");
    assert!(d8_run("", &[fixture("mem", FileKind::LibSrc, uncovered.as_str())]).is_empty());
}

#[test]
fn d8_per_field_pragma_suppresses_through_lint() {
    // Config-derived fields carry the pragma on the declaration line; the
    // suppression runs through the full `lint()` pass.
    let src = "pub struct Table {\n\
               \x20   v: Vec<u64>,\n\
               \x20   // semloc-lint: allow(snapshot-field-coverage): set_mask is derived from cfg at construction\n\
               \x20   set_mask: u64,\n\
               }\n\
               impl Snapshot for Table {\n\
               \x20   fn save(&self, w: &mut W) { w.bytes(&self.v); }\n\
               \x20   fn restore(&mut self, r: &mut R) -> E { self.v = r.bytes()?; Ok(()) }\n\
               }\n";
    let report = lint(&ws_fixture(
        vec![fixture("mem", FileKind::LibSrc, src)],
        "mem/Table snapshot\n",
        "",
        "",
    ));
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == "snapshot-field-coverage" || f.rule == "stale-pragma"),
        "{:?}",
        report.findings
    );
    assert!(report.pragmas_honored >= 1);
}

// ---------------------------------------------------------------------------
// D9: refcell-borrow-discipline
// ---------------------------------------------------------------------------

fn d9_run(files: &[SourceFile]) -> Vec<Finding> {
    let lexed: Vec<LexData> = files.iter().map(|f| LexData::of(&f.content)).collect();
    let pairs: Vec<(&SourceFile, &LexData)> = files.iter().zip(lexed.iter()).collect();
    check_refcell_borrow_discipline(&analyze(&pairs))
}

#[test]
fn d9_fires_on_guard_held_across_self_method_call() {
    let src = "impl Core {\n\
               \x20   fn step(&mut self) {\n\
               \x20       let mut l2 = self.shared.borrow_mut();\n\
               \x20       l2.tick();\n\
               \x20       self.advance(1);\n\
               \x20   }\n\
               }\n";
    let f = d9_run(&[fixture("mem", FileKind::LibSrc, src)]);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "refcell-borrow-discipline");
    assert_eq!(f[0].line, 3, "finding anchors on the `let` binding: {f:?}");
    assert!(f[0].message.contains("l2"), "{}", f[0].message);
    assert!(f[0].message.contains("line 5"), "{}", f[0].message);
}

#[test]
fn d9_fires_on_guard_held_across_second_borrow() {
    let src = "fn drain(a: &Handle, b: &Handle) {\n\
               \x20   let ga = a.borrow_mut();\n\
               \x20   let gb = b.borrow_mut();\n\
               \x20   merge(ga, gb);\n\
               }\n";
    let f = d9_run(&[fixture("harness", FileKind::LibSrc, src)]);
    // `ga` is alive at line 3's second borrow. (`gb` is also a guard but
    // sees no further hazard.)
    assert!(
        f.iter()
            .any(|x| x.line == 2 && x.message.contains("another borrow")),
        "{f:?}"
    );
}

#[test]
fn d9_quiet_on_temporaries_scoped_blocks_and_drop() {
    let src = "impl Core {\n\
               \x20   fn a(&mut self) {\n\
               \x20       self.shared.borrow_mut().tick();\n\
               \x20       self.advance(1);\n\
               \x20   }\n\
               \x20   fn b(&mut self) {\n\
               \x20       { let mut g = self.shared.borrow_mut(); g.tick(); }\n\
               \x20       self.advance(1);\n\
               \x20   }\n\
               \x20   fn c(&mut self) {\n\
               \x20       let g = self.shared.borrow();\n\
               \x20       let v = g.depth();\n\
               \x20       drop(g);\n\
               \x20       self.advance(v);\n\
               \x20   }\n\
               \x20   fn d(&mut self) {\n\
               \x20       let stats = *self.shared.borrow().stats();\n\
               \x20       self.record(stats);\n\
               \x20   }\n\
               }\n";
    assert!(d9_run(&[fixture("mem", FileKind::LibSrc, src)]).is_empty());
}

#[test]
fn d9_scope_is_refcell_crates_non_test_code_only() {
    let src = "impl Core {\n\
               \x20   fn step(&mut self) {\n\
               \x20       let g = self.shared.borrow_mut();\n\
               \x20       self.advance(1);\n\
               \x20   }\n\
               }\n";
    // Other crates do not share RefCell state; test code is exempt.
    assert!(d9_run(&[fixture("core", FileKind::LibSrc, src)]).is_empty());
    assert!(d9_run(&[fixture("mem", FileKind::TestsDir, src)]).is_empty());
    let in_test = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
    assert!(d9_run(&[fixture("mem", FileKind::LibSrc, &in_test)]).is_empty());
}

#[test]
fn d9_pragma_suppresses_a_justified_guard() {
    let src = "impl Core {\n\
               \x20   fn step(&mut self) {\n\
               \x20       // semloc-lint: allow(refcell-borrow-discipline): advance() never touches self.shared\n\
               \x20       let g = self.shared.borrow_mut();\n\
               \x20       self.advance(1);\n\
               \x20   }\n\
               }\n";
    let file = fixture("mem", FileKind::LibSrc, src);
    let raw = d9_run(std::slice::from_ref(&file));
    assert_eq!(raw.len(), 1, "finding must exist before suppression");
    let lx = LexData::of(&file.content);
    assert!(semloc_lint::suppress(raw, &lx).is_empty());
}

// ---------------------------------------------------------------------------
// D10: env-var-registry
// ---------------------------------------------------------------------------

fn d10_run(files: &[SourceFile], registry_text: &str, readme: &str) -> Vec<Finding> {
    let (registry, mut findings) = parse_env_registry(registry_text, "env_registry.txt");
    let lexed: Vec<LexData> = files.iter().map(|f| LexData::of(&f.content)).collect();
    let pairs: Vec<(&SourceFile, &LexData)> = files.iter().zip(lexed.iter()).collect();
    findings.extend(check_env_registry(
        &analyze(&pairs),
        &registry,
        "env_registry.txt",
        readme,
    ));
    findings
}

const READS_KNOB: &str =
    "pub fn budget() -> u64 {\n    std::env::var(\"SEMLOC_FAKE\").map_or(0, |v| v.len() as u64)\n}\n";

#[test]
fn d10_clean_when_read_registered_and_documented() {
    let files = [fixture("harness", FileKind::LibSrc, READS_KNOB)];
    let f = d10_run(
        &files,
        "SEMLOC_FAKE  test knob\n",
        "Set `SEMLOC_FAKE` to test.",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d10_fires_on_unregistered_read_at_the_read_site() {
    let files = [fixture("harness", FileKind::LibSrc, READS_KNOB)];
    let f = d10_run(&files, "", "Set `SEMLOC_FAKE` to test.");
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "env-var-registry");
    assert_eq!(f[0].line, 2, "{f:?}");
    assert!(
        f[0].message.contains("env_registry.txt"),
        "{}",
        f[0].message
    );
}

#[test]
fn d10_fires_on_undocumented_read_and_on_dead_registry_entry() {
    let files = [fixture("harness", FileKind::LibSrc, READS_KNOB)];
    let f = d10_run(&files, "SEMLOC_FAKE  test knob\n", "");
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("README"), "{}", f[0].message);

    let f = d10_run(
        &files,
        "SEMLOC_FAKE  test knob\nSEMLOC_GHOST  removed knob\n",
        "Set `SEMLOC_FAKE` to test.",
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!((f[0].file.as_str(), f[0].line), ("env_registry.txt", 2));
    assert!(
        f[0].message.contains("no live read site"),
        "{}",
        f[0].message
    );
}

#[test]
fn d10_ignores_test_reads_writes_and_non_semloc_strings() {
    let src = "pub fn f() { let _ = format!(\"SEMLOC_DOC\"); }\n\
               pub fn w() { std::env::set_var(\"SEMLOC_SET\", \"1\"); std::env::remove_var(\"SEMLOC_SET\"); }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   fn t() { let _ = std::env::var(\"SEMLOC_TESTONLY\"); }\n\
               }\n";
    let files = [
        fixture("harness", FileKind::LibSrc, src),
        fixture(
            "harness",
            FileKind::TestsDir,
            "fn t() { let _ = std::env::var(\"SEMLOC_ITEST\"); }\n",
        ),
    ];
    assert!(d10_run(&files, "", "").is_empty());
}

#[test]
fn d10_malformed_registry_line_is_a_deny_finding() {
    let f = d10_run(&[], "NOT_SEMLOC  desc\nSEMLOC_BARE\n", "");
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(f.iter().all(|x| x.message.contains("malformed")), "{f:?}");
}

#[test]
fn d10_pragma_suppresses_at_the_read_site_through_lint() {
    let src = "pub fn probe() -> bool {\n\
               \x20   // semloc-lint: allow(env-var-registry): transient debug probe, removed next PR\n\
               \x20   std::env::var(\"SEMLOC_DEBUG_PROBE\").is_ok()\n\
               }\n";
    let report = lint(&ws_fixture(
        vec![fixture("harness", FileKind::LibSrc, src)],
        "",
        "",
        "",
    ));
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == "env-var-registry" || f.rule == "stale-pragma"),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// D11: stale-pragma (runs inside `lint()`)
// ---------------------------------------------------------------------------

/// A minimal workspace for `lint()` tests: the given files plus clean D5
/// anchors (so missing-anchor findings don't pollute the report).
fn ws_fixture(
    files: Vec<SourceFile>,
    manifest_text: &str,
    registry_text: &str,
    readme: &str,
) -> Workspace {
    let mut all = d5_anchors(GOOD_CONFIG, GOOD_CST, GOOD_SPEC, GOOD_REWARD);
    all.extend(files);
    let (manifest, manifest_findings) = parse_manifest(manifest_text, "manifest.txt");
    let (env_registry, env_registry_findings) =
        parse_env_registry(registry_text, "env_registry.txt");
    Workspace {
        root: PathBuf::from("."),
        files: all,
        manifest,
        manifest_findings,
        manifest_path: "manifest.txt".into(),
        env_registry,
        env_registry_findings,
        env_registry_path: "env_registry.txt".into(),
        readme: readme.into(),
    }
}

#[test]
fn d11_fires_on_pragma_that_suppresses_nothing() {
    let src = "// semloc-lint: allow(no-unwrap): the unwrap below was refactored away\n\
               pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
    let report = lint(&ws_fixture(
        vec![fixture("core", FileKind::LibSrc, src)],
        "",
        "",
        "",
    ));
    let f: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "stale-pragma")
        .collect();
    assert_eq!(f.len(), 1, "{:?}", report.findings);
    assert_eq!((f[0].line, f[0].col), (1, 1), "{f:?}");
    assert_eq!(f[0].severity, Severity::Deny);
    assert!(f[0].message.contains("no-unwrap"), "{}", f[0].message);
}

#[test]
fn d11_quiet_when_the_pragma_earns_its_keep() {
    let src = "// semloc-lint: allow(no-unwrap): caller checked\n\
               pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let report = lint(&ws_fixture(
        vec![fixture("core", FileKind::LibSrc, src)],
        "",
        "",
        "",
    ));
    assert!(
        report.findings.iter().all(|f| f.rule != "stale-pragma"),
        "{:?}",
        report.findings
    );
    assert!(report.findings.iter().all(|f| f.rule != "no-unwrap"));
}

#[test]
fn d11_flags_each_dead_entry_of_a_multi_rule_pragma() {
    // One entry suppresses, the other is stale: only the dead one is
    // flagged, and the live suppression still works.
    let src = "// semloc-lint: allow(no-unwrap, no-wall-clock): only the unwrap is real\n\
               pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let report = lint(&ws_fixture(
        vec![fixture("core", FileKind::LibSrc, src)],
        "",
        "",
        "",
    ));
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "stale-pragma")
        .collect();
    assert_eq!(stale.len(), 1, "{:?}", report.findings);
    assert!(stale[0].message.contains("no-wall-clock"), "{stale:?}");
    assert!(report.findings.iter().all(|f| f.rule != "no-unwrap"));
}

#[test]
fn d11_flags_unknown_rule_names() {
    let src = "// semloc-lint: allow(no-unwarp): typo in the rule id\n\
               pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let report = lint(&ws_fixture(
        vec![fixture("core", FileKind::LibSrc, src)],
        "",
        "",
        "",
    ));
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "stale-pragma" && f.message.contains("unknown rule")),
        "{:?}",
        report.findings
    );
    // The typo'd pragma suppressed nothing, so the unwrap also survives.
    assert!(report.findings.iter().any(|f| f.rule == "no-unwrap"));
}

#[test]
fn d11_stale_allow_all_is_flagged_and_never_self_excuses() {
    let src = "// semloc-lint: allow(all): blanket with nothing underneath\n\
               pub fn f() -> u32 { 7 }\n";
    let report = lint(&ws_fixture(
        vec![fixture("core", FileKind::LibSrc, src)],
        "",
        "",
        "",
    ));
    assert!(
        report.findings.iter().any(|f| f.rule == "stale-pragma"),
        "allow(all) must not launder its own staleness: {:?}",
        report.findings
    );
}

#[test]
fn d11_explicit_acknowledgement_suppresses_staleness() {
    // The sanctioned escape hatch: a pragma naming stale-pragma on the
    // line above acknowledges a scan-invisible suppression.
    let src = "// semloc-lint: allow(stale-pragma): the unwrap is behind cfg(slow_asserts)\n\
               // semloc-lint: allow(no-unwrap): fires only under cfg(slow_asserts)\n\
               pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
    let report = lint(&ws_fixture(
        vec![fixture("core", FileKind::LibSrc, src)],
        "",
        "",
        "",
    ));
    assert!(
        report.findings.iter().all(|f| f.rule != "stale-pragma"),
        "{:?}",
        report.findings
    );
}

#[test]
fn d6_pragma_suppresses_a_justified_fold() {
    let decl = fixture(
        "cpu",
        FileKind::LibSrc,
        "pub struct DbgStats { pub drift: f64 }\n",
    );
    let fold_src = "fn f(s: &mut DbgStats, d: f64) {\n\
                    \x20   // semloc-lint: allow(no-float-in-stats-accumulation): debug-only, never digested\n\
                    \x20   s.drift += d;\n\
                    }\n";
    let fold = fixture("cpu", FileKind::LibSrc, fold_src);
    let lexed: Vec<LexData> = [&decl, &fold]
        .iter()
        .map(|f| LexData::of(&f.content))
        .collect();
    let pairs: Vec<(&SourceFile, &LexData)> =
        [&decl, &fold].into_iter().zip(lexed.iter()).collect();
    let raw = semloc_lint::rules::check_float_stats(&analyze(&pairs));
    assert_eq!(raw.len(), 1, "finding must exist before suppression");
    let survived = semloc_lint::suppress(raw, &lexed[1]);
    assert!(survived.is_empty(), "{survived:?}");
}
