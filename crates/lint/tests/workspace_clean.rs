//! Meta-test: semloc-lint, run over this very workspace, must be clean.
//!
//! This is the enforcement teeth of the lint crate — a regression here
//! means someone introduced a determinism hazard (or forgot the pragma +
//! justification that argues why a site is safe). CI runs the same check
//! via `cargo run -p semloc-lint -- --deny-all`.

use semloc_lint::{lint, load_workspace};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_findings() {
    let ws = load_workspace(&workspace_root()).expect("workspace loads");
    let report = lint(&ws);
    assert!(
        report.findings.is_empty(),
        "semloc-lint found {} violation(s) in the workspace:\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_scan_covers_the_tree() {
    let ws = load_workspace(&workspace_root()).expect("workspace loads");
    // Sanity-check the walker: all sim crates, the umbrella crate, and the
    // manifest must actually be in the scan — an empty scan passing the
    // zero-findings test would be vacuous.
    assert!(
        ws.files.len() > 100,
        "only {} files scanned — walker lost a directory?",
        ws.files.len()
    );
    for needle in [
        "src/lib.rs",
        "crates/core/src/pfq.rs",
        "crates/mem/src/cache.rs",
        "crates/cpu/src/core.rs",
        "crates/bandit/src/reward.rs",
        "crates/baselines/src/sms.rs",
        "crates/spec/src/tables.rs",
        "crates/trace/src/snap.rs",
        "crates/harness/src/engine.rs",
        "tests/end_to_end.rs",
    ] {
        assert!(
            ws.files.iter().any(|f| f.rel_path == needle),
            "{needle} missing from the scan"
        );
    }
    assert!(
        ws.manifest.len() >= 20,
        "snapshot manifest lost entries: {}",
        ws.manifest.len()
    );
    assert!(ws.manifest_findings.is_empty(), "manifest must parse clean");
}

/// Seeded-mutation check for D8: drop one field reference from a real,
/// manifested Snapshot impl and the lint must catch it. This proves the
/// field-coverage rule actually reads the save/restore bodies rather than
/// vacuously passing on the clean tree.
#[test]
fn d8_catches_a_dropped_save_field() {
    let mut ws = load_workspace(&workspace_root()).expect("workspace loads");
    let bpred = ws
        .files
        .iter_mut()
        .find(|f| f.rel_path == "crates/cpu/src/bpred.rs")
        .expect("gshare predictor is in the scan");
    let seeded = "w.put_u16(self.history);";
    assert!(
        bpred.content.contains(seeded),
        "mutation anchor vanished from bpred.rs — update this test"
    );
    // The mutation: Gshare::save no longer serializes `history`. Everything
    // else (restore, the manifest entry, the pragma set) is untouched.
    bpred.content = bpred.content.replace(seeded, "");

    let report = lint(&ws);
    let caught = report.findings.iter().any(|f| {
        f.rule == "snapshot-field-coverage"
            && f.file == "crates/cpu/src/bpred.rs"
            && f.message.contains("`history`")
            && f.message.contains("save body")
    });
    assert!(
        caught,
        "D8 missed the seeded mutation; findings were:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The env-var registry must stay populated and every entry must earn its
/// keep — D10's both-direction check runs in `lint()`, so a clean report
/// plus a non-trivial registry means docs and code agree.
#[test]
fn env_registry_is_populated_and_live() {
    let ws = load_workspace(&workspace_root()).expect("workspace loads");
    assert!(
        ws.env_registry.len() >= 16,
        "env registry lost entries: {}",
        ws.env_registry.len()
    );
    assert!(
        ws.env_registry_findings.is_empty(),
        "env registry must parse clean"
    );
}

#[test]
fn vendored_stubs_are_not_scanned() {
    let ws = load_workspace(&workspace_root()).expect("workspace loads");
    assert!(
        !ws.files
            .iter()
            .any(|f| f.rel_path.starts_with("crates/rand/")
                || f.rel_path.starts_with("crates/proptest/")
                || f.rel_path.starts_with("crates/criterion/")),
        "vendor stubs mirror external APIs and must stay out of the scan"
    );
}
