//! Meta-test: semloc-lint, run over this very workspace, must be clean.
//!
//! This is the enforcement teeth of the lint crate — a regression here
//! means someone introduced a determinism hazard (or forgot the pragma +
//! justification that argues why a site is safe). CI runs the same check
//! via `cargo run -p semloc-lint -- --deny-all`.

use semloc_lint::{lint, load_workspace};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_findings() {
    let ws = load_workspace(&workspace_root()).expect("workspace loads");
    let report = lint(&ws);
    assert!(
        report.findings.is_empty(),
        "semloc-lint found {} violation(s) in the workspace:\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_scan_covers_the_tree() {
    let ws = load_workspace(&workspace_root()).expect("workspace loads");
    // Sanity-check the walker: all sim crates, the umbrella crate, and the
    // manifest must actually be in the scan — an empty scan passing the
    // zero-findings test would be vacuous.
    assert!(
        ws.files.len() > 100,
        "only {} files scanned — walker lost a directory?",
        ws.files.len()
    );
    for needle in [
        "src/lib.rs",
        "crates/core/src/pfq.rs",
        "crates/mem/src/cache.rs",
        "crates/cpu/src/core.rs",
        "crates/bandit/src/reward.rs",
        "crates/baselines/src/sms.rs",
        "crates/spec/src/tables.rs",
        "crates/trace/src/snap.rs",
        "crates/harness/src/engine.rs",
        "tests/end_to_end.rs",
    ] {
        assert!(
            ws.files.iter().any(|f| f.rel_path == needle),
            "{needle} missing from the scan"
        );
    }
    assert!(
        ws.manifest.len() >= 20,
        "snapshot manifest lost entries: {}",
        ws.manifest.len()
    );
    assert!(ws.manifest_findings.is_empty(), "manifest must parse clean");
}

#[test]
fn vendored_stubs_are_not_scanned() {
    let ws = load_workspace(&workspace_root()).expect("workspace loads");
    assert!(
        !ws.files
            .iter()
            .any(|f| f.rel_path.starts_with("crates/rand/")
                || f.rel_path.starts_with("crates/proptest/")
                || f.rel_path.starts_with("crates/criterion/")),
        "vendor stubs mirror external APIs and must stay out of the scan"
    );
}
