//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a small wall-clock benchmark harness exposing the
//! criterion API subset its benches use: [`Criterion::benchmark_group`],
//! `throughput`, `sample_size`, `bench_function`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], plus the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Methodology: each benchmark is calibrated so one sample takes roughly
//! 20 ms, then timed over a number of samples derived from `sample_size`;
//! the reported figure is the **median** ns/iteration (robust to scheduler
//! noise). A substring filter can be passed on the command line
//! (`cargo bench -- <filter>`). When the `BENCH_JSON` environment variable
//! names a file, one JSON line per benchmark is appended to it — the
//! `bench_compare` tool builds `BENCH_hotpath.json` from its own runs, but
//! any harness invocation can be captured the same way.

// Wall-clock timing is this crate's purpose (semloc-lint rule D2 exempts bench/criterion).
#![allow(clippy::disallowed_methods)]

use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process `n` logical elements each.
    Elements(u64),
    /// Iterations process `n` bytes each.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (only the per-iteration flavour is
/// meaningfully distinguished by this stub).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Call setup before every routine invocation; time only the routine.
    PerIteration,
    /// Treated as [`BatchSize::PerIteration`].
    SmallInput,
    /// Treated as [`BatchSize::PerIteration`].
    LargeInput,
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards everything after `--`; ignore flags (e.g.
        // `--bench`, which cargo itself appends) and take the first free
        // argument as a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: 100,
        }
    }

    /// Run a free-standing benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(self, None, &id.to_string(), None, 100, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotate how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the requested number of samples (clamped by this stub).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(
            self.criterion,
            Some(&self.name),
            &id.to_string(),
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// End the group (kept for API compatibility; output is flushed as it
    /// is produced).
    pub fn finish(&mut self) {}
}

fn run_one<F>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher<'_>),
{
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(filter) = &criterion.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count: sample_size.clamp(4, 30),
        _marker: std::marker::PhantomData,
    };
    f(&mut b);
    let Some(median) = median_ns(&mut b.samples) else {
        println!("{full:<56} (no measurement)");
        return;
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({} elem/s)", human_rate(n as f64 * 1e9 / median))
        }
        Some(Throughput::Bytes(n)) => format!("  ({}B/s)", human_rate(n as f64 * 1e9 / median)),
        None => String::new(),
    };
    println!(
        "{full:<56} time: {:>12} ns/iter{rate}",
        format!("{median:.1}")
    );
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"bench\": \"{full}\", \"ns_per_iter\": {median:.2}}}"
            );
        }
    }
}

fn median_ns(samples: &mut [f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    Some(samples[samples.len() / 2])
}

fn human_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} k", r / 1e3)
    } else {
        format!("{r:.0} ")
    }
}

/// Per-sample target duration: long enough to swamp timer overhead, short
/// enough that a full bench suite stays interactive.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Measurement collector handed to each benchmark closure.
pub struct Bencher<'a> {
    samples: Vec<f64>,
    sample_count: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Time `routine`, called in a calibrated loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: grow the per-sample iteration count until one batch is
        // long enough to time reliably, then scale to the sample target.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(2) || iters >= 1 << 22 {
                break (dt.as_nanos() as f64 / iters as f64).max(0.01);
            }
            iters = iters.saturating_mul(8);
        };
        let iters = ((SAMPLE_TARGET.as_nanos() as f64 / per_iter_ns) as u64).clamp(1, 1 << 24);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Calibrate on a single input.
        let probe = {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        };
        let per_sample = ((SAMPLE_TARGET.as_nanos() as f64 / (probe.as_nanos() as f64).max(1.0))
            as u64)
            .clamp(1, 1 << 16);
        for _ in 0..self.sample_count {
            let mut timed = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            self.samples
                .push(timed.as_nanos() as f64 / per_sample as f64);
        }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust() {
        let mut s = vec![5.0, 1.0, 100.0];
        assert_eq!(median_ns(&mut s), Some(5.0));
        assert_eq!(median_ns(&mut []), None);
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: 4,
            _marker: std::marker::PhantomData,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 4);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: 4,
            _marker: std::marker::PhantomData,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration);
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn group_runs_and_filters() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("skipped", |_b| ran = true);
            g.finish();
        }
        assert!(!ran, "filtered-out benchmarks must not run");
    }
}
