//! Property-based tests over the baseline prefetchers: they must be
//! well-behaved under arbitrary access streams (no panics, bounded fanout,
//! plausible targets) and honor their structural contracts.

use proptest::prelude::*;

use semloc_baselines::{
    GhbFlavor, GhbPrefetcher, MarkovPrefetcher, NextLinePrefetcher, SmsPrefetcher, StridePrefetcher,
};
use semloc_mem::{MemPressure, PrefetchReq, Prefetcher};
use semloc_trace::AccessContext;

fn pressure() -> MemPressure {
    MemPressure {
        l1_mshr_free: 4,
        l2_mshr_free: 20,
    }
}

fn drive<P: Prefetcher>(p: &mut P, stream: &[(u64, u64)]) -> (usize, Vec<PrefetchReq>) {
    let mut out = Vec::new();
    let mut all = Vec::new();
    let mut total = 0usize;
    for (i, &(pc, addr)) in stream.iter().enumerate() {
        out.clear();
        let ctx = AccessContext::bare(i as u64, 0x400 + (pc % 64) * 8, addr % (1 << 34), false);
        p.on_access(&ctx, pressure(), &mut out);
        total += out.len();
        all.extend(out.iter().copied());
    }
    (total, all)
}

proptest! {
    /// Every baseline survives arbitrary streams with bounded per-access
    /// fanout and non-degenerate targets.
    #[test]
    fn baselines_are_robust(stream in proptest::collection::vec((0u64..1000, 0u64..(1u64 << 34)), 1..400)) {
        let checks: Vec<(Box<dyn Prefetcher>, usize)> = vec![
            (Box::new(StridePrefetcher::paper_default()), 3),
            (Box::new(GhbPrefetcher::paper_default(GhbFlavor::GlobalDc)), 3),
            (Box::new(GhbPrefetcher::paper_default(GhbFlavor::PcDc)), 3),
            (Box::new(GhbPrefetcher::paper_default(GhbFlavor::GlobalAc)), 3),
            (Box::new(SmsPrefetcher::paper_default()), 32),
            (Box::new(MarkovPrefetcher::paper_default()), 2),
            (Box::new(NextLinePrefetcher::default()), 1),
        ];
        for (mut p, max_fanout) in checks {
            let mut out = Vec::new();
            for (i, &(pc, addr)) in stream.iter().enumerate() {
                out.clear();
                let ctx = AccessContext::bare(i as u64, 0x400 + (pc % 64) * 8, addr, false);
                p.on_access(&ctx, pressure(), &mut out);
                prop_assert!(out.len() <= max_fanout, "{}: fanout {} > {max_fanout}", p.name(), out.len());
                for r in &out {
                    prop_assert!(!r.shadow, "baselines never issue shadows");
                }
                p.on_issue_result(0, i % 2 == 0);
            }
            prop_assert!(p.storage_bytes() < 64 * 1024, "{}: implausible budget", p.name());
        }
    }

    /// A pure stride stream is eventually covered by the stride prefetcher:
    /// after warmup, every access triggers predictions that include the
    /// next strided address.
    #[test]
    fn stride_covers_any_constant_stride(stride in 8u64..2048, n in 20usize..100) {
        let mut p = StridePrefetcher::paper_default();
        let stream: Vec<(u64, u64)> = (0..n).map(|i| (1, 0x10_0000 + i as u64 * stride)).collect();
        let mut out = Vec::new();
        let mut covered = 0;
        for (i, &(_, addr)) in stream.iter().enumerate() {
            out.clear();
            p.on_access(&AccessContext::bare(i as u64, 0x408, addr, false), pressure(), &mut out);
            if i >= 4 {
                let next = addr + stride;
                if out.iter().any(|r| r.addr / 64 == next / 64) {
                    covered += 1;
                }
            }
        }
        prop_assert!(covered >= n - 6, "stride {stride}: covered only {covered}/{n}");
    }

    /// The GHB never predicts an address it has not derived from observed
    /// deltas: on a stream confined to one region, predictions stay within
    /// a delta-reachable envelope of that region.
    #[test]
    fn ghb_predictions_stay_plausible(addrs in proptest::collection::vec(0u64..(1 << 20), 10..200)) {
        let mut p = GhbPrefetcher::paper_default(GhbFlavor::GlobalDc);
        let (_, all) = drive(&mut p, &addrs.iter().map(|&a| (1, a)).collect::<Vec<_>>());
        for r in all {
            // Max single delta is < 2^20/64 lines; 3 of them from a base
            // within the region keeps targets under 4 * 2^20.
            prop_assert!(r.addr < 4 << 20, "target {:#x} beyond delta-reachable envelope", r.addr);
        }
    }

    /// SMS never predicts outside the triggering region.
    #[test]
    fn sms_predictions_stay_in_region(addrs in proptest::collection::vec(0u64..(1 << 24), 10..300)) {
        let mut p = SmsPrefetcher::paper_default();
        let mut out = Vec::new();
        for (i, &addr) in addrs.iter().enumerate() {
            out.clear();
            p.on_access(&AccessContext::bare(i as u64, 0x440, addr, false), pressure(), &mut out);
            for r in &out {
                prop_assert_eq!(r.addr / 2048, addr / 2048, "SMS must prefetch within the trigger's 2kB region");
            }
        }
    }
}
