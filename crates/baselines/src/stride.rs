//! Per-PC stride prefetching (reference prediction table).
//!
//! The classic design of Fu, Patel & Janssens: a direct-mapped table keyed
//! by load PC, tracking the last address and last stride with a 2-bit
//! confidence counter; confident entries prefetch `degree` strides ahead.

use semloc_mem::{MemPressure, PrefetchReq, Prefetcher, PrefetcherStats};
use semloc_trace::{snap_err, AccessContext, Addr, SnapReader, SnapWriter, Snapshot};

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    tag: u16,
    last_addr: Addr,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// A reference-prediction-table stride prefetcher.
///
/// ```rust
/// use semloc_baselines::StridePrefetcher;
/// use semloc_mem::{MemPressure, Prefetcher};
/// use semloc_trace::AccessContext;
///
/// let mut pf = StridePrefetcher::paper_default();
/// let mut out = Vec::new();
/// for i in 0..8u64 {
///     out.clear();
///     let ctx = AccessContext::bare(i, 0x400, 0x1000 + i * 128, false);
///     pf.on_access(&ctx, MemPressure { l1_mshr_free: 4, l2_mshr_free: 20 }, &mut out);
/// }
/// assert!(!out.is_empty(), "a constant stride is detected after warmup");
/// ```
#[derive(Debug)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    mask: u64,
    degree: u32,
    line: u64,
    stats: PrefetcherStats,
}

impl StridePrefetcher {
    /// A table of `entries` slots (power of two) prefetching `degree`
    /// strides ahead at `line`-byte granularity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `degree` is zero.
    pub fn new(entries: usize, degree: u32, line: u64) -> Self {
        assert!(entries.is_power_of_two() && degree > 0 && line.is_power_of_two());
        StridePrefetcher {
            table: vec![Entry::default(); entries],
            mask: (entries - 1) as u64,
            degree,
            line,
            stats: PrefetcherStats::default(),
        }
    }

    /// The configuration used in the paper's comparison (storage-scaled to
    /// the context prefetcher's ~32 kB budget).
    pub fn paper_default() -> Self {
        // 2K entries x ~14B = 28kB.
        StridePrefetcher::new(2048, 3, 64)
    }

    fn index(&self, pc: Addr) -> (usize, u16) {
        let h = pc >> 2;
        (((h ^ (h >> 11)) & self.mask) as usize, (pc >> 13) as u16)
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        _pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let (idx, tag) = self.index(ctx.pc);
        let degree = self.degree;
        let line = self.line;
        let e = &mut self.table[idx];
        if !e.valid || e.tag != tag {
            *e = Entry {
                tag,
                last_addr: ctx.addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return;
        }
        let stride = ctx.addr as i64 - e.last_addr as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            if e.confidence == 0 {
                e.stride = stride;
            }
        }
        e.last_addr = ctx.addr;
        if e.confidence >= 2 && e.stride != 0 {
            for k in 1..=degree as i64 {
                let target = ctx.addr as i64 + e.stride * k;
                if target > 0 {
                    out.push(PrefetchReq::real((target as u64) & !(line - 1), k as u64));
                    self.stats.issued += 1;
                }
            }
        }
    }

    fn on_issue_result(&mut self, _tag: u64, issued: bool) {
        if !issued {
            self.stats.rejected += 1;
        }
    }

    fn storage_bytes(&self) -> usize {
        // tag(2) + addr(6) + stride(4) + conf/valid(1) per entry.
        self.table.len() * 13
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.section(*b"STRD", 1);
        self.stats.save(w);
        w.put_len(self.table.len());
        for e in &self.table {
            w.put_u16(e.tag);
            w.put_u64(e.last_addr);
            w.put_i64(e.stride);
            w.put_u8(e.confidence);
            w.put_bool(e.valid);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"STRD", 1)?;
        self.stats.restore(r)?;
        let n = r.get_len()?;
        if n != self.table.len() {
            return Err(snap_err(format!(
                "stride snapshot has {n} entries, table expects {}",
                self.table.len()
            )));
        }
        for e in &mut self.table {
            e.tag = r.get_u16()?;
            e.last_addr = r.get_u64()?;
            e.stride = r.get_i64()?;
            e.confidence = r.get_u8()?;
            e.valid = r.get_bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressure() -> MemPressure {
        MemPressure {
            l1_mshr_free: 4,
            l2_mshr_free: 20,
        }
    }

    fn ctx(pc: Addr, addr: Addr) -> AccessContext {
        AccessContext::bare(0, pc, addr, false)
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut p = StridePrefetcher::paper_default();
        let mut out = Vec::new();
        for i in 0..50u64 {
            out.clear();
            p.on_access(&ctx(0x400, 0x1000 + i * 256), pressure(), &mut out);
        }
        let mut w = SnapWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut q = StridePrefetcher::paper_default();
        let mut r = SnapReader::new(&bytes);
        q.restore_state(&mut r).expect("restore");
        r.expect_end().expect("fully consumed");
        let mut w2 = SnapWriter::new();
        q.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
        let mut oq = Vec::new();
        for i in 50..60u64 {
            out.clear();
            oq.clear();
            let c = ctx(0x400, 0x1000 + i * 256);
            p.on_access(&c, pressure(), &mut out);
            q.on_access(&c, pressure(), &mut oq);
            assert_eq!(
                out.iter().map(|r| r.addr).collect::<Vec<_>>(),
                oq.iter().map(|r| r.addr).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn detects_a_constant_stride_after_training() {
        let mut p = StridePrefetcher::paper_default();
        let mut out = Vec::new();
        for i in 0..10u64 {
            out.clear();
            p.on_access(&ctx(0x400, 0x1000 + i * 256), pressure(), &mut out);
        }
        assert_eq!(out.len(), 3, "degree-3 prefetching once confident");
        assert_eq!(out[0].addr, 0x1000 + 9 * 256 + 256);
        assert_eq!(out[2].addr, 0x1000 + 9 * 256 + 3 * 256);
    }

    #[test]
    fn different_pcs_track_independent_strides() {
        let mut p = StridePrefetcher::paper_default();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..10u64 {
            out_a.clear();
            out_b.clear();
            p.on_access(&ctx(0x400, 0x10_0000 + i * 64), pressure(), &mut out_a);
            p.on_access(&ctx(0x900, 0x80_0000 + i * 4096), pressure(), &mut out_b);
        }
        assert_eq!(out_a[0].addr - (0x10_0000 + 9 * 64), 64);
        assert_eq!(out_b[0].addr - (0x80_0000 + 9 * 4096), 4096);
    }

    #[test]
    fn random_addresses_stay_quiet() {
        let mut p = StridePrefetcher::paper_default();
        let mut out = Vec::new();
        let mut total = 0;
        let mut state = 3u64;
        for _ in 0..1000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            out.clear();
            p.on_access(&ctx(0x400, state % (1 << 30)), pressure(), &mut out);
            total += out.len();
        }
        assert!(total < 30, "random stream triggered {total} prefetches");
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StridePrefetcher::paper_default();
        let mut out = Vec::new();
        for i in 0..10i64 {
            out.clear();
            p.on_access(
                &ctx(0x400, (0x100_0000 - i * 128) as u64),
                pressure(),
                &mut out,
            );
        }
        assert!(!out.is_empty());
        assert!(out[0].addr < 0x100_0000 - 9 * 128);
    }

    #[test]
    fn storage_is_near_the_scaled_budget() {
        let p = StridePrefetcher::paper_default();
        let kb = p.storage_bytes() as f64 / 1024.0;
        assert!((20.0..=36.0).contains(&kb), "storage {kb} kB");
    }
}
