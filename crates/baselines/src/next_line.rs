//! Trivial next-N-lines prefetching — the sanity floor of the comparison
//! and the subject of the `custom_prefetcher` example.

use semloc_mem::{MemPressure, PrefetchReq, Prefetcher, PrefetcherStats};
use semloc_trace::{AccessContext, SnapReader, SnapWriter, Snapshot};

/// Prefetch the `degree` lines following every demand access.
#[derive(Debug)]
pub struct NextLinePrefetcher {
    degree: u32,
    line: u64,
    stats: PrefetcherStats,
}

impl NextLinePrefetcher {
    /// A next-line prefetcher of the given degree at `line`-byte
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or `line` is not a power of two.
    pub fn new(degree: u32, line: u64) -> Self {
        assert!(degree >= 1 && line.is_power_of_two());
        NextLinePrefetcher {
            degree,
            line,
            stats: PrefetcherStats::default(),
        }
    }
}

impl Default for NextLinePrefetcher {
    fn default() -> Self {
        NextLinePrefetcher::new(1, 64)
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn name(&self) -> &'static str {
        "next-line"
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        _pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let base = ctx.addr & !(self.line - 1);
        for k in 1..=self.degree as u64 {
            out.push(PrefetchReq::real(base + k * self.line, k));
            self.stats.issued += 1;
        }
    }

    fn on_issue_result(&mut self, _tag: u64, issued: bool) {
        if !issued {
            self.stats.rejected += 1;
        }
    }

    fn storage_bytes(&self) -> usize {
        0
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.section(*b"NXTL", 1);
        self.stats.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"NXTL", 1)?;
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetches_following_lines() {
        let mut p = NextLinePrefetcher::new(2, 64);
        let mut out = Vec::new();
        p.on_access(
            &AccessContext::bare(0, 0x400, 0x1010, false),
            MemPressure {
                l1_mshr_free: 4,
                l2_mshr_free: 20,
            },
            &mut out,
        );
        assert_eq!(
            out.iter().map(|r| r.addr).collect::<Vec<_>>(),
            vec![0x1040, 0x1080]
        );
    }
}
