//! Spatio-temporal baseline prefetchers the paper compares against (§7).
//!
//! * [`StridePrefetcher`] — classic per-PC reference-prediction-table
//!   stride prefetching (Fu, Patel & Janssens).
//! * [`GhbPrefetcher`] — the Global History Buffer of Nesbit & Smith, in
//!   both flavors evaluated by the paper: **G/DC** (global delta
//!   correlation) and **PC/DC** (per-PC delta correlation). Table 2: 2K
//!   GHB entries, history length 3, degree 3, ~32 kB.
//! * [`SmsPrefetcher`] — Spatial Memory Streaming (Somogyi et al.):
//!   2 kB regions, 32-entry accumulation and filter tables, 2K-entry
//!   pattern-history table, ~20 kB.
//! * [`MarkovPrefetcher`] — the address-correlating Markov prefetcher of
//!   Joseph & Grunwald (related work the paper contrasts with).
//! * [`NextLinePrefetcher`] — trivial sequential prefetching, useful as a
//!   sanity floor and in the examples.
//!
//! All of them implement [`semloc_mem::Prefetcher`] and are storage-scaled
//! to the context prefetcher's budget, as the paper scales its competitors.

// Mirror of semloc-lint rule D3 (no-unwrap); D1/D2 are mirrored via clippy.toml.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod ghb;
pub mod markov;
pub mod next_line;
pub mod sms;
pub mod stride;

pub use ghb::{GhbFlavor, GhbPrefetcher};
pub use markov::MarkovPrefetcher;
pub use next_line::NextLinePrefetcher;
pub use sms::SmsPrefetcher;
pub use stride::StridePrefetcher;

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use semloc_mem::{MemPressure, Prefetcher};
    use semloc_trace::{AccessContext, SnapReader, SnapWriter};

    fn pressure() -> MemPressure {
        MemPressure {
            l1_mshr_free: 4,
            l2_mshr_free: 20,
        }
    }

    /// Mixed per-PC strided streams with a recurring irregular chain —
    /// enough variety to populate every baseline's tables.
    fn drive(p: &mut dyn Prefetcher, range: std::ops::Range<u64>, out: &mut Vec<u64>) {
        let chain = [0x70_0000u64, 0x21_0000, 0x95_0000, 0x33_0000];
        let mut buf = Vec::new();
        for i in range {
            let (pc, addr) = match i % 3 {
                0 => (0x400, 0x10_0000 + (i / 3) * 64),
                1 => (0x900, 0x80_0000 + (i / 3) * 4096),
                _ => (0x700, chain[(i / 3) as usize % chain.len()]),
            };
            buf.clear();
            p.on_access(
                &AccessContext::bare(i, pc, addr, false),
                pressure(),
                &mut buf,
            );
            out.extend(buf.iter().map(|r| r.addr));
        }
    }

    fn round_trip(mut p: Box<dyn Prefetcher>, mut q: Box<dyn Prefetcher>) {
        let mut sink = Vec::new();
        drive(p.as_mut(), 0..3000, &mut sink);

        let mut w = SnapWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        q.restore_state(&mut r).expect("restore succeeds");
        r.expect_end().expect("snapshot fully consumed");
        let mut w2 = SnapWriter::new();
        q.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "{}: re-save differs", p.name());

        let mut out_p = Vec::new();
        let mut out_q = Vec::new();
        drive(p.as_mut(), 3000..4000, &mut out_p);
        drive(q.as_mut(), 3000..4000, &mut out_q);
        assert_eq!(out_p, out_q, "{}: continuation diverged", p.name());
        assert_eq!(p.stats(), q.stats());
    }

    #[test]
    fn every_baseline_round_trips_bit_identically() {
        round_trip(
            Box::new(StridePrefetcher::paper_default()),
            Box::new(StridePrefetcher::paper_default()),
        );
        for flavor in [GhbFlavor::GlobalDc, GhbFlavor::PcDc, GhbFlavor::GlobalAc] {
            round_trip(
                Box::new(GhbPrefetcher::paper_default(flavor)),
                Box::new(GhbPrefetcher::paper_default(flavor)),
            );
        }
        round_trip(
            Box::new(SmsPrefetcher::paper_default()),
            Box::new(SmsPrefetcher::paper_default()),
        );
        round_trip(
            Box::new(MarkovPrefetcher::paper_default()),
            Box::new(MarkovPrefetcher::paper_default()),
        );
        round_trip(
            Box::new(NextLinePrefetcher::default()),
            Box::new(NextLinePrefetcher::default()),
        );
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let mut p = GhbPrefetcher::paper_default(GhbFlavor::GlobalDc);
        let mut sink = Vec::new();
        drive(&mut p, 0..100, &mut sink);
        let mut w = SnapWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut q = GhbPrefetcher::new(GhbFlavor::GlobalDc, 256, 64, 3);
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            q.restore_state(&mut r).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
