//! Spatio-temporal baseline prefetchers the paper compares against (§7).
//!
//! * [`StridePrefetcher`] — classic per-PC reference-prediction-table
//!   stride prefetching (Fu, Patel & Janssens).
//! * [`GhbPrefetcher`] — the Global History Buffer of Nesbit & Smith, in
//!   both flavors evaluated by the paper: **G/DC** (global delta
//!   correlation) and **PC/DC** (per-PC delta correlation). Table 2: 2K
//!   GHB entries, history length 3, degree 3, ~32 kB.
//! * [`SmsPrefetcher`] — Spatial Memory Streaming (Somogyi et al.):
//!   2 kB regions, 32-entry accumulation and filter tables, 2K-entry
//!   pattern-history table, ~20 kB.
//! * [`MarkovPrefetcher`] — the address-correlating Markov prefetcher of
//!   Joseph & Grunwald (related work the paper contrasts with).
//! * [`NextLinePrefetcher`] — trivial sequential prefetching, useful as a
//!   sanity floor and in the examples.
//!
//! All of them implement [`semloc_mem::Prefetcher`] and are storage-scaled
//! to the context prefetcher's budget, as the paper scales its competitors.

pub mod ghb;
pub mod markov;
pub mod next_line;
pub mod sms;
pub mod stride;

pub use ghb::{GhbFlavor, GhbPrefetcher};
pub use markov::MarkovPrefetcher;
pub use next_line::NextLinePrefetcher;
pub use sms::SmsPrefetcher;
pub use stride::StridePrefetcher;
