//! The Global History Buffer prefetcher (Nesbit & Smith, HPCA'04).
//!
//! A circular *global history buffer* holds the most recent miss addresses;
//! an *index table* keyed either globally (a single stream) or by load PC
//! points at the newest GHB entry of that key, and entries chain backwards
//! through their predecessors of the same key.
//!
//! The **delta-correlation** (DC) flavors evaluated by the paper take the
//! last two address deltas of a chain as a signature, search the chain for
//! an earlier occurrence of the same delta pair, and replay the deltas that
//! followed it (prefetch degree 3). Table 2: GHB size 2K, history length 3,
//! degree 3, ~32 kB.

use semloc_mem::{MemPressure, PrefetchReq, Prefetcher, PrefetcherStats};
#[cfg(test)]
use semloc_trace::Addr;
use semloc_trace::{snap_err, AccessContext, SnapReader, SnapWriter, Snapshot};

/// Localization and correlation mode of the GHB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhbFlavor {
    /// One global access stream, delta correlation (G/DC).
    GlobalDc,
    /// Streams localized by load PC, delta correlation (PC/DC).
    PcDc,
    /// Address correlation (G/AC): chains link recurrences of the *same
    /// address*; prediction replays the accesses that followed the previous
    /// occurrence (the Markov-style flavor of Nesbit & Smith).
    GlobalAc,
}

impl GhbFlavor {
    fn label(self) -> &'static str {
        match self {
            GhbFlavor::GlobalDc => "ghb-g/dc",
            GhbFlavor::PcDc => "ghb-pc/dc",
            GhbFlavor::GlobalAc => "ghb-g/ac",
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct GhbEntry {
    block: u64,
    /// Absolute position of the previous entry with the same key, or
    /// `u64::MAX`.
    prev: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct ItEntry {
    tag: u16,
    /// Absolute position of the newest GHB entry for this key.
    head: u64,
    valid: bool,
}

/// A GHB delta-correlation prefetcher.
#[derive(Debug)]
pub struct GhbPrefetcher {
    flavor: GhbFlavor,
    ghb: Vec<GhbEntry>,
    /// Monotone count of pushes; `pos % len` is the ring slot.
    pushes: u64,
    it: Vec<ItEntry>,
    degree: u32,
    line_shift: u32,
    max_walk: u32,
    stats: PrefetcherStats,
    /// Reusable chain-walk scratch (transient; not snapshotted). The DC
    /// path used to allocate two fresh `Vec`s per access.
    chain_buf: Vec<u64>,
    delta_buf: Vec<i64>,
}

impl GhbPrefetcher {
    /// A GHB of `ghb_entries` (power of two) with an index table of
    /// `it_entries` (power of two), prefetching `degree` deltas ahead.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two sizes or zero degree.
    pub fn new(flavor: GhbFlavor, ghb_entries: usize, it_entries: usize, degree: u32) -> Self {
        assert!(ghb_entries.is_power_of_two() && it_entries.is_power_of_two() && degree > 0);
        GhbPrefetcher {
            flavor,
            ghb: vec![GhbEntry::default(); ghb_entries],
            pushes: 0,
            it: vec![ItEntry::default(); it_entries],
            degree,
            line_shift: 6,
            max_walk: 64,
            stats: PrefetcherStats::default(),
            chain_buf: Vec::with_capacity(64),
            delta_buf: Vec::with_capacity(64),
        }
    }

    /// Table 2 configuration: 2K GHB entries, degree 3.
    pub fn paper_default(flavor: GhbFlavor) -> Self {
        GhbPrefetcher::new(flavor, 2048, 512, 3)
    }

    fn key(&self, ctx: &AccessContext) -> u64 {
        match self.flavor {
            GhbFlavor::GlobalDc => 0,
            GhbFlavor::PcDc => ctx.pc,
            GhbFlavor::GlobalAc => ctx.addr >> self.line_shift,
        }
    }

    fn it_slot(&self, key: u64) -> (usize, u16) {
        let h = key ^ (key >> 9);
        ((h as usize) & (self.it.len() - 1), (key >> 2) as u16)
    }

    /// Is absolute position `pos` still resident in the ring?
    fn live(&self, pos: u64) -> bool {
        pos != u64::MAX && pos < self.pushes && self.pushes - pos <= self.ghb.len() as u64
    }

    fn at(&self, pos: u64) -> &GhbEntry {
        &self.ghb[(pos % self.ghb.len() as u64) as usize]
    }

    /// Collect the blocks of the key chain starting at `head` into `out`
    /// (cleared first), newest first, up to `max_walk` entries.
    fn chain_into(&self, head: u64, out: &mut Vec<u64>) {
        out.clear();
        let mut pos = head;
        while self.live(pos) && out.len() < self.max_walk as usize {
            let e = self.at(pos);
            out.push(e.block);
            if e.prev >= pos {
                break; // corrupted by wrap-around reuse
            }
            pos = e.prev;
        }
    }
}

impl Prefetcher for GhbPrefetcher {
    fn name(&self) -> &'static str {
        self.flavor.label()
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        _pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let block = ctx.addr >> self.line_shift;
        let key = self.key(ctx);
        let (it_idx, tag) = self.it_slot(key);

        // Link the new GHB entry to the previous head of this key.
        let prev = {
            let e = &self.it[it_idx];
            if e.valid && e.tag == tag && self.live(e.head) {
                e.head
            } else {
                u64::MAX
            }
        };
        let pos = self.pushes;
        let slot = (pos % self.ghb.len() as u64) as usize;
        self.ghb[slot] = GhbEntry { block, prev };
        self.pushes += 1;
        self.it[it_idx] = ItEntry {
            tag,
            head: pos,
            valid: true,
        };

        if self.flavor == GhbFlavor::GlobalAc {
            // Address correlation: replay the accesses that followed the
            // previous occurrence of this same block.
            if self.live(prev) {
                for k in 1..=self.degree as u64 {
                    let fpos = prev + k;
                    // Only positions that still hold the *original* epoch's
                    // data (not yet overwritten by the ring) are usable.
                    if fpos < pos && self.live(fpos) {
                        let target = self.at(fpos).block;
                        if target != block {
                            out.push(PrefetchReq::real(target << self.line_shift, k));
                            self.stats.issued += 1;
                        }
                    }
                }
            }
            return;
        }

        // Delta correlation: newest-first blocks -> deltas (d[0] is the
        // most recent delta). Both scratch vectors persist across accesses.
        let mut blocks = std::mem::take(&mut self.chain_buf);
        let mut deltas = std::mem::take(&mut self.delta_buf);
        self.chain_into(pos, &mut blocks);
        if blocks.len() < 4 {
            self.chain_buf = blocks;
            self.delta_buf = deltas;
            return;
        }
        deltas.clear();
        deltas.extend(blocks.windows(2).map(|w| w[0] as i64 - w[1] as i64));
        let (d1, d2) = (deltas[0], deltas[1]);
        // Find an earlier occurrence of the pair (d2, d1) in time order,
        // i.e. the first (older) position i in 1..len-1 where
        // deltas[i] == d1 && deltas[i+1] == d2 — exactly the accel kernel.
        let found = semloc_accel::find_pair_i64(&deltas, d1, d2);
        self.chain_buf = blocks;
        self.delta_buf = deltas;
        let Some(i) = found else { return };
        let deltas = &self.delta_buf;
        // Replay the deltas that followed the earlier occurrence: in
        // newest-first indexing those are deltas[i-1], deltas[i-2], ...
        let mut target = block as i64;
        let mut k = 0u64;
        for j in (0..i).rev().take(self.degree as usize) {
            target += deltas[j];
            if target > 0 {
                k += 1;
                out.push(PrefetchReq::real((target as u64) << self.line_shift, k));
                self.stats.issued += 1;
            }
        }
    }

    fn on_issue_result(&mut self, _tag: u64, issued: bool) {
        if !issued {
            self.stats.rejected += 1;
        }
    }

    fn storage_bytes(&self) -> usize {
        // GHB entry: block tag (~6B) + link (~2B); IT entry: tag+ptr (~4B).
        self.ghb.len() * 8 + self.it.len() * 4
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.section(*b"GHB0", 1);
        self.stats.save(w);
        w.put_u64(self.pushes);
        w.put_len(self.ghb.len());
        for e in &self.ghb {
            w.put_u64(e.block);
            w.put_u64(e.prev);
        }
        w.put_len(self.it.len());
        for e in &self.it {
            w.put_u16(e.tag);
            w.put_u64(e.head);
            w.put_bool(e.valid);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"GHB0", 1)?;
        self.stats.restore(r)?;
        let pushes = r.get_u64()?;
        let n = r.get_len()?;
        if n != self.ghb.len() {
            return Err(snap_err(format!(
                "GHB snapshot has {n} buffer entries, expected {}",
                self.ghb.len()
            )));
        }
        let mut ghb = Vec::with_capacity(n);
        for _ in 0..n {
            ghb.push(GhbEntry {
                block: r.get_u64()?,
                prev: r.get_u64()?,
            });
        }
        let m = r.get_len()?;
        if m != self.it.len() {
            return Err(snap_err(format!(
                "GHB snapshot has {m} index entries, expected {}",
                self.it.len()
            )));
        }
        let mut it = Vec::with_capacity(m);
        for _ in 0..m {
            it.push(ItEntry {
                tag: r.get_u16()?,
                head: r.get_u64()?,
                valid: r.get_bool()?,
            });
        }
        self.pushes = pushes;
        self.ghb = ghb;
        self.it = it;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressure() -> MemPressure {
        MemPressure {
            l1_mshr_free: 4,
            l2_mshr_free: 20,
        }
    }

    fn ctx(pc: Addr, addr: Addr) -> AccessContext {
        AccessContext::bare(0, pc, addr, false)
    }

    #[test]
    fn gdc_replays_a_recurring_delta_pattern() {
        let mut p = GhbPrefetcher::paper_default(GhbFlavor::GlobalDc);
        let mut out = Vec::new();
        // Pattern of line deltas: +1, +2, +3 repeating.
        let mut addr = 0x10_0000u64;
        let deltas = [64u64, 128, 192];
        for i in 0..12 {
            addr += deltas[i % 3];
            out.clear();
            p.on_access(&ctx(0x400, addr), pressure(), &mut out);
        }
        assert!(!out.is_empty(), "recurring delta pattern must correlate");
        // After the last +192 the next deltas are +64, +128, +192.
        assert_eq!(out[0].addr, addr + 64);
        assert_eq!(out[1].addr, addr + 64 + 128);
    }

    #[test]
    fn pcdc_localizes_streams_by_pc() {
        let mut p = GhbPrefetcher::paper_default(GhbFlavor::PcDc);
        let mut out = Vec::new();
        let mut trigger = Vec::new();
        // Two interleaved strided streams from different PCs. Globally the
        // deltas are garbage; per-PC they are clean strides.
        for i in 0..16u64 {
            out.clear();
            p.on_access(&ctx(0x400, 0x10_0000 + i * 64), pressure(), &mut out);
            trigger.extend(out.iter().copied());
            out.clear();
            p.on_access(&ctx(0x900, 0x90_0000 + i * 4096), pressure(), &mut out);
            trigger.extend(out.iter().copied());
        }
        assert!(!trigger.is_empty());
        // Every prefetch must belong to one of the two streams' address ranges.
        for r in &trigger {
            assert!(
                (0x10_0000..0x20_0000).contains(&r.addr)
                    || (0x90_0000..0xA0_0000).contains(&r.addr),
                "stray prefetch {:#x}",
                r.addr
            );
        }
    }

    #[test]
    fn gdc_on_interleaved_streams_is_confused() {
        let mut gdc = GhbPrefetcher::paper_default(GhbFlavor::GlobalDc);
        let mut pcdc = GhbPrefetcher::paper_default(GhbFlavor::PcDc);
        let mut gdc_count = 0;
        let mut pcdc_count = 0;
        let mut out = Vec::new();
        // Three interleaved pointer-ish streams with irregular per-stream
        // strides; global deltas never repeat consistently.
        for i in 0..60u64 {
            for (s, stride) in [(0u64, 64u64), (1, 4096), (2, 320)] {
                let a = 0x100_0000 * (s + 1) + i * stride;
                out.clear();
                gdc.on_access(&ctx(0x400, a), pressure(), &mut out);
                gdc_count += out.len();
                out.clear();
                pcdc.on_access(&ctx(0x400 + s * 8, a), pressure(), &mut out);
                pcdc_count += out.len();
            }
        }
        assert!(
            pcdc_count > gdc_count / 2,
            "PC localization should not be worse by construction"
        );
        assert!(pcdc_count > 0);
    }

    #[test]
    fn ring_wraparound_does_not_corrupt_chains() {
        let mut p = GhbPrefetcher::new(GhbFlavor::GlobalDc, 16, 16, 2);
        let mut out = Vec::new();
        for i in 0..200u64 {
            out.clear();
            p.on_access(&ctx(0x400, 0x10_0000 + i * 64), pressure(), &mut out);
        }
        // Must still prefetch the unit-stride stream and never panic.
        assert!(!out.is_empty());
    }

    #[test]
    fn gac_replays_successors_of_recurring_addresses() {
        let mut p = GhbPrefetcher::paper_default(GhbFlavor::GlobalAc);
        let mut out = Vec::new();
        // A recurring irregular sequence: A B C D, repeated.
        let seq = [0x10_0000u64, 0x77_0000, 0x23_0000, 0x90_0000];
        for _ in 0..3 {
            for &a in &seq {
                out.clear();
                p.on_access(&ctx(0x400, a), pressure(), &mut out);
            }
        }
        // Visiting A again must predict B (and C at degree >= 2).
        out.clear();
        p.on_access(&ctx(0x400, seq[0]), pressure(), &mut out);
        let addrs: Vec<u64> = out.iter().map(|r| r.addr & !63).collect();
        assert!(
            addrs.contains(&seq[1]),
            "G/AC must replay the successor, got {addrs:x?}"
        );
    }

    #[test]
    fn gac_is_silent_on_first_occurrences() {
        let mut p = GhbPrefetcher::paper_default(GhbFlavor::GlobalAc);
        let mut out = Vec::new();
        for i in 0..50u64 {
            out.clear();
            p.on_access(&ctx(0x400, 0x10_0000 + i * 4096), pressure(), &mut out);
            assert!(out.is_empty(), "no recurrence, no prediction");
        }
    }

    #[test]
    fn storage_matches_table2_scale() {
        let p = GhbPrefetcher::paper_default(GhbFlavor::GlobalDc);
        let kb = p.storage_bytes() as f64 / 1024.0;
        assert!((14.0..=34.0).contains(&kb), "storage {kb} kB");
    }
}
