//! The Global History Buffer prefetcher (Nesbit & Smith, HPCA'04).
//!
//! A circular *global history buffer* holds the most recent miss addresses;
//! an *index table* keyed either globally (a single stream) or by load PC
//! points at the newest GHB entry of that key, and entries chain backwards
//! through their predecessors of the same key.
//!
//! The **delta-correlation** (DC) flavors evaluated by the paper take the
//! last two address deltas of a chain as a signature, search the chain for
//! an earlier occurrence of the same delta pair, and replay the deltas that
//! followed it (prefetch degree 3). Table 2: GHB size 2K, history length 3,
//! degree 3, ~32 kB.

use std::collections::VecDeque;

use semloc_mem::{MemPressure, PrefetchReq, Prefetcher, PrefetcherStats};
#[cfg(test)]
use semloc_trace::Addr;
use semloc_trace::{snap_err, AccessContext, SnapReader, SnapWriter, Snapshot};

/// Localization and correlation mode of the GHB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhbFlavor {
    /// One global access stream, delta correlation (G/DC).
    GlobalDc,
    /// Streams localized by load PC, delta correlation (PC/DC).
    PcDc,
    /// Address correlation (G/AC): chains link recurrences of the *same
    /// address*; prediction replays the accesses that followed the previous
    /// occurrence (the Markov-style flavor of Nesbit & Smith).
    GlobalAc,
}

impl GhbFlavor {
    fn label(self) -> &'static str {
        match self {
            GhbFlavor::GlobalDc => "ghb-g/dc",
            GhbFlavor::PcDc => "ghb-pc/dc",
            GhbFlavor::GlobalAc => "ghb-g/ac",
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct GhbEntry {
    block: u64,
    /// Absolute position of the previous entry with the same key, or
    /// `u64::MAX`.
    prev: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct ItEntry {
    tag: u16,
    /// Absolute position of the newest GHB entry for this key.
    head: u64,
    valid: bool,
}

/// A GHB delta-correlation prefetcher.
#[derive(Debug)]
pub struct GhbPrefetcher {
    flavor: GhbFlavor,
    ghb: Vec<GhbEntry>,
    /// Monotone count of pushes; `pos % len` is the ring slot.
    pushes: u64,
    it: Vec<ItEntry>,
    degree: u32,
    line_shift: u32,
    max_walk: u32,
    stats: PrefetcherStats,
    /// Per-index-table-slot memo of the key chain, newest first, as
    /// `(absolute position, block)` pairs — exactly what walking the ring
    /// through `prev` links from the slot's head would visit. The walk is
    /// up to `max_walk` *dependent* loads per access; the memo makes chain
    /// maintenance O(1) per push. Derived state: rebuilt from the ring on
    /// restore, never snapshotted, and provably equal to the walk (the
    /// chain and the index-table slot only ever change together, and
    /// liveness is re-checked positionally at use).
    chains: Vec<VecDeque<(u64, u64)>>,
    /// Reusable delta scratch (transient; not snapshotted).
    delta_buf: Vec<i64>,
}

impl GhbPrefetcher {
    /// A GHB of `ghb_entries` (power of two) with an index table of
    /// `it_entries` (power of two), prefetching `degree` deltas ahead.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two sizes or zero degree.
    pub fn new(flavor: GhbFlavor, ghb_entries: usize, it_entries: usize, degree: u32) -> Self {
        assert!(ghb_entries.is_power_of_two() && it_entries.is_power_of_two() && degree > 0);
        GhbPrefetcher {
            flavor,
            ghb: vec![GhbEntry::default(); ghb_entries],
            pushes: 0,
            it: vec![ItEntry::default(); it_entries],
            degree,
            line_shift: 6,
            max_walk: 64,
            stats: PrefetcherStats::default(),
            chains: vec![VecDeque::new(); it_entries],
            delta_buf: Vec::with_capacity(64),
        }
    }

    /// Table 2 configuration: 2K GHB entries, degree 3.
    pub fn paper_default(flavor: GhbFlavor) -> Self {
        GhbPrefetcher::new(flavor, 2048, 512, 3)
    }

    fn key(&self, ctx: &AccessContext) -> u64 {
        match self.flavor {
            GhbFlavor::GlobalDc => 0,
            GhbFlavor::PcDc => ctx.pc,
            GhbFlavor::GlobalAc => ctx.addr >> self.line_shift,
        }
    }

    fn it_slot(&self, key: u64) -> (usize, u16) {
        let h = key ^ (key >> 9);
        ((h as usize) & (self.it.len() - 1), (key >> 2) as u16)
    }

    /// Is absolute position `pos` still resident in the ring?
    fn live(&self, pos: u64) -> bool {
        pos != u64::MAX && pos < self.pushes && self.pushes - pos <= self.ghb.len() as u64
    }

    fn at(&self, pos: u64) -> &GhbEntry {
        &self.ghb[(pos % self.ghb.len() as u64) as usize]
    }

    /// Rebuild every per-slot chain memo by walking the ring through
    /// `prev` links — the slow path the memos exist to avoid, run once
    /// after a snapshot restore.
    fn rebuild_chains(&mut self) {
        let mut chains = std::mem::take(&mut self.chains);
        for (slot, memo) in self.it.iter().zip(chains.iter_mut()) {
            memo.clear();
            if !slot.valid || self.flavor == GhbFlavor::GlobalAc {
                continue;
            }
            let mut pos = slot.head;
            while self.live(pos) && memo.len() < self.max_walk as usize {
                let e = self.at(pos);
                memo.push_back((pos, e.block));
                if e.prev >= pos {
                    break; // end of chain (or wrap-around reuse)
                }
                pos = e.prev;
            }
        }
        self.chains = chains;
    }
}

impl Prefetcher for GhbPrefetcher {
    fn name(&self) -> &'static str {
        self.flavor.label()
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        _pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let block = ctx.addr >> self.line_shift;
        let key = self.key(ctx);
        let (it_idx, tag) = self.it_slot(key);

        // Link the new GHB entry to the previous head of this key.
        let prev = {
            let e = &self.it[it_idx];
            if e.valid && e.tag == tag && self.live(e.head) {
                e.head
            } else {
                u64::MAX
            }
        };
        let pos = self.pushes;
        let slot = (pos % self.ghb.len() as u64) as usize;
        self.ghb[slot] = GhbEntry { block, prev };
        self.pushes += 1;
        self.it[it_idx] = ItEntry {
            tag,
            head: pos,
            valid: true,
        };

        if self.flavor == GhbFlavor::GlobalAc {
            // Address correlation: replay the accesses that followed the
            // previous occurrence of this same block.
            if self.live(prev) {
                for k in 1..=self.degree as u64 {
                    let fpos = prev + k;
                    // Only positions that still hold the *original* epoch's
                    // data (not yet overwritten by the ring) are usable.
                    if fpos < pos && self.live(fpos) {
                        let target = self.at(fpos).block;
                        if target != block {
                            out.push(PrefetchReq::real(target << self.line_shift, k));
                            self.stats.issued += 1;
                        }
                    }
                }
            }
            return;
        }

        // Delta correlation. Maintain the memoized chain for this slot:
        // a reset push (no live same-tag head) starts a fresh chain, any
        // other push extends the front, and the walk's `max_walk` cap
        // bounds the depth. Entries the ring has since overwritten are
        // cut positionally at use below, so the live prefix of the memo
        // is exactly what walking the ring from the new head would visit.
        let ring = self.ghb.len() as u64;
        let pushes = self.pushes;
        let chain = &mut self.chains[it_idx];
        if prev == u64::MAX {
            chain.clear();
        }
        chain.push_front((pos, block));
        chain.truncate(self.max_walk as usize);

        // Newest-first blocks -> deltas (d[0] is the most recent delta).
        // The scratch vector persists across accesses.
        let mut deltas = std::mem::take(&mut self.delta_buf);
        deltas.clear();
        let mut newer: Option<u64> = None;
        for &(p, b) in chain.iter() {
            if pushes - p > ring {
                break; // overwritten; everything older is gone too
            }
            if let Some(nb) = newer {
                deltas.push(nb as i64 - b as i64);
            }
            newer = Some(b);
        }
        if deltas.len() < 3 {
            self.delta_buf = deltas;
            return;
        }
        let (d1, d2) = (deltas[0], deltas[1]);
        // Find an earlier occurrence of the pair (d2, d1) in time order,
        // i.e. the first (older) position i in 1..len-1 where
        // deltas[i] == d1 && deltas[i+1] == d2 — exactly the accel kernel.
        let found = semloc_accel::find_pair_i64(&deltas, d1, d2);
        self.delta_buf = deltas;
        let Some(i) = found else { return };
        let deltas = &self.delta_buf;
        // Replay the deltas that followed the earlier occurrence: in
        // newest-first indexing those are deltas[i-1], deltas[i-2], ...
        let mut target = block as i64;
        let mut k = 0u64;
        for j in (0..i).rev().take(self.degree as usize) {
            target += deltas[j];
            if target > 0 {
                k += 1;
                out.push(PrefetchReq::real((target as u64) << self.line_shift, k));
                self.stats.issued += 1;
            }
        }
    }

    fn on_issue_result(&mut self, _tag: u64, issued: bool) {
        if !issued {
            self.stats.rejected += 1;
        }
    }

    fn storage_bytes(&self) -> usize {
        // GHB entry: block tag (~6B) + link (~2B); IT entry: tag+ptr (~4B).
        self.ghb.len() * 8 + self.it.len() * 4
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.section(*b"GHB0", 1);
        self.stats.save(w);
        w.put_u64(self.pushes);
        w.put_len(self.ghb.len());
        for e in &self.ghb {
            w.put_u64(e.block);
            w.put_u64(e.prev);
        }
        w.put_len(self.it.len());
        for e in &self.it {
            w.put_u16(e.tag);
            w.put_u64(e.head);
            w.put_bool(e.valid);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"GHB0", 1)?;
        self.stats.restore(r)?;
        let pushes = r.get_u64()?;
        let n = r.get_len()?;
        if n != self.ghb.len() {
            return Err(snap_err(format!(
                "GHB snapshot has {n} buffer entries, expected {}",
                self.ghb.len()
            )));
        }
        let mut ghb = Vec::with_capacity(n);
        for _ in 0..n {
            ghb.push(GhbEntry {
                block: r.get_u64()?,
                prev: r.get_u64()?,
            });
        }
        let m = r.get_len()?;
        if m != self.it.len() {
            return Err(snap_err(format!(
                "GHB snapshot has {m} index entries, expected {}",
                self.it.len()
            )));
        }
        let mut it = Vec::with_capacity(m);
        for _ in 0..m {
            it.push(ItEntry {
                tag: r.get_u16()?,
                head: r.get_u64()?,
                valid: r.get_bool()?,
            });
        }
        self.pushes = pushes;
        self.ghb = ghb;
        self.it = it;
        self.rebuild_chains();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressure() -> MemPressure {
        MemPressure {
            l1_mshr_free: 4,
            l2_mshr_free: 20,
        }
    }

    fn ctx(pc: Addr, addr: Addr) -> AccessContext {
        AccessContext::bare(0, pc, addr, false)
    }

    #[test]
    fn gdc_replays_a_recurring_delta_pattern() {
        let mut p = GhbPrefetcher::paper_default(GhbFlavor::GlobalDc);
        let mut out = Vec::new();
        // Pattern of line deltas: +1, +2, +3 repeating.
        let mut addr = 0x10_0000u64;
        let deltas = [64u64, 128, 192];
        for i in 0..12 {
            addr += deltas[i % 3];
            out.clear();
            p.on_access(&ctx(0x400, addr), pressure(), &mut out);
        }
        assert!(!out.is_empty(), "recurring delta pattern must correlate");
        // After the last +192 the next deltas are +64, +128, +192.
        assert_eq!(out[0].addr, addr + 64);
        assert_eq!(out[1].addr, addr + 64 + 128);
    }

    #[test]
    fn pcdc_localizes_streams_by_pc() {
        let mut p = GhbPrefetcher::paper_default(GhbFlavor::PcDc);
        let mut out = Vec::new();
        let mut trigger = Vec::new();
        // Two interleaved strided streams from different PCs. Globally the
        // deltas are garbage; per-PC they are clean strides.
        for i in 0..16u64 {
            out.clear();
            p.on_access(&ctx(0x400, 0x10_0000 + i * 64), pressure(), &mut out);
            trigger.extend(out.iter().copied());
            out.clear();
            p.on_access(&ctx(0x900, 0x90_0000 + i * 4096), pressure(), &mut out);
            trigger.extend(out.iter().copied());
        }
        assert!(!trigger.is_empty());
        // Every prefetch must belong to one of the two streams' address ranges.
        for r in &trigger {
            assert!(
                (0x10_0000..0x20_0000).contains(&r.addr)
                    || (0x90_0000..0xA0_0000).contains(&r.addr),
                "stray prefetch {:#x}",
                r.addr
            );
        }
    }

    #[test]
    fn gdc_on_interleaved_streams_is_confused() {
        let mut gdc = GhbPrefetcher::paper_default(GhbFlavor::GlobalDc);
        let mut pcdc = GhbPrefetcher::paper_default(GhbFlavor::PcDc);
        let mut gdc_count = 0;
        let mut pcdc_count = 0;
        let mut out = Vec::new();
        // Three interleaved pointer-ish streams with irregular per-stream
        // strides; global deltas never repeat consistently.
        for i in 0..60u64 {
            for (s, stride) in [(0u64, 64u64), (1, 4096), (2, 320)] {
                let a = 0x100_0000 * (s + 1) + i * stride;
                out.clear();
                gdc.on_access(&ctx(0x400, a), pressure(), &mut out);
                gdc_count += out.len();
                out.clear();
                pcdc.on_access(&ctx(0x400 + s * 8, a), pressure(), &mut out);
                pcdc_count += out.len();
            }
        }
        assert!(
            pcdc_count > gdc_count / 2,
            "PC localization should not be worse by construction"
        );
        assert!(pcdc_count > 0);
    }

    #[test]
    fn ring_wraparound_does_not_corrupt_chains() {
        let mut p = GhbPrefetcher::new(GhbFlavor::GlobalDc, 16, 16, 2);
        let mut out = Vec::new();
        for i in 0..200u64 {
            out.clear();
            p.on_access(&ctx(0x400, 0x10_0000 + i * 64), pressure(), &mut out);
        }
        // Must still prefetch the unit-stride stream and never panic.
        assert!(!out.is_empty());
    }

    #[test]
    fn gac_replays_successors_of_recurring_addresses() {
        let mut p = GhbPrefetcher::paper_default(GhbFlavor::GlobalAc);
        let mut out = Vec::new();
        // A recurring irregular sequence: A B C D, repeated.
        let seq = [0x10_0000u64, 0x77_0000, 0x23_0000, 0x90_0000];
        for _ in 0..3 {
            for &a in &seq {
                out.clear();
                p.on_access(&ctx(0x400, a), pressure(), &mut out);
            }
        }
        // Visiting A again must predict B (and C at degree >= 2).
        out.clear();
        p.on_access(&ctx(0x400, seq[0]), pressure(), &mut out);
        let addrs: Vec<u64> = out.iter().map(|r| r.addr & !63).collect();
        assert!(
            addrs.contains(&seq[1]),
            "G/AC must replay the successor, got {addrs:x?}"
        );
    }

    #[test]
    fn gac_is_silent_on_first_occurrences() {
        let mut p = GhbPrefetcher::paper_default(GhbFlavor::GlobalAc);
        let mut out = Vec::new();
        for i in 0..50u64 {
            out.clear();
            p.on_access(&ctx(0x400, 0x10_0000 + i * 4096), pressure(), &mut out);
            assert!(out.is_empty(), "no recurrence, no prediction");
        }
    }

    /// The chain memos must stay bit-equal to walking the ring through
    /// `prev` links — the definitionally correct (pre-memo) formulation —
    /// on every slot after every access, including once the small ring
    /// has wrapped and expired entries mid-chain.
    #[test]
    fn chain_memo_matches_ring_walk_under_wraparound() {
        for flavor in [GhbFlavor::GlobalDc, GhbFlavor::PcDc] {
            let mut p = GhbPrefetcher::new(flavor, 32, 8, 3);
            let mut out = Vec::new();
            let mut state = 0x1234_5678_9abc_def0u64;
            for i in 0..2000u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pc = 0x400 + (state >> 60) * 8; // 16 distinct PCs
                let addr = 0x10_0000 + ((state >> 40) & 0xFFF) * 64 + i * 64;
                out.clear();
                p.on_access(&ctx(pc, addr), pressure(), &mut out);
                for (idx, slot) in p.it.iter().enumerate() {
                    let mut walk = Vec::new();
                    if slot.valid {
                        let mut pos = slot.head;
                        while p.live(pos) && walk.len() < p.max_walk as usize {
                            let e = p.at(pos);
                            walk.push(e.block);
                            if e.prev >= pos {
                                break;
                            }
                            pos = e.prev;
                        }
                    }
                    let memo: Vec<u64> = p.chains[idx]
                        .iter()
                        .take_while(|&&(q, _)| p.live(q))
                        .map(|&(_, b)| b)
                        .collect();
                    assert_eq!(memo, walk, "{flavor:?} slot {idx} diverged at access {i}");
                }
            }
        }
    }

    /// A restored prefetcher must predict identically to the original:
    /// `rebuild_chains` has to reconstruct the memos the live instance
    /// accumulated incrementally.
    #[test]
    fn restore_rebuilds_chain_memos() {
        let mut p = GhbPrefetcher::new(GhbFlavor::PcDc, 32, 8, 3);
        let mut out = Vec::new();
        for i in 0..300u64 {
            out.clear();
            let pc = 0x400 + (i % 5) * 8;
            p.on_access(&ctx(pc, 0x10_0000 + i * 64), pressure(), &mut out);
        }
        let mut w = SnapWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut q = GhbPrefetcher::new(GhbFlavor::PcDc, 32, 8, 3);
        let mut r = SnapReader::new(&bytes);
        q.restore_state(&mut r).expect("restore");
        for (idx, (a, b)) in p.chains.iter().zip(q.chains.iter()).enumerate() {
            let live_a: Vec<_> = a.iter().take_while(|&&(x, _)| p.live(x)).collect();
            let live_b: Vec<_> = b.iter().take_while(|&&(x, _)| q.live(x)).collect();
            assert_eq!(live_a, live_b, "slot {idx}");
        }
        // And the two must keep predicting identically afterwards.
        let mut oa = Vec::new();
        let mut ob = Vec::new();
        for i in 300..600u64 {
            let pc = 0x400 + (i % 5) * 8;
            let c = ctx(pc, 0x10_0000 + i * 64);
            oa.clear();
            ob.clear();
            p.on_access(&c, pressure(), &mut oa);
            q.on_access(&c, pressure(), &mut ob);
            assert_eq!(oa, ob, "post-restore divergence at access {i}");
        }
    }

    #[test]
    fn storage_matches_table2_scale() {
        let p = GhbPrefetcher::paper_default(GhbFlavor::GlobalDc);
        let kb = p.storage_bytes() as f64 / 1024.0;
        assert!((14.0..=34.0).contains(&kb), "storage {kb} kB");
    }
}
