//! The Markov prefetcher (Joseph & Grunwald, ISCA'97).
//!
//! Models the miss-address stream as a first-order Markov chain: a
//! direct-mapped table maps each line address to its most likely
//! successors. The paper discusses it as related work whose state is *only*
//! the address — no other context — "which greatly limits its scalability
//! to predict diverging paths"; it is included to let the evaluation show
//! that contrast.

use semloc_mem::{MemPressure, PrefetchReq, Prefetcher, PrefetcherStats};
#[cfg(test)]
use semloc_trace::Addr;
use semloc_trace::{snap_err, AccessContext, SnapReader, SnapWriter, Snapshot};

const SUCCESSORS: usize = 2;

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    tag: u16,
    succ: [u64; SUCCESSORS],
    count: [u8; SUCCESSORS],
    valid: bool,
}

/// A first-order address-correlation prefetcher.
#[derive(Debug)]
pub struct MarkovPrefetcher {
    table: Vec<Entry>,
    last_block: Option<u64>,
    line_shift: u32,
    degree: u32,
    stats: PrefetcherStats,
}

impl MarkovPrefetcher {
    /// A table of `entries` (power of two) with up to `degree` prefetches
    /// per access.
    ///
    /// # Panics
    ///
    /// Panics on a non-power-of-two size or zero degree.
    pub fn new(entries: usize, degree: u32) -> Self {
        assert!(entries.is_power_of_two() && degree >= 1);
        MarkovPrefetcher {
            table: vec![Entry::default(); entries],
            last_block: None,
            line_shift: 6,
            degree: degree.min(SUCCESSORS as u32),
            stats: PrefetcherStats::default(),
        }
    }

    /// Storage-scaled default (~32 kB: 2K entries × ~16 B).
    pub fn paper_default() -> Self {
        MarkovPrefetcher::new(2048, 2)
    }

    fn slot(&self, block: u64) -> (usize, u16) {
        let h = block ^ (block >> 11);
        ((h as usize) & (self.table.len() - 1), (block >> 5) as u16)
    }

    #[allow(clippy::expect_used)]
    fn learn(&mut self, from: u64, to: u64) {
        let (idx, tag) = self.slot(from);
        let e = &mut self.table[idx];
        if !e.valid || e.tag != tag {
            *e = Entry {
                tag,
                succ: [to, 0],
                count: [1, 0],
                valid: true,
            };
            return;
        }
        for i in 0..SUCCESSORS {
            if e.count[i] > 0 && e.succ[i] == to {
                e.count[i] = e.count[i].saturating_add(1);
                return;
            }
        }
        // Replace the weakest successor.
        let weakest = (0..SUCCESSORS)
            .min_by_key(|&i| e.count[i])
            // semloc-lint: allow(no-unwrap): SUCCESSORS is a const > 0
            .expect("non-empty successor list");
        e.succ[weakest] = to;
        e.count[weakest] = 1;
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        _pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let block = ctx.addr >> self.line_shift;
        if let Some(prev) = self.last_block {
            if prev != block {
                self.learn(prev, block);
            }
        }
        self.last_block = Some(block);

        let (idx, tag) = self.slot(block);
        let e = self.table[idx];
        if e.valid && e.tag == tag {
            let mut order: Vec<usize> = (0..SUCCESSORS).filter(|&i| e.count[i] >= 2).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(e.count[i]));
            for (k, &i) in order.iter().take(self.degree as usize).enumerate() {
                out.push(PrefetchReq::real(
                    e.succ[i] << self.line_shift,
                    k as u64 + 1,
                ));
                self.stats.issued += 1;
            }
        }
    }

    fn on_issue_result(&mut self, _tag: u64, issued: bool) {
        if !issued {
            self.stats.rejected += 1;
        }
    }

    fn storage_bytes(&self) -> usize {
        // tag(2) + 2 successors (6B each) + counts(2).
        self.table.len() * 16
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.section(*b"MRKV", 1);
        self.stats.save(w);
        w.put_bool(self.last_block.is_some());
        w.put_u64(self.last_block.unwrap_or(0));
        w.put_len(self.table.len());
        for e in &self.table {
            w.put_u16(e.tag);
            for i in 0..SUCCESSORS {
                w.put_u64(e.succ[i]);
                w.put_u8(e.count[i]);
            }
            w.put_bool(e.valid);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"MRKV", 1)?;
        self.stats.restore(r)?;
        let has_last = r.get_bool()?;
        let last = r.get_u64()?;
        let n = r.get_len()?;
        if n != self.table.len() {
            return Err(snap_err(format!(
                "markov snapshot has {n} entries, table expects {}",
                self.table.len()
            )));
        }
        for e in &mut self.table {
            e.tag = r.get_u16()?;
            for i in 0..SUCCESSORS {
                e.succ[i] = r.get_u64()?;
                e.count[i] = r.get_u8()?;
            }
            e.valid = r.get_bool()?;
        }
        self.last_block = has_last.then_some(last);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressure() -> MemPressure {
        MemPressure {
            l1_mshr_free: 4,
            l2_mshr_free: 20,
        }
    }

    fn ctx(addr: Addr) -> AccessContext {
        AccessContext::bare(0, 0x400, addr, false)
    }

    #[test]
    fn learns_a_recurring_chain() {
        let mut p = MarkovPrefetcher::paper_default();
        let chain = [0x10_0000u64, 0x55_0000, 0x23_0000, 0x81_0000];
        let mut out = Vec::new();
        let mut predicted = Vec::new();
        for _ in 0..5 {
            for &a in &chain {
                out.clear();
                p.on_access(&ctx(a), pressure(), &mut out);
                predicted.extend(out.iter().map(|r| r.addr));
            }
        }
        // After training, visiting 0x10_0000 must predict 0x55_0000.
        out.clear();
        p.on_access(&ctx(0x10_0000), pressure(), &mut out);
        assert!(out.iter().any(|r| r.addr == 0x55_0000));
    }

    #[test]
    fn single_occurrence_transitions_are_not_prefetched() {
        let mut p = MarkovPrefetcher::paper_default();
        let mut out = Vec::new();
        p.on_access(&ctx(0x10_0000), pressure(), &mut out);
        p.on_access(&ctx(0x55_0000), pressure(), &mut out);
        out.clear();
        p.on_access(&ctx(0x10_0000), pressure(), &mut out);
        assert!(out.is_empty(), "confidence threshold requires repetition");
    }

    #[test]
    fn diverging_successors_keep_the_stronger_one() {
        let mut p = MarkovPrefetcher::paper_default();
        let mut out = Vec::new();
        // A -> B three times, A -> C once.
        for target in [0xB0_0000u64, 0xB0_0000, 0xC0_0000, 0xB0_0000] {
            p.on_access(&ctx(0xA0_0000), pressure(), &mut out);
            p.on_access(&ctx(target), pressure(), &mut out);
        }
        out.clear();
        p.on_access(&ctx(0xA0_0000), pressure(), &mut out);
        assert_eq!(out.first().map(|r| r.addr), Some(0xB0_0000));
    }

    #[test]
    fn same_block_repeats_do_not_self_link() {
        let mut p = MarkovPrefetcher::paper_default();
        let mut out = Vec::new();
        for _ in 0..10 {
            p.on_access(&ctx(0x77_0040), pressure(), &mut out);
        }
        out.clear();
        p.on_access(&ctx(0x77_0040), pressure(), &mut out);
        assert!(out.is_empty());
    }
}
