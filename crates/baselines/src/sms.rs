//! Spatial Memory Streaming (Somogyi et al., ISCA'06).
//!
//! SMS records, per *spatial region generation*, the bit pattern of lines
//! touched while the region is live, indexed by the (PC, region-offset) of
//! the *trigger* access that opened the generation. On a later trigger with
//! the same signature, the stored pattern is streamed in.
//!
//! Structures per Table 2: 2 kB regions, 32-entry accumulation (AGT) and
//! filter tables, 2K-entry pattern history table (PHT), ~20 kB.

use semloc_mem::{MemPressure, PrefetchReq, Prefetcher, PrefetcherStats};
use semloc_trace::{snap_err, AccessContext, Addr, SnapReader, SnapWriter, Snapshot};

const LINE: u64 = 64;

#[derive(Clone, Copy, Debug)]
struct Generation {
    region: u64,
    signature: u64,
    pattern: u32,
    last_use: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct PhtEntry {
    tag: u16,
    pattern: u32,
    valid: bool,
}

/// The SMS prefetcher.
#[derive(Debug)]
pub struct SmsPrefetcher {
    region_bytes: u64,
    agt: Vec<Generation>,
    agt_capacity: usize,
    filter: Vec<Generation>,
    filter_capacity: usize,
    pht: Vec<PhtEntry>,
    tick: u64,
    stats: PrefetcherStats,
}

impl SmsPrefetcher {
    /// An SMS prefetcher with the given region size (power of two, at most
    /// 32 lines), AGT/filter capacities and PHT entries (power of two).
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry.
    pub fn new(region_bytes: u64, agt: usize, filter: usize, pht: usize) -> Self {
        assert!(
            region_bytes.is_power_of_two() && region_bytes / LINE <= 32 && region_bytes >= 2 * LINE
        );
        assert!(pht.is_power_of_two() && agt > 0 && filter > 0);
        SmsPrefetcher {
            region_bytes,
            agt: Vec::with_capacity(agt),
            agt_capacity: agt,
            filter: Vec::with_capacity(filter),
            filter_capacity: filter,
            pht: vec![PhtEntry::default(); pht],
            tick: 0,
            stats: PrefetcherStats::default(),
        }
    }

    /// Table 2 configuration: 2 kB regions, AGT 32, filter 32, PHT 2K.
    pub fn paper_default() -> Self {
        SmsPrefetcher::new(2048, 32, 32, 2048)
    }

    fn region_of(&self, addr: Addr) -> u64 {
        addr / self.region_bytes
    }

    fn line_in_region(&self, addr: Addr) -> u32 {
        ((addr % self.region_bytes) / LINE) as u32
    }

    fn signature(&self, pc: Addr, offset: u32) -> u64 {
        (pc << 5) ^ offset as u64
    }

    fn pht_slot(&self, sig: u64) -> (usize, u16) {
        let h = sig ^ (sig >> 13);
        ((h as usize) & (self.pht.len() - 1), (sig >> 7) as u16)
    }

    /// Store a finished generation's pattern into the PHT.
    fn archive(&mut self, g: Generation) {
        // Only patterns with spatial correlation (more than the trigger
        // line) are worth remembering.
        if g.pattern.count_ones() >= 2 {
            let (idx, tag) = self.pht_slot(g.signature);
            self.pht[idx] = PhtEntry {
                tag,
                pattern: g.pattern,
                valid: true,
            };
        }
    }
}

impl Prefetcher for SmsPrefetcher {
    fn name(&self) -> &'static str {
        "sms"
    }

    #[allow(clippy::expect_used)]
    fn on_access(
        &mut self,
        ctx: &AccessContext,
        _pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        self.tick += 1;
        let region = self.region_of(ctx.addr);
        let offset = self.line_in_region(ctx.addr);
        let bit = 1u32 << offset;

        // Accumulate into a live generation if one exists.
        if let Some(g) = self.agt.iter_mut().find(|g| g.region == region) {
            g.pattern |= bit;
            g.last_use = self.tick;
            return;
        }
        if let Some(i) = self.filter.iter().position(|g| g.region == region) {
            // Second access to the region: promote to the AGT.
            let mut g = self.filter.swap_remove(i);
            g.pattern |= bit;
            g.last_use = self.tick;
            if self.agt.len() >= self.agt_capacity {
                let oldest = self
                    .agt
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, g)| g.last_use)
                    .map(|(i, _)| i)
                    // semloc-lint: allow(no-unwrap): len >= agt_capacity >= 1 was just checked
                    .expect("AGT at capacity is non-empty");
                let done = self.agt.swap_remove(oldest);
                self.archive(done);
            }
            self.agt.push(g);
            return;
        }

        // Trigger access of a new generation: predict from the PHT...
        let sig = self.signature(ctx.pc, offset);
        let (idx, tag) = self.pht_slot(sig);
        let e = self.pht[idx];
        if e.valid && e.tag == tag {
            let base = region * self.region_bytes;
            let mut k = 0u64;
            for line in 0..(self.region_bytes / LINE) as u32 {
                if line != offset && e.pattern & (1 << line) != 0 {
                    k += 1;
                    out.push(PrefetchReq::real(base + line as u64 * LINE, k));
                    self.stats.issued += 1;
                }
            }
        }
        // ...and start tracking the new generation in the filter.
        if self.filter.len() >= self.filter_capacity {
            let oldest = self
                .filter
                .iter()
                .enumerate()
                .min_by_key(|(_, g)| g.last_use)
                .map(|(i, _)| i)
                // semloc-lint: allow(no-unwrap): len >= filter_capacity >= 1 was just checked
                .expect("filter at capacity is non-empty");
            let done = self.filter.swap_remove(oldest);
            self.archive(done);
        }
        self.filter.push(Generation {
            region,
            signature: sig,
            pattern: bit,
            last_use: self.tick,
        });
    }

    fn on_issue_result(&mut self, _tag: u64, issued: bool) {
        if !issued {
            self.stats.rejected += 1;
        }
    }

    fn storage_bytes(&self) -> usize {
        // PHT entry: tag(2)+pattern(4)+valid packed ~ 6B; AGT/filter
        // generations ~ 12B each.
        self.pht.len() * 6 + (self.agt_capacity + self.filter_capacity) * 12
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.section(*b"SMS0", 1);
        self.stats.save(w);
        w.put_u64(self.tick);
        // AGT/filter order matters (swap_remove reshuffles it), so the live
        // vectors are serialized verbatim.
        for gens in [&self.agt, &self.filter] {
            w.put_len(gens.len());
            for g in gens.iter() {
                w.put_u64(g.region);
                w.put_u64(g.signature);
                w.put_u32(g.pattern);
                w.put_u64(g.last_use);
            }
        }
        w.put_len(self.pht.len());
        for e in &self.pht {
            w.put_u16(e.tag);
            w.put_u32(e.pattern);
            w.put_bool(e.valid);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"SMS0", 1)?;
        self.stats.restore(r)?;
        let tick = r.get_u64()?;
        let mut tables: [Vec<Generation>; 2] = [Vec::new(), Vec::new()];
        for (t, cap) in tables
            .iter_mut()
            .zip([self.agt_capacity, self.filter_capacity])
        {
            let n = r.get_len()?;
            if n > cap {
                return Err(snap_err(format!(
                    "SMS snapshot has {n} generations, capacity is {cap}"
                )));
            }
            for _ in 0..n {
                t.push(Generation {
                    region: r.get_u64()?,
                    signature: r.get_u64()?,
                    pattern: r.get_u32()?,
                    last_use: r.get_u64()?,
                });
            }
        }
        let m = r.get_len()?;
        if m != self.pht.len() {
            return Err(snap_err(format!(
                "SMS snapshot has {m} PHT entries, expected {}",
                self.pht.len()
            )));
        }
        let mut pht = Vec::with_capacity(m);
        for _ in 0..m {
            pht.push(PhtEntry {
                tag: r.get_u16()?,
                pattern: r.get_u32()?,
                valid: r.get_bool()?,
            });
        }
        self.tick = tick;
        let [agt, filter] = tables;
        self.agt = agt;
        self.filter = filter;
        self.pht = pht;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressure() -> MemPressure {
        MemPressure {
            l1_mshr_free: 4,
            l2_mshr_free: 20,
        }
    }

    fn ctx(pc: Addr, addr: Addr) -> AccessContext {
        AccessContext::bare(0, pc, addr, false)
    }

    /// Touch lines {0, 3, 5} of `region_base`, then flood the AGT so the
    /// generation is archived.
    fn train(p: &mut SmsPrefetcher, pc: Addr, region_base: u64) {
        let mut out = Vec::new();
        for line in [0u64, 3, 5] {
            p.on_access(&ctx(pc, region_base + line * 64), pressure(), &mut out);
        }
        // Open enough other generations (two touches each) to evict it.
        for i in 1..=40u64 {
            let other = region_base + i * 2048 * 64;
            p.on_access(&ctx(0x999, other), pressure(), &mut out);
            p.on_access(&ctx(0x999, other + 64), pressure(), &mut out);
        }
    }

    #[test]
    fn recalls_a_spatial_pattern_on_retrigger() {
        let mut p = SmsPrefetcher::paper_default();
        train(&mut p, 0x400, 0x40_0000);
        // Re-trigger from the same PC and offset in a *different* region.
        let mut out = Vec::new();
        let new_region = 0x900_0000;
        p.on_access(&ctx(0x400, new_region), pressure(), &mut out);
        let addrs: Vec<u64> = out.iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![new_region + 3 * 64, new_region + 5 * 64]);
    }

    #[test]
    fn different_trigger_pc_does_not_recall() {
        let mut p = SmsPrefetcher::paper_default();
        train(&mut p, 0x400, 0x40_0000);
        let mut out = Vec::new();
        p.on_access(&ctx(0x408, 0xA00_0000), pressure(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_line_generations_are_not_archived() {
        let mut p = SmsPrefetcher::paper_default();
        let mut out = Vec::new();
        // One access per region: purely non-spatial traffic.
        for i in 0..100u64 {
            p.on_access(&ctx(0x400, i * 2048 * 8), pressure(), &mut out);
        }
        out.clear();
        p.on_access(&ctx(0x400, 0xBB0_0000), pressure(), &mut out);
        assert!(out.is_empty(), "no dense pattern should have been learned");
    }

    #[test]
    fn accumulation_captures_lines_in_any_order() {
        let mut p = SmsPrefetcher::paper_default();
        let mut out = Vec::new();
        let base = 0x50_0000;
        for line in [7u64, 1, 4, 1, 7] {
            p.on_access(&ctx(0x500, base + line * 64), pressure(), &mut out);
        }
        for i in 1..=40u64 {
            let other = base + i * 2048 * 128;
            p.on_access(&ctx(0x999, other), pressure(), &mut out);
            p.on_access(&ctx(0x999, other + 64), pressure(), &mut out);
        }
        out.clear();
        let fresh = 0xC00_0000 + 7 * 64; // same trigger offset (7)
        p.on_access(&ctx(0x500, fresh), pressure(), &mut out);
        let addrs: std::collections::BTreeSet<u64> = out.iter().map(|r| r.addr).collect();
        assert_eq!(
            addrs,
            [0xC00_0000 + 64, 0xC00_0000 + 4 * 64].into_iter().collect()
        );
    }

    #[test]
    fn storage_matches_table2_scale() {
        let p = SmsPrefetcher::paper_default();
        let kb = p.storage_bytes() as f64 / 1024.0;
        assert!((10.0..=24.0).contains(&kb), "storage {kb} kB");
    }
}
