//! Kernel execution session: emitter + PC allocator + simulated heap + RNG.
//!
//! Bundles everything a kernel needs, and provides the *hinted load*
//! helper that models the paper's compiler instrumentation (§6): each
//! pointer-typed load is preceded by an extended-NOP carrying the packed
//! semantic hints, so the instruction overhead of hint injection is paid
//! for real in the pipeline model.

use rand::rngs::StdRng;
use rand::SeedableRng;

use semloc_trace::{
    Addr, AddressSpace, Emitter, PcAlloc, Placement, Reg, SemanticHints, TraceSink,
};

/// Everything a running kernel needs.
pub struct Session<'a> {
    /// Instruction emitter over the driving sink.
    pub em: Emitter<'a, dyn TraceSink + 'a>,
    /// Stable code-site allocator for this kernel's region.
    pub pcs: PcAlloc,
    /// The simulated heap.
    pub heap: AddressSpace,
    /// Deterministic per-kernel randomness.
    pub rng: StdRng,
}

impl<'a> Session<'a> {
    /// Start a session for the `region`-th kernel with the given heap
    /// placement policy and RNG seed.
    pub fn new(sink: &'a mut dyn TraceSink, region: u32, placement: Placement, seed: u64) -> Self {
        Session {
            em: Emitter::new(sink),
            pcs: PcAlloc::new(region),
            heap: AddressSpace::new(seed, placement),
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9),
        }
    }

    /// Whether the driving sink's instruction budget is exhausted.
    pub fn done(&self) -> bool {
        self.em.done()
    }

    /// A hinted pointer load: the compiler-injected extended NOP carrying
    /// the packed hints, immediately followed by the load itself (§6).
    ///
    /// `result` is the loaded value (for link loads, the next object's
    /// address), which flows into the destination register and thus into
    /// the *register values* / *previously loaded data* context attributes.
    pub fn hinted_load(
        &mut self,
        pc: Addr,
        addr: Addr,
        dst: Reg,
        addr_src: Option<Reg>,
        hints: SemanticHints,
        result: u64,
    ) {
        self.em.nop(pc);
        self.em
            .load(pc + 4, addr, dst, addr_src, Some(hints), result);
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("emitted", &self.em.emitted())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::{InstrKind, RecordingSink};

    #[test]
    fn hinted_load_emits_nop_then_load() {
        let mut sink = RecordingSink::new();
        {
            let mut s = Session::new(&mut sink, 0, Placement::Bump, 1);
            let pc = s.pcs.site();
            let a = s.heap.alloc(32);
            s.hinted_load(pc, a, Reg(1), None, SemanticHints::link(7, 8), a + 32);
        }
        let instrs = sink.instrs();
        assert_eq!(instrs.len(), 2);
        assert!(matches!(instrs[0].kind, InstrKind::Nop));
        match instrs[1].kind {
            InstrKind::Load { hints: Some(h), .. } => assert_eq!(h.type_id, 7),
            ref k => panic!("expected hinted load, got {k:?}"),
        }
        assert_eq!(instrs[1].pc, instrs[0].pc + 4);
    }

    #[test]
    fn sessions_are_deterministic() {
        let run = || {
            let mut sink = RecordingSink::new();
            {
                let mut s = Session::new(&mut sink, 3, Placement::Scatter, 42);
                for _ in 0..50 {
                    let a = s.heap.alloc(24);
                    let pc = s.pcs.site();
                    s.em.load(pc, a, Reg(2), None, None, 0);
                }
            }
            sink.into_instrs()
        };
        assert_eq!(run(), run());
    }
}
