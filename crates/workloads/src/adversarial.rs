//! Adversarial kernel families for the interference-mode search driver.
//!
//! Each family is a parameterized generator engineered to attack a specific
//! assumption of the learned context prefetcher while staying easy for at
//! least one table baseline (GHB/SMS), so the *gap* — baseline accuracy
//! minus learned accuracy — is the search driver's hill-climbing score:
//!
//! * [`RewardStraddle`] — a strided scan whose per-element filler work
//!   alternates between a hot and a cold amount with a fixed period, moving
//!   the prefetch-to-use distance back and forth across the paper's 18–50
//!   cycle bell-reward window, so the bandit's feedback keeps flipping sign
//!   on an otherwise perfectly stride-predictable stream.
//! * [`AliasChains`] — several shuffled linked chains sharing one code site
//!   and one object type, traversed round-robin: consecutive accesses at
//!   the same PC with the same hints belong to *different* chains, aliasing
//!   the learner's context while each chain alone is a clean recurrence.
//! * [`PhaseFlip`] — a strided scan that flips its stride every
//!   `flip_every` elements, re-paying the learner's training latency at
//!   each flip while delta-correlating baselines re-lock within a few
//!   accesses.
//!
//! These live outside [`crate::all_kernels`] (whose counts are pinned by
//! registry tests); [`adversarial_kernels`] is their own registry, and the
//! concrete parameter points found by the search driver are pinned as
//! regression kernels in the harness test-suite.

use semloc_trace::{Placement, TraceSink};

use crate::object::Session;
use crate::patterns::{self, LinkedChain, LoopSites, NEXT_OFFSET, PAYLOAD_OFFSET};
use crate::{Kernel, KernelBox, Suite};

/// Object-type id shared by the adversarial kernels' hinted loads.
const ADV_TYPE: u16 = 9;

/// Strided scan whose filler work straddles the bell-reward window.
#[derive(Clone, Debug)]
pub struct RewardStraddle {
    /// Number of 8-byte elements scanned per lap.
    pub elems: u64,
    /// Element stride of the scan.
    pub stride: u64,
    /// Elements per hot/cold half-period.
    pub period: u64,
    /// Filler ALU ops per element in the hot half (short use distance).
    pub hot_work: u32,
    /// Filler ALU ops per element in the cold half (long use distance).
    pub cold_work: u32,
    /// RNG seed (heap layout).
    pub seed: u64,
}

impl Default for RewardStraddle {
    fn default() -> Self {
        RewardStraddle {
            elems: 16 * 1024,
            stride: 2,
            period: 6,
            hot_work: 1,
            cold_work: 24,
            seed: 21,
        }
    }
}

impl Kernel for RewardStraddle {
    fn name(&self) -> &'static str {
        "adv-straddle"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 60, Placement::Bump, self.seed);
        let base = s.heap.alloc_array(8, self.elems);
        let sites = LoopSites::alloc(&mut s);
        let period = self.period.max(1);
        while !s.done() {
            let mut i = 0u64;
            let mut phase = 0u64;
            while i < self.elems {
                if s.done() {
                    return;
                }
                let work = if (phase / period).is_multiple_of(2) {
                    self.hot_work
                } else {
                    self.cold_work
                };
                let addr = base + i * 8;
                s.em.alu(
                    sites.work,
                    Some(patterns::regs::IDX),
                    Some(patterns::regs::IDX),
                    None,
                    i,
                );
                s.em.load(
                    sites.link,
                    addr,
                    patterns::regs::VAL,
                    Some(patterns::regs::IDX),
                    None,
                    addr ^ 1,
                );
                s.em.work(sites.work, work);
                s.em.branch(
                    sites.branch,
                    i + self.stride < self.elems,
                    sites.link,
                    Some(patterns::regs::IDX),
                );
                i += self.stride;
                phase += 1;
            }
        }
    }
}

/// Several shuffled chains aliasing one code site and object type.
#[derive(Clone, Debug)]
pub struct AliasChains {
    /// Number of co-traversed chains.
    pub chains: usize,
    /// Nodes per chain.
    pub nodes: usize,
    /// Node size in bytes.
    pub node_size: u64,
    /// Filler ALU ops per node.
    pub work: u32,
    /// RNG seed (chain shuffles).
    pub seed: u64,
}

impl Default for AliasChains {
    fn default() -> Self {
        AliasChains {
            chains: 4,
            nodes: 512,
            node_size: 64,
            work: 2,
            seed: 22,
        }
    }
}

impl Kernel for AliasChains {
    fn name(&self) -> &'static str {
        "adv-alias"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 61, Placement::Scatter, self.seed);
        let chains: Vec<LinkedChain> = (0..self.chains.max(1))
            .map(|_| {
                LinkedChain::build_shuffled(&mut s, self.nodes.max(2), self.node_size, ADV_TYPE)
            })
            .collect();
        // One shared set of code sites: every chain's link load comes from
        // the same PC with the same hints.
        let sites = LoopSites::alloc(&mut s);
        let hints = semloc_trace::SemanticHints::link(ADV_TYPE, NEXT_OFFSET);
        while !s.done() {
            for step in 0..self.nodes.max(2) {
                for chain in &chains {
                    if s.done() {
                        return;
                    }
                    let node = chain.nodes[step];
                    let next = chain.nodes[(step + 1) % chain.nodes.len()];
                    s.hinted_load(
                        sites.link,
                        node + NEXT_OFFSET as u64,
                        patterns::regs::PTR,
                        Some(patterns::regs::PTR),
                        hints,
                        next,
                    );
                    s.em.load(
                        sites.payload,
                        node + PAYLOAD_OFFSET,
                        patterns::regs::VAL,
                        Some(patterns::regs::PTR),
                        None,
                        node ^ 0x5a,
                    );
                    s.em.work(sites.work, self.work);
                    s.em.branch(
                        sites.branch,
                        step + 1 != chain.nodes.len(),
                        sites.link,
                        Some(patterns::regs::VAL),
                    );
                }
            }
        }
    }
}

/// Strided scan that flips between two strides every `flip_every` elements.
#[derive(Clone, Debug)]
pub struct PhaseFlip {
    /// Number of 8-byte elements in the scanned array.
    pub elems: u64,
    /// Stride in the even phases.
    pub stride_a: u64,
    /// Stride in the odd phases.
    pub stride_b: u64,
    /// Elements per phase before the stride flips.
    pub flip_every: u64,
    /// Filler ALU ops per element.
    pub work: u32,
    /// RNG seed (heap layout).
    pub seed: u64,
}

impl Default for PhaseFlip {
    fn default() -> Self {
        PhaseFlip {
            elems: 32 * 1024,
            stride_a: 1,
            stride_b: 17,
            flip_every: 96,
            work: 2,
            seed: 23,
        }
    }
}

impl Kernel for PhaseFlip {
    fn name(&self) -> &'static str {
        "adv-phaseflip"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 62, Placement::Bump, self.seed);
        let base = s.heap.alloc_array(8, self.elems);
        let sites = LoopSites::alloc(&mut s);
        let flip_every = self.flip_every.max(1);
        let hints = semloc_trace::SemanticHints::indexed(ADV_TYPE);
        while !s.done() {
            let mut i = 0u64;
            let mut emitted = 0u64;
            while i < self.elems {
                if s.done() {
                    return;
                }
                let stride = if (emitted / flip_every).is_multiple_of(2) {
                    self.stride_a
                } else {
                    self.stride_b
                };
                let addr = base + i * 8;
                s.em.alu(
                    sites.work,
                    Some(patterns::regs::IDX),
                    Some(patterns::regs::IDX),
                    None,
                    i,
                );
                s.hinted_load(
                    sites.link,
                    addr,
                    patterns::regs::VAL,
                    Some(patterns::regs::IDX),
                    hints,
                    addr ^ 1,
                );
                s.em.work(sites.work, self.work);
                s.em.branch(
                    sites.branch,
                    i + stride.max(1) < self.elems,
                    sites.link,
                    Some(patterns::regs::IDX),
                );
                i += stride.max(1);
                emitted += 1;
            }
        }
    }
}

/// The adversarial families at their default parameter points. Kept out of
/// [`crate::all_kernels`] so the pinned Table 3 registry counts stay exact.
pub fn adversarial_kernels() -> Vec<KernelBox> {
    vec![
        Box::new(RewardStraddle::default()),
        Box::new(AliasChains::default()),
        Box::new(PhaseFlip::default()),
    ]
}

/// Look up an adversarial family by name (default parameters).
pub fn adversarial_by_name(name: &str) -> Option<KernelBox> {
    adversarial_kernels().into_iter().find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::{CountingSink, InstrKind, RecordingSink};

    #[test]
    fn families_run_to_budget_and_are_memory_heavy() {
        for k in adversarial_kernels() {
            let mut sink = CountingSink::with_limit(30_000);
            k.run(&mut sink);
            assert!(sink.total >= 30_000, "{} stopped early", k.name());
            // adv-straddle's cold half is deliberately work-heavy (that is
            // what pushes the use distance past the reward window), so the
            // floor here is lower than the registry kernels'.
            assert!(sink.mem_fraction() > 0.04, "{} too ALU-bound", k.name());
        }
    }

    #[test]
    fn families_are_deterministic() {
        for k in adversarial_kernels() {
            let run = || {
                let mut sink = RecordingSink::with_limit(10_000);
                k.run(&mut sink);
                sink.into_instrs()
            };
            assert_eq!(run(), run(), "{} not deterministic", k.name());
        }
    }

    #[test]
    fn alias_chains_share_one_link_site() {
        let mut sink = RecordingSink::with_limit(20_000);
        AliasChains::default().run(&mut sink);
        let link_pcs: std::collections::BTreeSet<u64> = sink
            .instrs()
            .iter()
            .filter_map(|i| match i.kind {
                InstrKind::Load { hints: Some(_), .. } => Some(i.pc),
                _ => None,
            })
            .collect();
        assert_eq!(link_pcs.len(), 1, "all hinted loads must alias one PC");
    }

    #[test]
    fn phase_flip_changes_stride() {
        let mut sink = RecordingSink::with_limit(4_000);
        PhaseFlip::default().run(&mut sink);
        let addrs: Vec<u64> = sink
            .instrs()
            .iter()
            .filter_map(|i| match i.kind {
                InstrKind::Load { hints: Some(_), .. } => match i.kind {
                    InstrKind::Load { addr, .. } => Some(addr),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let deltas: std::collections::BTreeSet<i64> = addrs
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        assert!(deltas.len() >= 2, "expected at least two distinct strides");
    }

    #[test]
    fn trace_keys_distinguish_parameter_points() {
        let a = PhaseFlip::default();
        let b = PhaseFlip {
            flip_every: 97,
            ..PhaseFlip::default()
        };
        assert_ne!(a.trace_key(), b.trace_key());
    }
}
