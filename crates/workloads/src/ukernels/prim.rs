//! Prim's minimum-spanning-tree algorithm over a pointer-linked graph —
//! one of the paper's algorithm µkernels.
//!
//! Vertices carry linked adjacency lists (edge objects scattered on the
//! heap). The classic O(V²) formulation keeps a `dist[]` array that is
//! scanned linearly (regular part) while relaxation walks the extracted
//! vertex's edge chain (irregular part) — a representative mix.

use rand::RngExt;

use semloc_trace::{Placement, SemanticHints, TraceSink};

use crate::object::Session;
use crate::patterns::regs;
use crate::ukernels::types;
use crate::{Kernel, Suite};

/// Prim's MST, repeated over the same random graph.
#[derive(Clone, Debug)]
pub struct Prim {
    /// Number of vertices.
    pub vertices: usize,
    /// Average edges per vertex.
    pub degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Prim {
    fn default() -> Self {
        Prim {
            vertices: 224,
            degree: 8,
            seed: 51,
        }
    }
}

struct Graph {
    /// Per-vertex edge-object addresses (chain order).
    edges: Vec<Vec<(u64, usize, u64)>>, // (edge addr, target vertex, weight)
    dist_base: u64,
}

impl Prim {
    fn build(&self, s: &mut Session<'_>) -> Graph {
        let n = self.vertices;
        let mut edges: Vec<Vec<(u64, usize, u64)>> = vec![Vec::new(); n];
        for (v, list) in edges.iter_mut().enumerate() {
            // Ring edge keeps the graph connected, plus random extras.
            let mut targets = vec![(v + 1) % n];
            for _ in 1..self.degree {
                targets.push(s.rng.random_range(0..n));
            }
            for t in targets {
                let w: u64 = s.rng.random_range(1..1000);
                let e = s.heap.alloc(64);
                list.push((e, t, w));
            }
        }
        let dist_base = s.heap.alloc_array(8, n as u64);
        Graph { edges, dist_base }
    }

    fn mst_round(&self, s: &mut Session<'_>, g: &Graph, sites: &Sites) {
        let n = self.vertices;
        let mut dist = vec![u64::MAX; n];
        let mut in_tree = vec![false; n];
        dist[0] = 0;
        let edge_hints = SemanticHints::link(types::EDGE, 0);
        for _ in 0..n {
            if s.done() {
                return;
            }
            // Linear scan of dist[] for the nearest out-of-tree vertex.
            let mut best = usize::MAX;
            for v in 0..n {
                if s.done() {
                    return;
                }
                s.em.load(
                    sites.dist_scan,
                    g.dist_base + (v as u64) * 8,
                    regs::VAL,
                    Some(regs::IDX),
                    None,
                    dist[v],
                );
                let better = !in_tree[v] && (best == usize::MAX || dist[v] < dist[best]);
                s.em.branch(sites.scan_br, better, sites.dist_scan, Some(regs::VAL));
                if better {
                    best = v;
                }
            }
            if best == usize::MAX || dist[best] == u64::MAX {
                return;
            }
            in_tree[best] = true;
            // Relax along best's edge chain.
            for (i, &(eaddr, t, w)) in g.edges[best].iter().enumerate() {
                if s.done() {
                    return;
                }
                let next = g.edges[best].get(i + 1).map_or(0, |&(a, _, _)| a);
                s.hinted_load(
                    sites.edge,
                    eaddr,
                    regs::PTR,
                    Some(regs::PTR),
                    edge_hints,
                    next,
                );
                s.em.load(sites.edge_w, eaddr + 8, regs::TMP, Some(regs::PTR), None, w);
                s.em.load(
                    sites.dist_rd,
                    g.dist_base + (t as u64) * 8,
                    regs::VAL,
                    Some(regs::IDX),
                    None,
                    dist[t],
                );
                let relax = !in_tree[t] && w < dist[t];
                s.em.branch(sites.relax_br, relax, sites.edge, Some(regs::VAL));
                if relax {
                    dist[t] = w;
                    s.em.store(
                        sites.dist_wr,
                        g.dist_base + (t as u64) * 8,
                        Some(regs::IDX),
                        Some(regs::TMP),
                    );
                }
            }
        }
    }
}

struct Sites {
    dist_scan: u64,
    scan_br: u64,
    edge: u64,
    edge_w: u64,
    dist_rd: u64,
    relax_br: u64,
    dist_wr: u64,
}

impl Kernel for Prim {
    fn name(&self) -> &'static str {
        "prim"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 16, Placement::Scatter, self.seed);
        let g = self.build(&mut s);
        let sites = Sites {
            dist_scan: s.pcs.site(),
            scan_br: s.pcs.site(),
            edge: s.pcs.sites(2),
            edge_w: s.pcs.site(),
            dist_rd: s.pcs.site(),
            relax_br: s.pcs.site(),
            dist_wr: s.pcs.site(),
        };
        while !s.done() {
            self.mst_round(&mut s, &g, &sites);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::CountingSink;

    #[test]
    fn runs_to_budget_with_mixed_accesses() {
        let mut sink = CountingSink::with_limit(80_000);
        Prim {
            vertices: 128,
            degree: 4,
            seed: 1,
        }
        .run(&mut sink);
        assert!(sink.total >= 80_000);
        assert!(sink.loads > 0 && sink.stores > 0 && sink.branches > 0);
    }
}
