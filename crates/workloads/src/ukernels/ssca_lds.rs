//! `SSCA_LDS` — the linked-data-structure variant of the SSCA graph kernel
//! used as an algorithm µbenchmark (Table 3): vertices and edges are
//! distinct heap objects, and the kernel sweeps vertex chains while walking
//! each vertex's edge chain, exercising the compound-structure hint
//! (vertex vs. edge type ids).

use rand::RngExt;

use semloc_trace::{Placement, SemanticHints, TraceSink};

use crate::object::Session;
use crate::patterns::regs;
use crate::ukernels::types;
use crate::{Kernel, Suite};

/// Linked graph sweep with per-vertex edge-chain walks.
#[derive(Clone, Debug)]
pub struct SscaLds {
    /// Number of vertices.
    pub vertices: usize,
    /// Edges per vertex.
    pub degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SscaLds {
    fn default() -> Self {
        SscaLds {
            vertices: 384,
            degree: 3,
            seed: 61,
        }
    }
}

impl Kernel for SscaLds {
    fn name(&self) -> &'static str {
        "ssca_lds"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 17, Placement::Scatter, self.seed);
        let n = self.vertices;
        // Vertex objects (40B: next 0, edge-head 8, data 16...) in a
        // shuffled chain; edge objects (24B: next 0, weight 8) per vertex.
        // Vertices are appended in sweep order; scatter placement scrambles
        // them within slabs (no line-level spatial order, slab-local
        // semantic neighbors).
        let vaddrs: Vec<u64> = (0..n).map(|_| s.heap.alloc(128)).collect();
        let order: Vec<usize> = (0..n).collect();
        let chain: Vec<u64> = vaddrs.clone();
        let edges: Vec<Vec<u64>> = (0..n)
            .map(|_| (0..self.degree).map(|_| s.heap.alloc(64)).collect())
            .collect();
        let weights: Vec<Vec<u64>> = (0..n)
            .map(|_| {
                (0..self.degree)
                    .map(|_| s.rng.random_range(1..100))
                    .collect()
            })
            .collect();

        let v_hints = SemanticHints::link(types::VERTEX, 0);
        let ehead_hints = SemanticHints::link(types::VERTEX, 8);
        let e_hints = SemanticHints::link(types::EDGE, 0);
        let site_v = s.pcs.sites(2);
        let site_ehead = s.pcs.sites(2);
        let site_e = s.pcs.sites(2);
        let site_w = s.pcs.site();
        let site_acc = s.pcs.site();
        let site_br = s.pcs.site();

        while !s.done() {
            for (pos, &v) in chain.iter().enumerate() {
                if s.done() {
                    return;
                }
                let vi = order[pos];
                let next_v = chain[(pos + 1) % n];
                // Follow the vertex chain, then its edge-head pointer.
                s.hinted_load(site_v, v, regs::PTR, Some(regs::PTR), v_hints, next_v);
                let ehead = edges[vi].first().copied().unwrap_or(0);
                s.hinted_load(
                    site_ehead,
                    v + 8,
                    regs::TMP,
                    Some(regs::PTR),
                    ehead_hints,
                    ehead,
                );
                for (k, &e) in edges[vi].iter().enumerate() {
                    if s.done() {
                        return;
                    }
                    let next_e = edges[vi].get(k + 1).copied().unwrap_or(0);
                    s.hinted_load(site_e, e, regs::TMP, Some(regs::TMP), e_hints, next_e);
                    s.em.load(
                        site_w,
                        e + 8,
                        regs::VAL,
                        Some(regs::TMP),
                        None,
                        weights[vi][k],
                    );
                    s.em.alu(
                        site_acc,
                        Some(regs::IDX),
                        Some(regs::IDX),
                        Some(regs::VAL),
                        0,
                    );
                }
                s.em.branch(site_br, pos + 1 != n, site_v, Some(regs::IDX));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::{CountingSink, InstrKind, RecordingSink};

    #[test]
    fn runs_to_budget() {
        let mut sink = CountingSink::with_limit(60_000);
        SscaLds::default().run(&mut sink);
        assert!(sink.total >= 60_000);
    }

    #[test]
    fn uses_distinct_type_ids_for_vertices_and_edges() {
        let mut sink = RecordingSink::with_limit(30_000);
        SscaLds {
            vertices: 128,
            degree: 3,
            seed: 1,
        }
        .run(&mut sink);
        let mut tids = std::collections::BTreeSet::new();
        for i in sink.instrs() {
            if let InstrKind::Load { hints: Some(h), .. } = i.kind {
                tids.insert(h.type_id);
            }
        }
        assert!(tids.contains(&types::VERTEX) && tids.contains(&types::EDGE));
    }
}
