//! Hash-table and ordered-map probing µkernels — the `hashtest` (STL
//! `unordered_map`) and `maptest` (STL RB-tree `map`) workloads of Table 3.
//! Both are dominated by input-dependent lookups, which §7.1 identifies as
//! the hardest group to predict.

use rand::RngExt;

use semloc_trace::{Placement, SemanticHints, TraceSink};

use crate::object::Session;
use crate::patterns::regs;
use crate::ukernels::types;
use crate::{Kernel, Suite};

/// Chained hash-table probing (an `unordered_map` analogue): a contiguous
/// bucket array pointing at scattered chain nodes.
#[derive(Clone, Debug)]
pub struct HashTest {
    /// Number of buckets (power of two).
    pub buckets: usize,
    /// Stored elements.
    pub elems: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HashTest {
    fn default() -> Self {
        HashTest {
            buckets: 4096,
            elems: 8192,
            seed: 41,
        }
    }
}

impl Kernel for HashTest {
    fn name(&self) -> &'static str {
        "hashtest"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        assert!(
            self.buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        let mut s = Session::new(sink, 14, Placement::Scatter, self.seed);
        let bucket_base = s.heap.alloc_array(8, self.buckets as u64);
        // chains[b] = chain node addresses of bucket b, search order.
        let mut chains: Vec<Vec<u64>> = vec![Vec::new(); self.buckets];
        for key in 0..self.elems as u64 {
            let b = (key.wrapping_mul(0x9e3779b97f4a7c15) >> 32) as usize & (self.buckets - 1);
            chains[b].push(s.heap.alloc(32));
        }
        let site_hash = s.pcs.site();
        let site_bucket = s.pcs.sites(2);
        let site_chain = s.pcs.sites(2);
        let site_cmp = s.pcs.site();
        let link_hints = SemanticHints::link(types::CHAIN_NODE, 0);
        let bucket_hints = SemanticHints::indexed(types::BUCKET);
        while !s.done() {
            let key: u64 = s.rng.random_range(0..self.elems as u64);
            let b = (key.wrapping_mul(0x9e3779b97f4a7c15) >> 32) as usize & (self.buckets - 1);
            // hash computation, bucket load, then chain walk.
            s.em.alu(site_hash, Some(regs::KEY), None, None, key);
            s.em.work(site_hash, 3);
            let chain = &chains[b];
            let head = chain.first().copied().unwrap_or(0);
            s.hinted_load(
                site_bucket,
                bucket_base + (b as u64) * 8,
                regs::PTR,
                Some(regs::KEY),
                bucket_hints,
                head,
            );
            let stop_at = if chain.is_empty() {
                0
            } else {
                (key as usize) % chain.len() + 1
            };
            for (i, &node) in chain.iter().take(stop_at).enumerate() {
                if s.done() {
                    return;
                }
                let next = chain.get(i + 1).copied().unwrap_or(0);
                s.em.load(
                    site_cmp,
                    node + 8,
                    regs::VAL,
                    Some(regs::PTR),
                    None,
                    key ^ 1,
                );
                s.em.branch(site_cmp, i + 1 == stop_at, site_chain, Some(regs::VAL));
                if i + 1 != stop_at {
                    s.hinted_load(
                        site_chain,
                        node,
                        regs::PTR,
                        Some(regs::PTR),
                        link_hints,
                        next,
                    );
                }
            }
        }
    }
}

/// Ordered-map probing over a balanced search tree (an RB-tree `map`
/// analogue): the same balanced-BST shape as the `bst` µkernel but with
/// fatter nodes (key + value + color), a different access mix, and mixed
/// point/range queries.
#[derive(Clone, Debug)]
pub struct MapTest {
    /// Number of keys.
    pub keys: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MapTest {
    fn default() -> Self {
        MapTest {
            keys: 8192,
            seed: 43,
        }
    }
}

impl Kernel for MapTest {
    fn name(&self) -> &'static str {
        "maptest"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 15, Placement::Scatter, self.seed);
        // Balanced tree over sorted keys; 48-byte nodes: left 0, right 8,
        // key 16, value 24, color 32.
        let n = self.keys;
        let addrs: Vec<u64> = (0..n).map(|_| s.heap.alloc(48)).collect();
        // In-order index tree; children of sorted-range midpoints.
        fn child(lo: usize, hi: usize, right: bool) -> Option<(usize, usize)> {
            if lo >= hi {
                return None;
            }
            let mid = (lo + hi) / 2;
            let (clo, chi) = if right { (mid + 1, hi) } else { (lo, mid) };
            (clo < chi).then_some((clo, chi))
        }
        let site_key = s.pcs.site();
        let site_cmp = s.pcs.site();
        let site_link = s.pcs.sites(2);
        let site_val = s.pcs.site();
        while !s.done() {
            let target: u64 = s.rng.random_range(0..n as u64);
            s.em.alu(site_key, Some(regs::KEY), None, None, target);
            let (mut lo, mut hi) = (0usize, n);
            loop {
                if s.done() {
                    return;
                }
                let mid = (lo + hi) / 2;
                let node = addrs[mid];
                s.em.load(
                    site_cmp,
                    node + 16,
                    regs::VAL,
                    Some(regs::PTR),
                    None,
                    mid as u64,
                );
                if mid as u64 == target {
                    // Touch the mapped value, done.
                    s.em.load(site_val, node + 24, regs::TMP, Some(regs::PTR), None, 0);
                    s.em.branch(site_cmp, true, site_key, Some(regs::VAL));
                    break;
                }
                let right = (mid as u64) < target;
                s.em.branch(site_cmp, right, site_link, Some(regs::VAL));
                let off = if right { 8u16 } else { 0 };
                match child(lo, hi, right) {
                    Some((clo, chi)) => {
                        let cmid = (clo + chi) / 2;
                        let hints = SemanticHints::link(types::TREE_NODE, off);
                        s.hinted_load(
                            site_link,
                            node + off as u64,
                            regs::PTR,
                            Some(regs::PTR),
                            hints,
                            addrs[cmid],
                        );
                        lo = clo;
                        hi = chi;
                    }
                    None => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::CountingSink;

    #[test]
    fn hashtest_runs_to_budget() {
        let mut sink = CountingSink::with_limit(60_000);
        HashTest::default().run(&mut sink);
        assert!(sink.total >= 60_000);
        assert!(sink.mem_fraction() > 0.2);
    }

    #[test]
    fn maptest_runs_to_budget() {
        let mut sink = CountingSink::with_limit(60_000);
        MapTest::default().run(&mut sink);
        assert!(sink.total >= 60_000);
        assert!(sink.branches > 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn hashtest_rejects_bad_bucket_count() {
        let mut sink = CountingSink::with_limit(10);
        HashTest {
            buckets: 1000,
            elems: 10,
            seed: 0,
        }
        .run(&mut sink);
    }
}
