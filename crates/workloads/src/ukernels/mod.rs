//! The paper's µbenchmarks (Table 3):
//!
//! * data-structure traversals — [`ListTraversal`], [`ArrayTraversal`],
//!   [`HashTest`] (an `unordered_map` analogue) and [`MapTest`] (an
//!   RB-tree `map` analogue);
//! * algorithms — [`ListSort`] (the Fig 1 insertion sort), [`Bst`] (binary
//!   search over a sorted tree, Fig 2), [`Prim`]'s minimum spanning tree
//!   and [`SscaLds`] (the linked variant of the SSCA graph kernel).

mod bst;
mod listsort;
mod prim;
mod ssca_lds;
mod tables;
mod traversal;

pub use bst::Bst;
pub use listsort::ListSort;
pub use prim::Prim;
pub use ssca_lds::SscaLds;
pub use tables::{HashTest, MapTest};
pub use traversal::{ArrayTraversal, ListTraversal};

/// Object-type ids used by the µkernels for semantic hints.
pub mod types {
    /// Linked-list node.
    pub const LIST_NODE: u16 = 1;
    /// Array element.
    pub const ARRAY_ELEM: u16 = 2;
    /// Binary-tree node.
    pub const TREE_NODE: u16 = 3;
    /// Hash bucket head.
    pub const BUCKET: u16 = 4;
    /// Hash chain node.
    pub const CHAIN_NODE: u16 = 5;
    /// Graph vertex.
    pub const VERTEX: u16 = 6;
    /// Graph edge.
    pub const EDGE: u16 = 7;
}
