//! Insertion sort over a linked list — the paper's motivating example
//! (Fig 1): nodes are allocated dynamically and inserted at value-sorted
//! positions, so the list "quickly loses its consecutive order in memory",
//! yet every insertion re-traverses the sorted prefix in exactly the same
//! logical order.

use rand::RngExt;

use semloc_trace::{Placement, Reg, TraceSink};

use crate::object::Session;
use crate::patterns::regs;
use crate::ukernels::types;
use crate::{Kernel, Suite};

use semloc_trace::SemanticHints;

/// Linked-list insertion sort, repeated over fresh random inputs.
#[derive(Clone, Debug)]
pub struct ListSort {
    /// Elements sorted per round.
    pub elems: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ListSort {
    fn default() -> Self {
        ListSort {
            elems: 500,
            seed: 21,
        }
    }
}

impl ListSort {
    /// One full sort round; returns early when the sink is done.
    fn round(&self, s: &mut Session<'_>, sites: &Sites) {
        // Sorted list as (addr, value) in list order.
        let mut list: Vec<(u64, u64)> = Vec::with_capacity(self.elems);
        let hints = SemanticHints::link(types::LIST_NODE, 0);
        for _ in 0..self.elems {
            if s.done() {
                return;
            }
            let value: u64 = s.rng.random_range(0..1_000_000);
            let node = s.heap.alloc(256);
            // Walk the sorted list from the head to the insertion point.
            let mut pos = 0usize;
            while pos < list.len() {
                let (cur, v) = list[pos];
                let next = list.get(pos + 1).map_or(0, |&(a, _)| a);
                // value load, compare branch, then follow the link.
                s.em.load(sites.value, cur + 8, regs::VAL, Some(regs::PTR), None, v);
                let stop = v >= value;
                s.em.branch(sites.cmp, stop, sites.link, Some(regs::VAL));
                if stop {
                    break;
                }
                s.hinted_load(sites.link, cur, regs::PTR, Some(regs::PTR), hints, next);
                pos += 1;
            }
            // Splice the new node in: write value + link, patch predecessor.
            s.em.store(sites.wr, node + 8, Some(Reg(6)), Some(regs::VAL));
            s.em.store(sites.wr, node, Some(Reg(6)), Some(regs::PTR));
            if pos > 0 {
                let (prev, _) = list[pos - 1];
                s.em.store(sites.patch, prev, Some(regs::PTR), Some(Reg(6)));
            }
            list.insert(pos, (node, value));
        }
    }
}

struct Sites {
    link: u64,
    value: u64,
    cmp: u64,
    wr: u64,
    patch: u64,
}

impl Kernel for ListSort {
    fn name(&self) -> &'static str {
        "listsort"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 12, Placement::Pools, self.seed);
        let sites = Sites {
            link: s.pcs.sites(2),
            value: s.pcs.site(),
            cmp: s.pcs.site(),
            wr: s.pcs.site(),
            patch: s.pcs.site(),
        };
        while !s.done() {
            self.round(&mut s, &sites);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::{CountingSink, InstrKind, RecordingSink};

    #[test]
    fn runs_to_budget() {
        let mut sink = CountingSink::with_limit(100_000);
        ListSort::default().run(&mut sink);
        assert!(sink.total >= 100_000);
        assert!(sink.mem_fraction() > 0.3, "insertion sort is memory heavy");
    }

    #[test]
    fn later_insertions_retraverse_the_same_prefix() {
        let mut sink = RecordingSink::with_limit(300_000);
        ListSort { elems: 64, seed: 3 }.run(&mut sink);
        // Collect the hinted link-load address sequence; the list head is
        // walked on every insertion, so the most frequent addresses repeat
        // many times.
        let mut counts = std::collections::BTreeMap::new();
        for i in sink.instrs() {
            if let InstrKind::Load {
                addr,
                hints: Some(_),
                ..
            } = i.kind
            {
                *counts.entry(addr).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(
            max > 20,
            "prefix nodes must recur heavily, max repeats = {max}"
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut sink = RecordingSink::with_limit(50_000);
            ListSort::default().run(&mut sink);
            sink.into_instrs()
        };
        assert_eq!(run(), run());
    }
}
