//! Plain list and array traversal µkernels — the two ends of the layout
//! spectrum for the *same* semantic pattern (visit every element in a fixed
//! logical order).

use semloc_trace::{Placement, TraceSink};

use crate::object::Session;
use crate::patterns::{self, LinkedChain, LoopSites};
use crate::ukernels::types;
use crate::{Kernel, Suite};

/// Repeated traversal of a pointer-linked list whose nodes are scattered on
/// the heap (semantic order ⟂ spatial order).
#[derive(Clone, Debug)]
pub struct ListTraversal {
    /// Number of list nodes.
    pub nodes: usize,
    /// Filler ALU work per node.
    pub work: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ListTraversal {
    fn default() -> Self {
        ListTraversal {
            nodes: 1024,
            work: 3,
            seed: 11,
        }
    }
}

impl Kernel for ListTraversal {
    fn name(&self) -> &'static str {
        "list"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 10, Placement::Scatter, self.seed);
        // Nodes are allocated in traversal (append) order, as a real list
        // built by insertion would be; the scatter placement scrambles them
        // within each heap slab, so spatial order is broken at line
        // granularity while semantic neighbors stay slab-local.
        let chain = LinkedChain::build(&mut s, self.nodes, 128, types::LIST_NODE);
        let sites = LoopSites::alloc(&mut s);
        while !s.done() {
            chain.traverse(&mut s, sites, self.work);
        }
    }
}

/// Repeated sequential scan of a contiguous array — the spatially optimized
/// twin of [`ListTraversal`].
#[derive(Clone, Debug)]
pub struct ArrayTraversal {
    /// Number of 8-byte elements.
    pub elems: u64,
    /// Filler ALU work per element.
    pub work: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArrayTraversal {
    fn default() -> Self {
        ArrayTraversal {
            elems: 32 * 1024,
            work: 3,
            seed: 12,
        }
    }
}

impl Kernel for ArrayTraversal {
    fn name(&self) -> &'static str {
        "array"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 11, Placement::Bump, self.seed);
        let base = s.heap.alloc_array(8, self.elems);
        let sites = LoopSites::alloc(&mut s);
        while !s.done() {
            patterns::stream(
                &mut s,
                sites,
                base,
                self.elems,
                8,
                1,
                types::ARRAY_ELEM,
                self.work,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::{CountingSink, InstrKind, RecordingSink};

    #[test]
    fn list_runs_to_budget_and_is_memory_heavy() {
        let mut sink = CountingSink::with_limit(50_000);
        ListTraversal::default().run(&mut sink);
        assert!(sink.total >= 50_000);
        assert!(sink.mem_fraction() > 0.2);
    }

    #[test]
    fn array_is_sequential() {
        let mut sink = RecordingSink::with_limit(20_000);
        ArrayTraversal::default().run(&mut sink);
        let addrs: Vec<u64> = sink
            .instrs()
            .iter()
            .filter_map(|i| match i.kind {
                InstrKind::Load {
                    addr,
                    hints: Some(_),
                    ..
                } => Some(addr),
                _ => None,
            })
            .collect();
        let seq = addrs.windows(2).filter(|w| w[1] == w[0] + 8).count();
        assert!(seq as f64 > addrs.len() as f64 * 0.9);
    }

    #[test]
    fn list_traversal_order_is_stable_across_laps() {
        let mut sink = RecordingSink::with_limit(120_000);
        ListTraversal {
            nodes: 512,
            work: 0,
            seed: 5,
        }
        .run(&mut sink);
        let addrs: Vec<u64> = sink
            .instrs()
            .iter()
            .filter_map(|i| match i.kind {
                InstrKind::Load {
                    addr,
                    hints: Some(_),
                    ..
                } => Some(addr),
                _ => None,
            })
            .collect();
        assert!(addrs.len() > 1024, "need at least two laps");
        // Lap k and lap k+1 visit identical sequences (semantic recurrence).
        assert_eq!(addrs[..512], addrs[512..1024]);
    }
}
