//! Binary search over a sorted binary tree (the paper's Fig 2), with
//! heap-scattered nodes and input-dependent branching — one of the hardest
//! patterns for any prefetcher (§7.1 groups it with the lookup-dominated
//! µbenchmarks).

use rand::RngExt;

use semloc_trace::{Placement, SemanticHints, TraceSink};

use crate::object::Session;
use crate::patterns::regs;
use crate::ukernels::types;
use crate::{Kernel, Suite};

/// Node layout: left link at 0, right link at 8, key at 16 (32-byte node).
const LEFT_OFF: u16 = 0;
const RIGHT_OFF: u16 = 8;
const KEY_OFF: u64 = 16;

/// Repeated random lookups in a pointer-linked binary search tree.
#[derive(Clone, Debug)]
pub struct Bst {
    /// Number of keys in the tree.
    pub keys: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Bst {
    fn default() -> Self {
        Bst {
            keys: 4096,
            seed: 31,
        }
    }
}

#[derive(Clone, Copy)]
struct Node {
    addr: u64,
    key: u64,
    left: Option<usize>,
    right: Option<usize>,
}

impl Bst {
    /// Build a balanced BST over `keys` sorted keys; node addresses come
    /// from the scattered heap (insertion-order allocation).
    fn build(&self, s: &mut Session<'_>) -> (Vec<Node>, usize) {
        let mut sorted: Vec<u64> = (0..self.keys as u64).map(|i| i * 8 + 1).collect();
        // Allocate in random (insertion) order so addresses do not follow
        // key order.
        let mut nodes: Vec<Node> = sorted
            .iter()
            .map(|&key| Node {
                addr: s.heap.alloc(32),
                key,
                left: None,
                right: None,
            })
            .collect();
        // Link into a balanced tree over the sorted index range.
        fn link(nodes: &mut [Node], lo: usize, hi: usize) -> Option<usize> {
            if lo >= hi {
                return None;
            }
            let mid = (lo + hi) / 2;
            let l = link(nodes, lo, mid);
            let r = link(nodes, mid + 1, hi);
            nodes[mid].left = l;
            nodes[mid].right = r;
            Some(mid)
        }
        let root = link(&mut nodes, 0, self.keys).expect("non-empty tree");
        sorted.clear();
        (nodes, root)
    }

    fn lookup(&self, s: &mut Session<'_>, nodes: &[Node], root: usize, key: u64, sites: &Sites) {
        let mut cur = root;
        loop {
            if s.done() {
                return;
            }
            let n = nodes[cur];
            s.em.load(
                sites.key,
                n.addr + KEY_OFF,
                regs::VAL,
                Some(regs::PTR),
                None,
                n.key,
            );
            if key == n.key {
                s.em.branch(sites.cmp, true, sites.key, Some(regs::VAL));
                return;
            }
            let (next, off) = if key < n.key {
                (n.left, LEFT_OFF)
            } else {
                (n.right, RIGHT_OFF)
            };
            s.em.branch(sites.cmp, key < n.key, sites.key, Some(regs::VAL));
            match next {
                Some(i) => {
                    let hints = SemanticHints::link(types::TREE_NODE, off);
                    s.hinted_load(
                        sites.link,
                        n.addr + off as u64,
                        regs::PTR,
                        Some(regs::PTR),
                        hints,
                        nodes[i].addr,
                    );
                    cur = i;
                }
                None => return,
            }
        }
    }
}

struct Sites {
    key: u64,
    cmp: u64,
    link: u64,
}

impl Kernel for Bst {
    fn name(&self) -> &'static str {
        "bst"
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 13, Placement::Scatter, self.seed);
        let (nodes, root) = self.build(&mut s);
        let sites = Sites {
            key: s.pcs.site(),
            cmp: s.pcs.site(),
            link: s.pcs.sites(2),
        };
        while !s.done() {
            let key: u64 = s.rng.random_range(0..self.keys as u64) * 8 + 1;
            // The searched key rides in a register (a Table-1 context cue).
            s.em.alu(sites.cmp, Some(regs::KEY), None, None, key);
            self.lookup(&mut s, &nodes, root, key, &sites);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::{CountingSink, InstrKind, RecordingSink};

    #[test]
    fn runs_to_budget() {
        let mut sink = CountingSink::with_limit(50_000);
        Bst::default().run(&mut sink);
        assert!(sink.total >= 50_000);
    }

    #[test]
    fn lookups_have_logarithmic_depth() {
        let mut sink = RecordingSink::with_limit(100_000);
        Bst {
            keys: 1024,
            seed: 2,
        }
        .run(&mut sink);
        // Count hinted link loads per lookup (delimited by the key-register
        // ALU writes).
        let mut depths = Vec::new();
        let mut cur = 0u32;
        for i in sink.instrs() {
            match i.kind {
                InstrKind::Alu { .. } if i.dst == Some(regs::KEY) => {
                    if cur > 0 {
                        depths.push(cur);
                    }
                    cur = 0;
                }
                InstrKind::Load { hints: Some(_), .. } => cur += 1,
                _ => {}
            }
        }
        assert!(!depths.is_empty());
        let avg: f64 = depths.iter().map(|&d| d as f64).sum::<f64>() / depths.len() as f64;
        assert!(
            (6.0..=11.0).contains(&avg),
            "avg lookup depth {avg} for 1024 keys"
        );
    }
}
