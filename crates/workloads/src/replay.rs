//! Record-once / replay-many: capture a kernel's instruction stream into a
//! [`TraceBuffer`] and replay it through the `Kernel` trait.
//!
//! Why replay is bit-identical to generation: kernels receive **no**
//! feedback from their sink other than `done()`, and every sink the
//! harness drives (the OoO core, [`BufferSink`]) gates identically —
//! instructions are accepted while the count is below the budget and
//! dropped after, with `done()` flipping exactly at the budget. So the
//! stream a kernel emits is a pure function of its configuration, and the
//! first `b` accepted instructions are the same for every budget ≥ `b`
//! (delaying `done()` only *extends* the stream — the prefix property).
//! A trace captured at the largest budget a matrix needs therefore serves
//! every smaller budget, including the calibration probe's.

use std::sync::Arc;

use semloc_trace::{BufferSink, DecodedTrace, TraceBuffer, TraceSink};

use crate::{Kernel, Suite};

/// A kernel's instruction stream, captured once for reuse across every
/// prefetcher column / sweep point that needs it.
#[derive(Debug, Clone)]
pub struct CapturedTrace {
    /// The source kernel's registry name.
    pub name: &'static str,
    /// The source kernel's suite.
    pub suite: Suite,
    /// The source kernel's [`Kernel::trace_key`] (its full configuration).
    pub key: String,
    /// The instruction budget the capture ran under (0 = unbounded).
    pub budget: u64,
    /// Whether the generator finished on its own before the capture budget
    /// — i.e. the buffer holds the kernel's *entire* stream.
    pub complete: bool,
    /// The captured stream.
    pub buf: TraceBuffer,
}

impl CapturedTrace {
    /// Whether this capture can serve a replay at `budget` (0 = unbounded).
    ///
    /// A complete capture serves any budget. A truncated capture serves any
    /// budget up to its own, by the prefix property.
    pub fn covers(&self, budget: u64) -> bool {
        self.complete || (budget != 0 && self.budget != 0 && self.budget >= budget)
    }
}

/// Run `kernel` once against a [`BufferSink`] with the given instruction
/// budget (0 = unbounded) and return the captured stream.
pub fn capture_kernel(kernel: &dyn Kernel, budget: u64) -> CapturedTrace {
    let mut sink = BufferSink::with_limit(budget);
    kernel.run(&mut sink);
    let complete = budget == 0 || (sink.len() as u64) < budget;
    CapturedTrace {
        name: kernel.name(),
        suite: kernel.suite(),
        key: kernel.trace_key(),
        budget,
        complete,
        buf: sink.into_buffer(),
    }
}

/// A [`Kernel`] that replays a [`CapturedTrace`] instead of re-running the
/// generator. Drop-in at every existing call site: same name, same suite,
/// same `trace_key`, bit-identical stream.
#[derive(Debug, Clone)]
pub struct ReplayKernel {
    trace: Arc<CapturedTrace>,
    /// Pre-decoded lanes for zero-decode block replay, when the trace
    /// store's decode cache admitted this capture. `None` falls back to
    /// streaming varint decode — bit-identical either way.
    decoded: Option<Arc<DecodedTrace>>,
}

impl ReplayKernel {
    /// Wrap a captured trace.
    pub fn new(trace: Arc<CapturedTrace>) -> Self {
        ReplayKernel {
            trace,
            decoded: None,
        }
    }

    /// Attach pre-decoded lanes (must be a decode of exactly this
    /// capture's buffer; debug-asserted by length).
    pub fn with_decoded(mut self, decoded: Option<Arc<DecodedTrace>>) -> Self {
        if let Some(d) = decoded.as_ref() {
            debug_assert_eq!(d.len(), self.trace.buf.len());
        }
        self.decoded = decoded;
        self
    }

    /// The pre-decoded lanes, if attached.
    pub fn decoded(&self) -> Option<&Arc<DecodedTrace>> {
        self.decoded.as_ref()
    }

    /// The underlying capture.
    pub fn trace(&self) -> &Arc<CapturedTrace> {
        &self.trace
    }
}

impl Kernel for ReplayKernel {
    fn name(&self) -> &'static str {
        self.trace.name
    }

    fn suite(&self) -> Suite {
        self.trace.suite
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        for i in self.trace.buf.iter() {
            if sink.done() {
                return;
            }
            sink.instr(i);
        }
    }

    /// The *source* kernel's key, so a replay-backed run caches under the
    /// same identity as a generated one.
    fn trace_key(&self) -> String {
        self.trace.key.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph500::Graph500;
    use crate::kernel_by_name;
    use semloc_trace::RecordingSink;

    #[test]
    fn replay_is_bit_identical_to_generation() {
        for name in ["list", "mcf", "graph500"] {
            let k = kernel_by_name(name).unwrap();
            let budget = 30_000u64;

            let mut direct = RecordingSink::with_limit(budget as usize);
            k.run(&mut direct);

            let trace = capture_kernel(k.as_ref(), budget);
            let replay = ReplayKernel::new(Arc::new(trace));
            let mut replayed = RecordingSink::with_limit(budget as usize);
            replay.run(&mut replayed);

            assert_eq!(
                direct.instrs(),
                replayed.instrs(),
                "{name}: replay diverged from generation"
            );
        }
    }

    #[test]
    fn prefix_property_holds_across_budgets() {
        // A capture at a large budget must serve smaller budgets with the
        // exact stream generation-at-that-budget would produce.
        let k = kernel_by_name("list").unwrap();
        let big = capture_kernel(k.as_ref(), 40_000);
        let replay = ReplayKernel::new(Arc::new(big));
        for small in [1_000u64, 10_000, 25_000] {
            let mut direct = RecordingSink::with_limit(small as usize);
            k.run(&mut direct);
            let mut replayed = RecordingSink::with_limit(small as usize);
            replay.run(&mut replayed);
            assert_eq!(direct.instrs(), replayed.instrs(), "budget {small}");
        }
    }

    #[test]
    fn covers_semantics() {
        let k = kernel_by_name("array").unwrap();
        let t = capture_kernel(k.as_ref(), 5_000);
        assert!(!t.complete, "array loops forever; capture must truncate");
        assert!(t.covers(5_000));
        assert!(t.covers(100));
        assert!(!t.covers(5_001));
        assert!(!t.covers(0), "truncated capture cannot serve unbounded");

        let complete = CapturedTrace {
            complete: true,
            ..t
        };
        assert!(complete.covers(0));
        assert!(complete.covers(u64::MAX));
    }

    #[test]
    fn trace_key_distinguishes_configurations() {
        let a = Graph500::csr();
        let b = Graph500 {
            vertices: 1024,
            ..Graph500::csr()
        };
        assert_eq!(a.name(), b.name());
        assert_ne!(a.trace_key(), b.trace_key());

        // And the replay adapter preserves the source identity.
        let t = capture_kernel(&a, 1_000);
        let r = ReplayKernel::new(Arc::new(t));
        assert_eq!(r.trace_key(), a.trace_key());
        assert_eq!(r.name(), a.name());
        assert_eq!(r.suite(), a.suite());
    }
}
