//! The workload registry: every benchmark of Table 3 under its paper name.

use crate::graph500::Graph500;
use crate::pbbs::{Knn, SetCover, SuffixArray};
use crate::spec::all_spec_proxies;
use crate::ssca2::Ssca2;
use crate::ukernels::{
    ArrayTraversal, Bst, HashTest, ListSort, ListTraversal, MapTest, Prim, SscaLds,
};
use crate::{Kernel, Suite};

/// Metadata row for Table 3 listings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelInfo {
    /// Kernel name.
    pub name: &'static str,
    /// Suite it belongs to.
    pub suite: Suite,
}

/// A shareable workload handle (kernels are immutable configs, so they are
/// `Send + Sync` and can be simulated from worker threads).
pub type KernelBox = Box<dyn Kernel + Send + Sync>;

/// Every workload, in Table 3 order (SPEC, PBBS, Graph500, HPCS,
/// µkernels).
pub fn all_kernels() -> Vec<KernelBox> {
    let mut v: Vec<KernelBox> = Vec::new();
    for p in all_spec_proxies() {
        v.push(Box::new(p));
    }
    v.push(Box::new(SuffixArray::default()));
    v.push(Box::new(SetCover::default()));
    v.push(Box::new(Knn::default()));
    v.push(Box::new(Graph500::csr()));
    v.push(Box::new(Graph500::linked()));
    v.push(Box::new(Ssca2::csr()));
    v.push(Box::new(Ssca2::linked()));
    v.push(Box::new(Prim::default()));
    v.push(Box::new(ListSort::default()));
    v.push(Box::new(SscaLds::default()));
    v.push(Box::new(ListTraversal::default()));
    v.push(Box::new(ArrayTraversal::default()));
    v.push(Box::new(Bst::default()));
    v.push(Box::new(HashTest::default()));
    v.push(Box::new(MapTest::default()));
    v
}

/// The µbenchmarks only (Fig 8 top, §7.1).
pub fn microbenchmarks() -> Vec<KernelBox> {
    all_kernels()
        .into_iter()
        .filter(|k| k.suite() == Suite::Micro)
        .collect()
}

/// The SPEC proxy suite only (Fig 12 bottom).
pub fn spec_suite() -> Vec<KernelBox> {
    all_kernels()
        .into_iter()
        .filter(|k| k.suite() == Suite::Spec)
        .collect()
}

/// Workloads the paper's Figs 10/11 highlight as memory-intensive; the
/// harness additionally filters by measured MPKI.
pub fn memory_intensive() -> Vec<KernelBox> {
    const NAMES: [&str; 12] = [
        "mcf",
        "omnetpp",
        "milc",
        "lbm",
        "libquantum",
        "soplex",
        "graph500",
        "graph500-list",
        "ssca2-list",
        "list",
        "listsort",
        "ssca_lds",
    ];
    all_kernels()
        .into_iter()
        .filter(|k| NAMES.contains(&k.name()))
        .collect()
}

/// Look up a workload by its Table 3 name.
pub fn kernel_by_name(name: &str) -> Option<KernelBox> {
    all_kernels().into_iter().find(|k| k.name() == name)
}

/// Table 3 metadata for every workload.
pub fn table3() -> Vec<KernelInfo> {
    all_kernels()
        .iter()
        .map(|k| KernelInfo {
            name: k.name(),
            suite: k.suite(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_unique_names() {
        let names: Vec<_> = all_kernels().iter().map(|k| k.name()).collect();
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert_eq!(names.len(), 31);
    }

    #[test]
    fn suites_are_all_represented() {
        let suites: std::collections::BTreeSet<_> =
            all_kernels().iter().map(|k| k.suite()).collect();
        assert_eq!(suites.len(), 5);
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(kernel_by_name("mcf").is_some());
        assert!(kernel_by_name("graph500-list").is_some());
        assert!(kernel_by_name("nope").is_none());
    }

    #[test]
    fn micro_and_spec_partitions() {
        assert_eq!(microbenchmarks().len(), 8);
        assert_eq!(spec_suite().len(), 16);
        assert!(!memory_intensive().is_empty());
    }
}
