//! Graph500 breadth-first search, in both a spatially-optimized CSR layout
//! and a naive pointer-linked layout — the pair behind the paper's Fig 14
//! layout-agnostic-programming experiment.
//!
//! The generator produces a connected random graph (ring + random chords,
//! a stand-in for the Kronecker generator that preserves the irregular
//! neighbor distribution); BFS runs repeatedly from rotating roots, as the
//! Graph500 benchmark does.

use rand::RngExt;

use semloc_trace::{Addr, Placement, SemanticHints, TraceSink};

use crate::object::Session;
use crate::patterns::regs;
use crate::{Kernel, Suite};

/// Type ids for graph objects.
const T_XADJ: u16 = 20;
const T_ADJ: u16 = 21;
const T_VERTEX: u16 = 22;
const T_EDGE: u16 = 23;

/// Graph layout under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Compressed sparse row: vertex offsets array + packed edge array.
    Csr,
    /// Pointer-linked: vertex objects with chained edge objects, scattered
    /// on the heap.
    Linked,
}

/// Graph500-style BFS.
#[derive(Clone, Debug)]
pub struct Graph500 {
    /// Data layout.
    pub layout: Layout,
    /// Number of vertices.
    pub vertices: usize,
    /// Average degree (Graph500 edgefactor is 16; scaled down with the
    /// graph).
    pub degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Graph500 {
    /// The CSR variant at default scale.
    pub fn csr() -> Self {
        Graph500 {
            layout: Layout::Csr,
            vertices: 512,
            degree: 8,
            seed: 71,
        }
    }

    /// The linked variant at default scale.
    pub fn linked() -> Self {
        Graph500 {
            layout: Layout::Linked,
            vertices: 512,
            degree: 8,
            seed: 71,
        }
    }

    /// Adjacency lists of the generated graph (identical for both layouts —
    /// only the memory layout differs).
    fn adjacency(&self, s: &mut Session<'_>) -> Vec<Vec<usize>> {
        let n = self.vertices;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (v, list) in adj.iter_mut().enumerate() {
            list.push((v + 1) % n); // connectivity ring
            for _ in 1..self.degree {
                list.push(s.rng.random_range(0..n));
            }
        }
        adj
    }
}

struct CsrGraph {
    xadj: Addr,
    adjncy: Addr,
    offsets: Vec<u64>,
    targets: Vec<u64>,
    visited: Addr,
}

struct LinkedGraph {
    vaddrs: Vec<Addr>,
    /// Per-vertex edge-object addresses; each edge stores its target vertex.
    eaddrs: Vec<Vec<Addr>>,
    adj: Vec<Vec<usize>>,
    visited: Addr,
}

fn bfs_csr(s: &mut Session<'_>, g: &CsrGraph, root: usize, sites: &CsrSites) {
    let n = g.offsets.len() - 1;
    let mut seen = vec![false; n];
    let mut frontier = vec![root];
    seen[root] = true;
    let xh = SemanticHints::indexed(T_XADJ);
    let ah = SemanticHints::indexed(T_ADJ);
    while let Some(v) = frontier.pop() {
        if s.done() {
            return;
        }
        let (lo, hi) = (g.offsets[v], g.offsets[v + 1]);
        s.hinted_load(
            sites.xadj,
            g.xadj + (v as u64) * 8,
            regs::IDX,
            Some(regs::PTR),
            xh,
            lo,
        );
        s.hinted_load(
            sites.xadj2,
            g.xadj + (v as u64 + 1) * 8,
            regs::TMP,
            Some(regs::PTR),
            xh,
            hi,
        );
        for e in lo..hi {
            if s.done() {
                return;
            }
            let w = g.targets[e as usize] as usize;
            s.hinted_load(
                sites.adj,
                g.adjncy + e * 8,
                regs::PTR,
                Some(regs::IDX),
                ah,
                w as u64,
            );
            s.em.load(
                sites.vis_rd,
                g.visited + (w as u64),
                regs::VAL,
                Some(regs::PTR),
                None,
                seen[w] as u64,
            );
            s.em.branch(sites.vis_br, !seen[w], sites.adj, Some(regs::VAL));
            if !seen[w] {
                seen[w] = true;
                s.em.store(
                    sites.vis_wr,
                    g.visited + (w as u64),
                    Some(regs::PTR),
                    Some(regs::VAL),
                );
                frontier.push(w);
            }
        }
    }
}

fn bfs_linked(s: &mut Session<'_>, g: &LinkedGraph, root: usize, sites: &LinkedSites) {
    let n = g.vaddrs.len();
    let mut seen = vec![false; n];
    let mut frontier = vec![root];
    seen[root] = true;
    let vh = SemanticHints::link(T_VERTEX, 8);
    let eh = SemanticHints::link(T_EDGE, 0);
    let th = SemanticHints::link(T_EDGE, 8);
    while let Some(v) = frontier.pop() {
        if s.done() {
            return;
        }
        let va = g.vaddrs[v];
        let ehead = g.eaddrs[v].first().copied().unwrap_or(0);
        s.hinted_load(sites.ehead, va + 8, regs::TMP, Some(regs::PTR), vh, ehead);
        for (k, &ea) in g.eaddrs[v].iter().enumerate() {
            if s.done() {
                return;
            }
            let w = g.adj[v][k];
            let next_e = g.eaddrs[v].get(k + 1).copied().unwrap_or(0);
            s.hinted_load(sites.edge, ea, regs::TMP, Some(regs::TMP), eh, next_e);
            s.hinted_load(
                sites.target,
                ea + 8,
                regs::PTR,
                Some(regs::TMP),
                th,
                g.vaddrs[w],
            );
            s.em.load(
                sites.vis_rd,
                g.visited + (w as u64),
                regs::VAL,
                Some(regs::PTR),
                None,
                seen[w] as u64,
            );
            s.em.branch(sites.vis_br, !seen[w], sites.edge, Some(regs::VAL));
            if !seen[w] {
                seen[w] = true;
                s.em.store(
                    sites.vis_wr,
                    g.visited + (w as u64),
                    Some(regs::PTR),
                    Some(regs::VAL),
                );
                frontier.push(w);
            }
        }
    }
}

struct CsrSites {
    xadj: Addr,
    xadj2: Addr,
    adj: Addr,
    vis_rd: Addr,
    vis_br: Addr,
    vis_wr: Addr,
}

struct LinkedSites {
    ehead: Addr,
    edge: Addr,
    target: Addr,
    vis_rd: Addr,
    vis_br: Addr,
    vis_wr: Addr,
}

impl Kernel for Graph500 {
    fn name(&self) -> &'static str {
        match self.layout {
            Layout::Csr => "graph500",
            Layout::Linked => "graph500-list",
        }
    }

    fn suite(&self) -> Suite {
        Suite::Graph500
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        // The naive linked layout models a *fresh* heap: consecutive
        // same-size allocations are pool-sequential (as real allocators
        // behave before churn); irregularity comes from the traversal
        // order, not from artificially scattering every object.
        let placement = match self.layout {
            Layout::Csr => Placement::Bump,
            Layout::Linked => Placement::Scatter,
        };
        let region = match self.layout {
            Layout::Csr => 20,
            Layout::Linked => 22,
        };
        let mut s = Session::new(sink, region, placement, self.seed);
        let adj = self.adjacency(&mut s);
        let n = self.vertices;
        match self.layout {
            Layout::Csr => {
                let mut offsets = vec![0u64; n + 1];
                let mut targets = Vec::new();
                for (v, list) in adj.iter().enumerate() {
                    offsets[v] = targets.len() as u64;
                    targets.extend(list.iter().map(|&w| w as u64));
                }
                offsets[n] = targets.len() as u64;
                let xadj = s.heap.alloc_array(8, (n + 1) as u64);
                let adjncy = s.heap.alloc_array(8, targets.len() as u64);
                let visited = s.heap.alloc_array(1, n as u64);
                let g = CsrGraph {
                    xadj,
                    adjncy,
                    offsets,
                    targets,
                    visited,
                };
                let sites = CsrSites {
                    xadj: s.pcs.sites(2),
                    xadj2: s.pcs.sites(2),
                    adj: s.pcs.sites(2),
                    vis_rd: s.pcs.site(),
                    vis_br: s.pcs.site(),
                    vis_wr: s.pcs.site(),
                };
                // Graph500 samples BFS roots; at our scaled-down phase
                // length a small rotating root set provides the traversal
                // recurrence a long phase would.
                let roots = [0usize, n / 2];
                let mut i = 0usize;
                while !s.done() {
                    bfs_csr(&mut s, &g, roots[i % roots.len()], &sites);
                    i += 1;
                }
            }
            Layout::Linked => {
                let vaddrs: Vec<Addr> = (0..n).map(|_| s.heap.alloc(32)).collect();
                // Each vertex's adjacency chain is allocated together (the
                // natural way to build per-vertex lists); the scatter
                // placement scrambles objects within heap slabs, so chains
                // are spatially disordered at line granularity while staying
                // slab-local.
                let eaddrs: Vec<Vec<Addr>> = adj
                    .iter()
                    .map(|list| list.iter().map(|_| s.heap.alloc(48)).collect())
                    .collect();
                let visited = s.heap.alloc_array(1, n as u64);
                let g = LinkedGraph {
                    vaddrs,
                    eaddrs,
                    adj,
                    visited,
                };
                let sites = LinkedSites {
                    ehead: s.pcs.sites(2),
                    edge: s.pcs.sites(2),
                    target: s.pcs.sites(2),
                    vis_rd: s.pcs.site(),
                    vis_br: s.pcs.site(),
                    vis_wr: s.pcs.site(),
                };
                let roots = [0usize, n / 2];
                let mut i = 0usize;
                while !s.done() {
                    bfs_linked(&mut s, &g, roots[i % roots.len()], &sites);
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::{CountingSink, InstrKind, RecordingSink};

    #[test]
    fn both_layouts_run_to_budget() {
        for k in [Graph500::csr(), Graph500::linked()] {
            let mut sink = CountingSink::with_limit(60_000);
            k.run(&mut sink);
            assert!(sink.total >= 60_000, "{} stalled", k.name());
            assert!(sink.mem_fraction() > 0.2);
        }
    }

    #[test]
    fn layouts_differ_spatially_not_semantically() {
        // Compare the *edge-structure* access streams: CSR walks the packed
        // `adjncy` array, the linked layout hops between scattered edge
        // objects. The former must be far more sequential.
        let edge_loads = |k: &Graph500, tid: u16, off: u16, budget| {
            let mut sink = RecordingSink::with_limit(budget);
            k.run(&mut sink);
            sink.instrs()
                .iter()
                .filter_map(|i| match i.kind {
                    InstrKind::Load {
                        addr,
                        hints: Some(h),
                        ..
                    } if h.type_id == tid && h.link_offset == off => Some(addr),
                    _ => None,
                })
                .collect::<Vec<u64>>()
        };
        let csr = edge_loads(&Graph500::csr(), T_ADJ, 0, 40_000);
        let linked = edge_loads(&Graph500::linked(), T_EDGE, 0, 40_000);
        assert!(csr.len() > 100 && linked.len() > 100);
        let near = |v: &[u64]| {
            v.windows(2).filter(|w| w[1].abs_diff(w[0]) <= 64).count() as f64 / v.len() as f64
        };
        assert!(
            near(&csr) > 2.0 * near(&linked),
            "CSR edge stream should be far more sequential ({:.2} vs {:.2})",
            near(&csr),
            near(&linked)
        );
    }

    #[test]
    fn names_differ_per_layout() {
        assert_eq!(Graph500::csr().name(), "graph500");
        assert_eq!(Graph500::linked().name(), "graph500-list");
    }
}
