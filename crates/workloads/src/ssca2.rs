//! HPCS SSCA2 v2.2 kernel 4 — betweenness centrality — in the two layouts
//! the paper evaluates ("CSR / List (array)", Table 3; Fig 14a).
//!
//! The kernel runs repeated single-source shortest-path (BFS) passes and a
//! backward dependency-accumulation sweep, the structure of the
//! Brandes-style betweenness computation SSCA2 uses.
//!
//! Layouts: **CSR** packs edge targets as a bare `u64` array indexed by a
//! vertex-offset array; **List (array)** stores fat 32-byte edge *records*
//! (src, dst, weight, flags) in an array-of-structs edge list with a
//! per-vertex header — the naive representation SSCA2's spec describes,
//! with 4x the footprint and an extra header indirection per vertex.

use rand::RngExt;

use semloc_trace::{Addr, Placement, SemanticHints, TraceSink};

use crate::graph500::Layout;
use crate::object::Session;
use crate::patterns::regs;
use crate::{Kernel, Suite};

const T_XADJ: u16 = 30;
const T_ADJ: u16 = 31;
const T_EDGE: u16 = 33;

/// SSCA2 betweenness-centrality kernel.
#[derive(Clone, Debug)]
pub struct Ssca2 {
    /// Data layout (CSR or pointer-linked).
    pub layout: Layout,
    /// Number of vertices.
    pub vertices: usize,
    /// Average degree.
    pub degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Ssca2 {
    /// The CSR variant at default scale.
    pub fn csr() -> Self {
        Ssca2 {
            layout: Layout::Csr,
            vertices: 512,
            degree: 6,
            seed: 81,
        }
    }

    /// The linked variant at default scale.
    pub fn linked() -> Self {
        Ssca2 {
            layout: Layout::Linked,
            vertices: 512,
            degree: 6,
            seed: 81,
        }
    }
}

struct Arrays {
    sigma: Addr,
    delta: Addr,
    depth: Addr,
}

impl Kernel for Ssca2 {
    fn name(&self) -> &'static str {
        match self.layout {
            Layout::Csr => "ssca2",
            Layout::Linked => "ssca2-list",
        }
    }

    fn suite(&self) -> Suite {
        Suite::Hpcs
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let placement = Placement::Bump;
        let region = match self.layout {
            Layout::Csr => 21,
            Layout::Linked => 23,
        };
        let mut s = Session::new(sink, region, placement, self.seed);
        let n = self.vertices;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (v, list) in adj.iter_mut().enumerate() {
            list.push((v + 1) % n);
            for _ in 1..self.degree {
                list.push(s.rng.random_range(0..n));
            }
        }

        // Edge storage per layout.
        #[allow(clippy::type_complexity)]
        let (csr, linked): (Option<(Addr, Addr, Vec<u64>)>, Option<Vec<Vec<Addr>>>) =
            match self.layout {
                Layout::Csr => {
                    let mut offsets = vec![0u64; n + 1];
                    let mut targets = Vec::new();
                    for (v, list) in adj.iter().enumerate() {
                        offsets[v] = targets.len() as u64;
                        targets.extend(list.iter().map(|&w| w as u64));
                    }
                    offsets[n] = targets.len() as u64;
                    let xadj = s.heap.alloc_array(8, (n + 1) as u64);
                    let adjncy = s.heap.alloc_array(8, targets.len() as u64);
                    (Some((xadj, adjncy, offsets)), None)
                }
                Layout::Linked => {
                    // Array-of-structs edge list: one contiguous array of
                    // 32-byte edge records grouped by source vertex, plus a
                    // header array of (start, count) per vertex.
                    let total: usize = adj.iter().map(|l| l.len()).sum();
                    let records = s.heap.alloc_array(32, total as u64);
                    let headers = s.heap.alloc_array(16, n as u64);
                    let mut starts = vec![0u64; n];
                    let mut acc = 0u64;
                    for (v, l) in adj.iter().enumerate() {
                        starts[v] = acc;
                        acc += l.len() as u64;
                    }
                    let e = adj
                        .iter()
                        .enumerate()
                        .map(|(v, l)| {
                            (0..l.len())
                                .map(|k| records + (starts[v] + k as u64) * 32)
                                .collect()
                        })
                        .collect();
                    let _ = headers;
                    (None, Some(e))
                }
            };
        let arrays = Arrays {
            sigma: s.heap.alloc_array(8, n as u64),
            delta: s.heap.alloc_array(8, n as u64),
            depth: s.heap.alloc_array(8, n as u64),
        };

        let site_x = s.pcs.sites(2);
        let site_a = s.pcs.sites(2);
        let site_e = s.pcs.sites(2);
        let site_sig = s.pcs.site();
        let site_sigw = s.pcs.site();
        let site_del = s.pcs.site();
        let site_delw = s.pcs.site();
        let site_br = s.pcs.site();
        let xh = SemanticHints::indexed(T_XADJ);
        let ah = SemanticHints::indexed(T_ADJ);
        let eh = SemanticHints::link(T_EDGE, 0);

        // Rotate over a small root set so traversals recur within the
        // scaled-down phase (the paper's phases are 100x longer).
        let roots = [0usize, n / 2];
        let mut iter = 0usize;
        while !s.done() {
            let root = roots[iter % roots.len()];
            iter += 1;
            // Forward BFS accumulating path counts (sigma).
            let mut depth = vec![usize::MAX; n];
            let mut order = Vec::with_capacity(n);
            depth[root] = 0;
            let mut frontier = std::collections::VecDeque::from([root]);
            while let Some(v) = frontier.pop_front() {
                if s.done() {
                    return;
                }
                order.push(v);
                // Enumerate v's edges in the layout under test.
                for (k, &w) in adj[v].iter().enumerate() {
                    if s.done() {
                        return;
                    }
                    match self.layout {
                        Layout::Csr => {
                            let (xadj, adjncy, ref offsets) = *csr.as_ref().expect("csr storage");
                            let e = offsets[v] + k as u64;
                            if k == 0 {
                                s.hinted_load(
                                    site_x,
                                    xadj + (v as u64) * 8,
                                    regs::IDX,
                                    Some(regs::PTR),
                                    xh,
                                    e,
                                );
                            }
                            s.hinted_load(
                                site_a,
                                adjncy + e * 8,
                                regs::PTR,
                                Some(regs::IDX),
                                ah,
                                w as u64,
                            );
                        }
                        Layout::Linked => {
                            let ea = linked.as_ref().expect("linked storage")[v][k];
                            s.hinted_load(site_e, ea, regs::PTR, Some(regs::PTR), eh, w as u64);
                        }
                    }
                    // sigma[w] += sigma[v]; depth bookkeeping.
                    s.em.load(
                        site_sig,
                        arrays.sigma + (w as u64) * 8,
                        regs::VAL,
                        Some(regs::PTR),
                        None,
                        1,
                    );
                    s.em.store(
                        site_sigw,
                        arrays.sigma + (w as u64) * 8,
                        Some(regs::PTR),
                        Some(regs::VAL),
                    );
                    s.em.branch(site_br, depth[w] == usize::MAX, site_a, Some(regs::VAL));
                    if depth[w] == usize::MAX {
                        depth[w] = depth[v] + 1;
                        s.em.store(
                            site_delw,
                            arrays.depth + (w as u64) * 8,
                            Some(regs::PTR),
                            Some(regs::VAL),
                        );
                        frontier.push_back(w);
                    }
                }
            }
            // Backward dependency accumulation over the BFS order.
            for &v in order.iter().rev() {
                if s.done() {
                    return;
                }
                s.em.load(
                    site_del,
                    arrays.delta + (v as u64) * 8,
                    regs::TMP,
                    Some(regs::PTR),
                    None,
                    0,
                );
                s.em.alu_long(site_del, 4, Some(regs::TMP), Some(regs::TMP)); // fp accumulate
                s.em.store(
                    site_delw,
                    arrays.delta + (v as u64) * 8,
                    Some(regs::PTR),
                    Some(regs::TMP),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::CountingSink;

    #[test]
    fn both_layouts_run_to_budget() {
        for k in [Ssca2::csr(), Ssca2::linked()] {
            let mut sink = CountingSink::with_limit(60_000);
            k.run(&mut sink);
            assert!(sink.total >= 60_000, "{} stalled", k.name());
            assert!(sink.stores > 0);
        }
    }

    #[test]
    fn names_differ_per_layout() {
        assert_eq!(Ssca2::csr().name(), "ssca2");
        assert_eq!(Ssca2::linked().name(), "ssca2-list");
    }
}
