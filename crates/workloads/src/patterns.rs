//! Reusable access-pattern building blocks shared by the kernels.
//!
//! These execute *real* traversals over simulated structures: a
//! [`LinkedChain`] owns actual node addresses from the session heap; its
//! traversal emits the same dependent-load chains, payload touches, filler
//! work and loop branches a compiled traversal would.

use rand::seq::SliceRandom;

use semloc_trace::{Addr, SemanticHints};

use crate::object::Session;

/// Register conventions used by the pattern helpers.
pub mod regs {
    use semloc_trace::Reg;
    /// Current node / pointer register.
    pub const PTR: Reg = Reg(1);
    /// Loaded payload value.
    pub const VAL: Reg = Reg(2);
    /// Induction/index register.
    pub const IDX: Reg = Reg(3);
    /// Secondary data register.
    pub const TMP: Reg = Reg(4);
    /// Search key register.
    pub const KEY: Reg = Reg(5);
}

/// Code sites for one traversal loop.
#[derive(Clone, Copy, Debug)]
pub struct LoopSites {
    /// Site of the link-following (hinted) load.
    pub link: Addr,
    /// Site of the payload load.
    pub payload: Addr,
    /// Site of the filler ALU work.
    pub work: Addr,
    /// Site of the loop branch.
    pub branch: Addr,
}

impl LoopSites {
    /// Allocate a fresh set of loop sites from the session's PC allocator.
    pub fn alloc(s: &mut Session<'_>) -> Self {
        LoopSites {
            link: s.pcs.sites(2),
            payload: s.pcs.site(),
            work: s.pcs.site(),
            branch: s.pcs.site(),
        }
    }
}

/// A linked chain of heap objects in a fixed traversal order.
///
/// Offset 0 of each node holds the `next` pointer; offset 8 holds the
/// payload.
#[derive(Clone, Debug)]
pub struct LinkedChain {
    /// Node addresses in traversal order.
    pub nodes: Vec<Addr>,
    /// Object type id used for semantic hints.
    pub type_id: u16,
}

/// Offset of the `next` link within a chain node.
pub const NEXT_OFFSET: u16 = 0;
/// Offset of the payload within a chain node.
pub const PAYLOAD_OFFSET: u64 = 8;

impl LinkedChain {
    /// Allocate `n` nodes of `node_size` bytes; traversal order equals
    /// allocation order (spatial order is the placement policy's business).
    pub fn build(s: &mut Session<'_>, n: usize, node_size: u64, type_id: u16) -> Self {
        assert!(n >= 2 && node_size >= 16);
        let nodes = (0..n).map(|_| s.heap.alloc(node_size)).collect();
        LinkedChain { nodes, type_id }
    }

    /// Like [`LinkedChain::build`], but the traversal order is a random
    /// permutation of the allocation order — semantic order fully decoupled
    /// from spatial order (the Fig 1 regime).
    pub fn build_shuffled(s: &mut Session<'_>, n: usize, node_size: u64, type_id: u16) -> Self {
        let mut chain = Self::build(s, n, node_size, type_id);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut s.rng);
        chain.nodes = order.into_iter().map(|i| chain.nodes[i]).collect();
        chain
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// One full traversal lap: per node, the hinted `next` load (dependent
    /// on the current pointer), a payload load, `work` filler ALU ops and
    /// the loop branch. Stops early when the sink is done.
    pub fn traverse(&self, s: &mut Session<'_>, sites: LoopSites, work: u32) {
        let hints = SemanticHints::link(self.type_id, NEXT_OFFSET);
        for i in 0..self.nodes.len() {
            if s.done() {
                return;
            }
            let node = self.nodes[i];
            let next = self.nodes[(i + 1) % self.nodes.len()];
            s.hinted_load(
                sites.link,
                node + NEXT_OFFSET as u64,
                regs::PTR,
                Some(regs::PTR),
                hints,
                next,
            );
            s.em.load(
                sites.payload,
                node + PAYLOAD_OFFSET,
                regs::VAL,
                Some(regs::PTR),
                None,
                node ^ 0x5a,
            );
            s.em.work(sites.work, work);
            s.em.branch(
                sites.branch,
                i + 1 != self.nodes.len(),
                sites.link,
                Some(regs::VAL),
            );
        }
    }
}

/// One sequential/strided scan over an array of `elems` elements of
/// `elem_size` bytes at `base`: indexed loads with `Index` hints, `work`
/// filler ops per element.
#[allow(clippy::too_many_arguments)]
pub fn stream(
    s: &mut Session<'_>,
    sites: LoopSites,
    base: Addr,
    elems: u64,
    elem_size: u64,
    stride: u64,
    type_id: u16,
    work: u32,
) {
    let hints = SemanticHints::indexed(type_id);
    let mut i = 0u64;
    while i < elems {
        if s.done() {
            return;
        }
        let addr = base + i * elem_size;
        s.em.alu(sites.work, Some(regs::IDX), Some(regs::IDX), None, i);
        s.hinted_load(
            sites.link,
            addr,
            regs::VAL,
            Some(regs::IDX),
            hints,
            addr ^ 1,
        );
        s.em.work(sites.work, work);
        s.em.branch(
            sites.branch,
            i + stride < elems,
            sites.link,
            Some(regs::IDX),
        );
        i += stride;
    }
}

/// An indexed gather `data[idx]` for each index produced by `indices`:
/// loads the index from an index array, then the dependent data element.
#[allow(clippy::too_many_arguments)]
pub fn gather(
    s: &mut Session<'_>,
    sites: LoopSites,
    index_base: Addr,
    data_base: Addr,
    elem_size: u64,
    indices: &[u64],
    type_id: u16,
    work: u32,
) {
    let hints = SemanticHints::indexed(type_id);
    for (i, &idx) in indices.iter().enumerate() {
        if s.done() {
            return;
        }
        s.em.load(
            sites.payload,
            index_base + (i as u64) * 8,
            regs::IDX,
            None,
            None,
            idx,
        );
        s.hinted_load(
            sites.link,
            data_base + idx * elem_size,
            regs::VAL,
            Some(regs::IDX),
            hints,
            idx,
        );
        s.em.work(sites.work, work);
        s.em.branch(
            sites.branch,
            i + 1 != indices.len(),
            sites.link,
            Some(regs::VAL),
        );
    }
}

/// A five-point 2-D stencil sweep over a `rows`×`cols` grid of 8-byte
/// cells — the regular, bandwidth-bound pattern of lattice codes.
pub fn stencil5(
    s: &mut Session<'_>,
    sites: LoopSites,
    base: Addr,
    rows: u64,
    cols: u64,
    work: u32,
) {
    // No semantic hints here: §6 injects hints only for loads that produce
    // pointer values, and a stencil reads plain array data. The prefetcher
    // must handle it from hardware attributes alone.
    for r in 1..rows.saturating_sub(1) {
        for c in 1..cols.saturating_sub(1) {
            if s.done() {
                return;
            }
            let at = |rr: u64, cc: u64| base + (rr * cols + cc) * 8;
            s.em.load(sites.link, at(r, c), regs::VAL, Some(regs::IDX), None, 0);
            s.em.load(
                sites.payload,
                at(r - 1, c),
                regs::TMP,
                Some(regs::IDX),
                None,
                0,
            );
            s.em.load(
                sites.payload,
                at(r + 1, c),
                regs::TMP,
                Some(regs::IDX),
                None,
                0,
            );
            s.em.load(
                sites.payload,
                at(r, c - 1),
                regs::TMP,
                Some(regs::IDX),
                None,
                0,
            );
            s.em.load(
                sites.payload,
                at(r, c + 1),
                regs::TMP,
                Some(regs::IDX),
                None,
                0,
            );
            s.em.work(sites.work, work);
            s.em.store(sites.branch, at(r, c), Some(regs::IDX), Some(regs::VAL));
            s.em.branch(sites.branch, c + 2 < cols, sites.link, Some(regs::VAL));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::{InstrKind, Placement, RecordingSink};

    fn with_session<R>(f: impl FnOnce(&mut Session<'_>) -> R) -> (R, Vec<semloc_trace::Instr>) {
        let mut sink = RecordingSink::new();
        let r = {
            let mut s = Session::new(&mut sink, 0, Placement::Scatter, 7);
            f(&mut s)
        };
        (r, sink.into_instrs())
    }

    #[test]
    fn chain_traversal_chases_pointers_dependently() {
        let (chain, instrs) = with_session(|s| {
            let chain = LinkedChain::build_shuffled(s, 16, 32, 3);
            let sites = LoopSites::alloc(s);
            chain.traverse(s, sites, 2);
            chain
        });
        let loads: Vec<_> = instrs
            .iter()
            .filter_map(|i| match i.kind {
                InstrKind::Load {
                    addr,
                    hints: Some(_),
                    ..
                } => Some((addr, i.result)),
                _ => None,
            })
            .collect();
        assert_eq!(loads.len(), 16);
        // Each hinted link load's result is the next node visited.
        for w in loads.windows(2) {
            assert_eq!(w[0].1, w[1].0, "link value must be the next node address");
        }
        // And the traversal covers every node exactly once per lap.
        let visited: std::collections::BTreeSet<u64> = loads.iter().map(|&(a, _)| a).collect();
        assert_eq!(visited.len(), chain.len());
    }

    #[test]
    fn shuffled_chain_has_low_spatial_order() {
        let (chain, _) = with_session(|s| LinkedChain::build_shuffled(s, 256, 32, 3));
        let ordered = chain
            .nodes
            .windows(2)
            .filter(|w| w[1] > w[0] && w[1] - w[0] <= 64)
            .count();
        assert!(ordered < 64, "{ordered} of 255 steps are near-sequential");
    }

    #[test]
    fn stream_touches_every_strided_element() {
        let (_, instrs) = with_session(|s| {
            let base = s.heap.alloc_array(8, 64);
            let sites = LoopSites::alloc(s);
            stream(s, sites, base, 64, 8, 2, 1, 1);
        });
        let hinted = instrs
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Load { hints: Some(_), .. }))
            .count();
        assert_eq!(hinted, 32);
    }

    #[test]
    fn gather_loads_index_then_data() {
        let (_, instrs) = with_session(|s| {
            let idx = s.heap.alloc_array(8, 8);
            let data = s.heap.alloc_array(8, 100);
            let sites = LoopSites::alloc(s);
            gather(s, sites, idx, data, 8, &[5, 99, 0, 42], 2, 0);
        });
        let loads = instrs
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Load { .. }))
            .count();
        assert_eq!(loads, 8, "one index load + one data load per element");
    }

    #[test]
    fn stencil_emits_five_loads_per_cell() {
        let (_, instrs) = with_session(|s| {
            let base = s.heap.alloc_array(8, 16 * 16);
            let sites = LoopSites::alloc(s);
            stencil5(s, sites, base, 4, 4, 0);
        });
        let loads = instrs
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Load { .. }))
            .count();
        let stores = instrs
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Store { .. }))
            .count();
        let nops = instrs
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Nop))
            .count();
        assert_eq!(loads, 4 * 5, "4 interior cells x 5 loads");
        assert_eq!(stores, 4);
        assert_eq!(nops, 0, "array stencils carry no hint NOPs (§6)");
    }

    #[test]
    fn traversal_respects_sink_budget() {
        let mut sink = RecordingSink::with_limit(40);
        {
            let mut s = Session::new(&mut sink, 0, Placement::Bump, 1);
            let chain = LinkedChain::build(&mut s, 1000, 32, 1);
            let sites = LoopSites::alloc(&mut s);
            chain.traverse(&mut s, sites, 1);
        }
        assert!(sink.instrs().len() <= 46, "stops promptly after the budget");
    }
}
