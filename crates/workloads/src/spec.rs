//! SPEC CPU2006 proxy kernels (Table 3).
//!
//! The paper evaluated 16 SPEC CPU2006 benchmarks compiled with its
//! modified clang. Binaries and reference inputs cannot be redistributed
//! here, so each benchmark is replaced by a *proxy kernel* that reproduces
//! its dominant steady-state access structure (see `DESIGN.md` for the
//! substitution table). Proxies are composed from the shared pattern
//! builders: strided streams, index gathers (recurring or fresh),
//! pointer-chases over scattered heaps, 2-D grids and hash probes, each
//! with a benchmark-specific mix of filler work and branches — so the
//! *classes* the paper's evaluation distinguishes (regular, irregular,
//! lookup-dominated, compute-bound) are all represented.

use rand::RngExt;

use semloc_trace::{Placement, SemanticHints, TraceSink};

use crate::object::Session;
use crate::patterns::{self, regs, LinkedChain, LoopSites};
use crate::{Kernel, Suite};

const T_STREAM: u16 = 50;
const T_GATHER: u16 = 51;
const T_NODE: u16 = 52;
const T_PROBE: u16 = 53;

/// One strided stream phase.
#[derive(Clone, Debug)]
struct StreamCfg {
    elems: u64,
    stride: u64,
    work: u32,
}

/// One gather phase (`data[idx[i]]`).
#[derive(Clone, Debug)]
struct GatherCfg {
    data_elems: u64,
    indices: usize,
    /// Reuse the same index sequence every lap (temporal recurrence) or
    /// redraw it (pure noise).
    recurring: bool,
    work: u32,
}

/// One pointer-chase phase over a scattered linked chain. Nodes are
/// allocated in traversal order (lists grow by appending) and scrambled
/// within heap slabs by the placement policy.
#[derive(Clone, Debug)]
struct ChaseCfg {
    nodes: usize,
    node_size: u64,
    work: u32,
}

/// One 2-D stencil phase.
#[derive(Clone, Debug)]
struct GridCfg {
    rows: u64,
    cols: u64,
    work: u32,
}

/// One hash-probe phase (random single lookups in a large table).
#[derive(Clone, Debug)]
struct ProbeCfg {
    entries: u64,
    probes: usize,
    work: u32,
}

/// A SPEC proxy: a named composition of pattern phases.
#[derive(Clone, Debug)]
pub struct SpecProxy {
    name: &'static str,
    region: u32,
    placement: Placement,
    seed: u64,
    streams: Vec<StreamCfg>,
    gathers: Vec<GatherCfg>,
    chases: Vec<ChaseCfg>,
    grids: Vec<GridCfg>,
    probes: Vec<ProbeCfg>,
}

impl SpecProxy {
    fn new(name: &'static str, region: u32, placement: Placement, seed: u64) -> Self {
        SpecProxy {
            name,
            region,
            placement,
            seed,
            streams: Vec::new(),
            gathers: Vec::new(),
            chases: Vec::new(),
            grids: Vec::new(),
            probes: Vec::new(),
        }
    }

    fn stream(mut self, elems: u64, stride: u64, work: u32) -> Self {
        self.streams.push(StreamCfg {
            elems,
            stride,
            work,
        });
        self
    }

    fn gather(mut self, data_elems: u64, indices: usize, recurring: bool, work: u32) -> Self {
        self.gathers.push(GatherCfg {
            data_elems,
            indices,
            recurring,
            work,
        });
        self
    }

    fn chase(mut self, nodes: usize, node_size: u64, work: u32) -> Self {
        self.chases.push(ChaseCfg {
            nodes,
            node_size,
            work,
        });
        self
    }

    fn grid(mut self, rows: u64, cols: u64, work: u32) -> Self {
        self.grids.push(GridCfg { rows, cols, work });
        self
    }

    fn probe(mut self, entries: u64, probes: usize, work: u32) -> Self {
        self.probes.push(ProbeCfg {
            entries,
            probes,
            work,
        });
        self
    }
}

impl Kernel for SpecProxy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, self.region, self.placement.clone(), self.seed);

        // Materialize all phase state up front (the benchmark's init).
        let streams: Vec<(u64, LoopSites, &StreamCfg)> = self
            .streams
            .iter()
            .map(|c| {
                let base = s.heap.alloc_array(8, c.elems);
                let sites = LoopSites::alloc(&mut s);
                (base, sites, c)
            })
            .collect();
        let gathers: Vec<(u64, u64, Vec<u64>, LoopSites, &GatherCfg)> = self
            .gathers
            .iter()
            .map(|c| {
                let idx_base = s.heap.alloc_array(8, c.indices as u64);
                let data_base = s.heap.alloc_array(8, c.data_elems);
                let idx: Vec<u64> = (0..c.indices)
                    .map(|_| s.rng.random_range(0..c.data_elems))
                    .collect();
                let sites = LoopSites::alloc(&mut s);
                (idx_base, data_base, idx, sites, c)
            })
            .collect();
        let chases: Vec<(LinkedChain, LoopSites, &ChaseCfg)> = self
            .chases
            .iter()
            .map(|c| {
                let chain = LinkedChain::build(&mut s, c.nodes, c.node_size, T_NODE);
                let sites = LoopSites::alloc(&mut s);
                (chain, sites, c)
            })
            .collect();
        let grids: Vec<(u64, LoopSites, &GridCfg)> = self
            .grids
            .iter()
            .map(|c| {
                let base = s.heap.alloc_array(8, c.rows * c.cols);
                let sites = LoopSites::alloc(&mut s);
                (base, sites, c)
            })
            .collect();
        let probes: Vec<(u64, LoopSites, &ProbeCfg)> = self
            .probes
            .iter()
            .map(|c| {
                let base = s.heap.alloc_array(8, c.entries);
                let sites = LoopSites::alloc(&mut s);
                (base, sites, c)
            })
            .collect();

        // Steady state: round-robin over the phases.
        let probe_hints = SemanticHints::indexed(T_PROBE);
        while !s.done() {
            for &(base, sites, c) in &streams {
                patterns::stream(&mut s, sites, base, c.elems, 8, c.stride, T_STREAM, c.work);
                if s.done() {
                    return;
                }
            }
            for (idx_base, data_base, idx, sites, c) in &gathers {
                let fresh;
                let seq: &[u64] = if c.recurring {
                    idx
                } else {
                    fresh = (0..c.indices)
                        .map(|_| s.rng.random_range(0..c.data_elems))
                        .collect::<Vec<u64>>();
                    &fresh
                };
                patterns::gather(
                    &mut s, *sites, *idx_base, *data_base, 8, seq, T_GATHER, c.work,
                );
                if s.done() {
                    return;
                }
            }
            for (chain, sites, c) in &chases {
                chain.traverse(&mut s, *sites, c.work);
                if s.done() {
                    return;
                }
            }
            for &(base, sites, c) in &grids {
                patterns::stencil5(&mut s, sites, base, c.rows, c.cols, c.work);
                if s.done() {
                    return;
                }
            }
            for &(base, sites, c) in &probes {
                for _ in 0..c.probes {
                    if s.done() {
                        return;
                    }
                    let slot: u64 = s.rng.random_range(0..c.entries);
                    s.em.alu(sites.work, Some(regs::KEY), None, None, slot);
                    s.hinted_load(
                        sites.link,
                        base + slot * 8,
                        regs::VAL,
                        Some(regs::KEY),
                        probe_hints,
                        slot,
                    );
                    s.em.work(sites.work, c.work);
                    s.em.branch(sites.branch, slot & 1 == 0, sites.link, Some(regs::VAL));
                }
            }
        }
    }
}

/// The 16 SPEC CPU2006 proxies the paper evaluates, in Table 3 order.
pub fn all_spec_proxies() -> Vec<SpecProxy> {
    use Placement::{Bump, Pools, Scatter};
    vec![
        // Game-tree search: dominated by transposition-table probes and
        // compute; modest memory sensitivity.
        SpecProxy::new("sjeng", 40, Bump, 101).probe(512 * 1024, 64, 12),
        // Ray tracer: small hot structures, heavy fp work, some pointer
        // lists per object.
        SpecProxy::new("povray", 41, Pools, 102)
            .chase(256, 64, 20)
            .stream(2048, 1, 16),
        // Sparse LP simplex: CSR-style gathers over big matrices.
        SpecProxy::new("soplex", 42, Bump, 103)
            .gather(512 * 1024, 4096, true, 2)
            .stream(65536, 1, 2),
        // FEM: sparse matvec with denser rows + local dense blocks.
        SpecProxy::new("dealII", 43, Bump, 104)
            .gather(256 * 1024, 2048, true, 4)
            .stream(16384, 1, 6),
        // Video encoder: 2-D block motion search.
        SpecProxy::new("h264ref", 44, Bump, 105)
            .grid(256, 256, 4)
            .stream(8192, 1, 8),
        // Go engine: board scans + chain following, very branchy.
        SpecProxy::new("gobmk", 45, Pools, 106)
            .probe(8192, 32, 8)
            .chase(512, 32, 6),
        // Profile HMM search: banded DP over sequential arrays.
        SpecProxy::new("hmmer", 46, Bump, 107)
            .stream(32768, 1, 10)
            .stream(32768, 1, 10),
        // Compressor: permutation-indexed accesses over a block.
        SpecProxy::new("bzip2", 47, Bump, 108).gather(128 * 1024, 8192, false, 3),
        // Lattice QCD: long regular sweeps, little reuse.
        SpecProxy::new("milc", 48, Bump, 109)
            .grid(128, 512, 2)
            .stream(262144, 2, 1),
        // Molecular dynamics: recurring neighbor-list gathers.
        SpecProxy::new("namd", 49, Bump, 110).gather(65536, 8192, true, 6),
        // Discrete-event sim: event objects churned on a scattered heap.
        SpecProxy::new("omnetpp", 50, Scatter, 111)
            .chase(2048, 64, 4)
            .gather(16384, 512, false, 2),
        // Pathfinding: open-list + grid-neighbor mix.
        SpecProxy::new("astar", 51, Pools, 112)
            .grid(128, 128, 3)
            .chase(1024, 48, 3)
            .gather(32768, 1024, false, 2),
        // Quantum simulator: strided sweeps over a huge bit vector.
        SpecProxy::new("libquantum", 52, Bump, 113).stream(1 << 19, 4, 1),
        // Network simplex: the heaviest pointer-chaser in the suite.
        SpecProxy::new("mcf", 53, Scatter, 114)
            .chase(2048, 128, 2)
            .chase(1024, 256, 3),
        // Speech recognition: streaming scoring + senone block gathers.
        SpecProxy::new("sphinx3", 54, Bump, 115)
            .stream(65536, 1, 3)
            .gather(65536, 2048, true, 3),
        // Lattice-Boltzmann: wide stencil streams with stores.
        SpecProxy::new("lbm", 55, Bump, 116).grid(256, 384, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::CountingSink;

    #[test]
    fn sixteen_proxies_matching_table3() {
        let names: Vec<&str> = all_spec_proxies().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 16);
        for expected in [
            "sjeng",
            "povray",
            "soplex",
            "dealII",
            "h264ref",
            "gobmk",
            "hmmer",
            "bzip2",
            "milc",
            "namd",
            "omnetpp",
            "astar",
            "libquantum",
            "mcf",
            "sphinx3",
            "lbm",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), 16, "duplicate names");
    }

    #[test]
    fn every_proxy_runs_to_budget() {
        for p in all_spec_proxies() {
            let mut sink = CountingSink::with_limit(30_000);
            p.run(&mut sink);
            assert!(
                sink.total >= 30_000,
                "{} stalled at {}",
                p.name(),
                sink.total
            );
        }
    }

    #[test]
    fn memory_intensity_varies_across_the_suite() {
        let mut fractions = Vec::new();
        for p in all_spec_proxies() {
            let mut sink = CountingSink::with_limit(30_000);
            p.run(&mut sink);
            fractions.push(sink.mem_fraction());
        }
        let min = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fractions.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "suite too homogeneous: {min:.2}..{max:.2}");
    }

    #[test]
    fn mcf_is_pointer_chasing_dominated() {
        let mcf = all_spec_proxies()
            .into_iter()
            .find(|p| p.name() == "mcf")
            .unwrap();
        let mut sink = CountingSink::with_limit(30_000);
        mcf.run(&mut sink);
        assert!(sink.mem_fraction() > 0.3);
    }
}
