//! Benchmark kernels for the semloc evaluation (Table 3 of the paper).
//!
//! Every workload is a [`Kernel`]: a deterministic, seeded generator that
//! *executes its algorithm for real* over a simulated
//! [`AddressSpace`](semloc_trace::AddressSpace) while pushing the resulting
//! dynamic instruction stream into a [`TraceSink`] (usually the
//! out-of-order core model). Kernels loop their steady-state phase until
//! the sink's instruction budget is exhausted, mirroring the paper's
//! steady-state simulation phases (§6).
//!
//! Suites reproduced:
//!
//! * **µkernels** — the paper's microbenchmarks: linked list, array, list
//!   insertion sort (Fig 1), binary search tree, Prim's MST, hash-table and
//!   ordered-map probing, and the linked SSCA variant (`SSCA_LDS`).
//! * **Graph500** — BFS over a generated graph, in CSR *and* linked-list
//!   layouts (the Fig 14 layout-agnostic experiment).
//! * **HPCS SSCA2** — the betweenness-centrality kernel, CSR and list
//!   variants.
//! * **PBBS** — suffix array, set cover, k-nearest-neighbors proxies.
//! * **SPEC CPU2006 proxies** — sixteen synthetic kernels, one per
//!   benchmark the paper evaluated, each reproducing that benchmark's
//!   dominant memory-access pattern (see `spec` module docs and the
//!   substitution table in `DESIGN.md`).

pub mod adversarial;
pub mod compose;
pub mod graph500;
pub mod object;
pub mod patterns;
pub mod pbbs;
pub mod registry;
pub mod replay;
pub mod spec;
pub mod ssca2;
pub mod ukernels;

pub use adversarial::{
    adversarial_by_name, adversarial_kernels, AliasChains, PhaseFlip, RewardStraddle,
};
pub use compose::{ComposedKernel, Composer, Phase};
pub use object::Session;
pub use registry::{
    all_kernels, kernel_by_name, memory_intensive, microbenchmarks, spec_suite, KernelBox,
    KernelInfo,
};
pub use replay::{capture_kernel, CapturedTrace, ReplayKernel};

use semloc_trace::TraceSink;

/// The benchmark suite a kernel belongs to (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// SPEC CPU2006 proxy.
    Spec,
    /// PBBS problem-based benchmark.
    Pbbs,
    /// Graph500 BFS.
    Graph500,
    /// HPCS SSCA2.
    Hpcs,
    /// µkernel (algorithms and data-structure traversals).
    Micro,
}

impl Suite {
    /// Display label matching Table 3.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Spec => "SPEC CPU2006",
            Suite::Pbbs => "PBBS",
            Suite::Graph500 => "Graph500",
            Suite::Hpcs => "HPCS",
            Suite::Micro => "ukernels",
        }
    }
}

/// A runnable benchmark kernel.
///
/// The `Debug` supertrait doubles as the kernel's *configuration identity*:
/// every kernel is a plain struct whose derived `Debug` output spells out
/// its name and every configuration field (layout, sizes, seed), so
/// [`Kernel::trace_key`] distinguishes two instances of the same kernel
/// type with different parameters.
pub trait Kernel: std::fmt::Debug {
    /// Unique name (e.g. `"mcf"`, `"graph500-list"`).
    fn name(&self) -> &'static str;

    /// Originating suite.
    fn suite(&self) -> Suite;

    /// Execute the kernel, pushing instructions into `sink` until the
    /// kernel finishes or `sink.done()` turns true. Deterministic for a
    /// fixed kernel configuration.
    fn run(&self, sink: &mut dyn TraceSink);

    /// A string that uniquely identifies the instruction stream this kernel
    /// produces — used as the cache key by the trace store. The default
    /// (the derived `Debug` rendering) covers every configuration field, so
    /// two differently-parameterized instances never collide.
    fn trace_key(&self) -> String {
        format!("{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_labels_are_unique() {
        let all = [
            Suite::Spec,
            Suite::Pbbs,
            Suite::Graph500,
            Suite::Hpcs,
            Suite::Micro,
        ];
        let set: std::collections::BTreeSet<_> = all.iter().map(|s| s.label()).collect();
        assert_eq!(set.len(), all.len());
    }
}
