//! PBBS (Problem Based Benchmark Suite) kernels used by the paper:
//! `suffixArray`, `setCover` and `KNN` (Table 3). Each implements the
//! algorithm's characteristic data-access structure at reduced scale.

use rand::RngExt;

use semloc_trace::{Placement, SemanticHints, TraceSink};

use crate::object::Session;
use crate::patterns::{regs, LoopSites};
use crate::{Kernel, Suite};

const T_RANK: u16 = 41;
const T_SET: u16 = 42;
const T_ELEM: u16 = 43;
const T_POINT: u16 = 44;

/// Prefix-doubling suffix-array construction: repeated rank gathers at
/// `sa[i]` and `sa[i]+k` — index-dependent, semi-random reads over two
/// arrays.
#[derive(Clone, Debug)]
pub struct SuffixArray {
    /// Text length.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SuffixArray {
    fn default() -> Self {
        SuffixArray {
            n: 16 * 1024,
            seed: 91,
        }
    }
}

impl Kernel for SuffixArray {
    fn name(&self) -> &'static str {
        "suffixArray"
    }

    fn suite(&self) -> Suite {
        Suite::Pbbs
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 25, Placement::Bump, self.seed);
        let n = self.n;
        let rank_base = s.heap.alloc_array(8, n as u64);
        let sa_base = s.heap.alloc_array(8, n as u64);
        let text: Vec<u64> = (0..n).map(|_| s.rng.random_range(0..4u64)).collect();
        // Initial suffix order: sorted by first character (deterministic).
        let mut sa: Vec<usize> = (0..n).collect();
        sa.sort_by_key(|&i| text[i]);

        let sites_sa = LoopSites::alloc(&mut s);
        let site_r1 = s.pcs.sites(2);
        let site_r2 = s.pcs.sites(2);
        let site_cmp = s.pcs.site();
        let rh = SemanticHints::indexed(T_RANK);
        while !s.done() {
            let mut k = 1usize;
            while k < n && !s.done() {
                // One prefix-doubling pass: for each position in sa order,
                // gather rank[sa[i]] and rank[sa[i]+k].
                for (i, &p) in sa.iter().enumerate() {
                    if s.done() {
                        return;
                    }
                    s.em.load(
                        sites_sa.payload,
                        sa_base + (i as u64) * 8,
                        regs::IDX,
                        None,
                        None,
                        p as u64,
                    );
                    s.hinted_load(
                        site_r1,
                        rank_base + (p as u64) * 8,
                        regs::VAL,
                        Some(regs::IDX),
                        rh,
                        text[p],
                    );
                    let q = (p + k) % n;
                    s.hinted_load(
                        site_r2,
                        rank_base + (q as u64) * 8,
                        regs::TMP,
                        Some(regs::IDX),
                        rh,
                        text[q],
                    );
                    s.em.alu(
                        site_cmp,
                        Some(regs::VAL),
                        Some(regs::VAL),
                        Some(regs::TMP),
                        0,
                    );
                    s.em.branch(site_cmp, i + 1 != n, site_r1, Some(regs::VAL));
                }
                k *= 2;
            }
        }
    }
}

/// Greedy set cover: scan a bucketed list of sets by (decreasing) size,
/// walking each set's element chain and checking coverage flags.
#[derive(Clone, Debug)]
pub struct SetCover {
    /// Number of sets.
    pub sets: usize,
    /// Universe size.
    pub universe: usize,
    /// Average set cardinality.
    pub card: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SetCover {
    fn default() -> Self {
        SetCover {
            sets: 1024,
            universe: 8192,
            card: 8,
            seed: 92,
        }
    }
}

impl Kernel for SetCover {
    fn name(&self) -> &'static str {
        "setCover"
    }

    fn suite(&self) -> Suite {
        Suite::Pbbs
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 26, Placement::Scatter, self.seed);
        // Each set: a header object + a chain of element objects.
        let headers: Vec<u64> = (0..self.sets).map(|_| s.heap.alloc(32)).collect();
        let members: Vec<Vec<(u64, usize)>> = (0..self.sets)
            .map(|_| {
                (0..self.card)
                    .map(|_| (s.heap.alloc(24), s.rng.random_range(0..self.universe)))
                    .collect()
            })
            .collect();
        let covered_base = s.heap.alloc_array(1, self.universe as u64);
        let site_hdr = s.pcs.sites(2);
        let site_elem = s.pcs.sites(2);
        let site_cov = s.pcs.site();
        let site_covw = s.pcs.site();
        let site_br = s.pcs.site();
        let hh = SemanticHints::link(T_SET, 8);
        let eh = SemanticHints::link(T_ELEM, 0);
        while !s.done() {
            let mut covered = vec![false; self.universe];
            // Greedy passes: scan all sets, take any set contributing new
            // elements (bucketed greedy approximation used by PBBS).
            for round in 0..4 {
                for (si, hdr) in headers.iter().enumerate() {
                    if s.done() {
                        return;
                    }
                    let chain = &members[si];
                    let head = chain.first().map_or(0, |&(a, _)| a);
                    s.hinted_load(site_hdr, hdr + 8, regs::PTR, Some(regs::PTR), hh, head);
                    let mut gain = 0u64;
                    for (k, &(ea, elem)) in chain.iter().enumerate() {
                        if s.done() {
                            return;
                        }
                        let next = chain.get(k + 1).map_or(0, |&(a, _)| a);
                        s.hinted_load(site_elem, ea, regs::PTR, Some(regs::PTR), eh, next);
                        s.em.load(
                            site_cov,
                            covered_base + elem as u64,
                            regs::VAL,
                            Some(regs::PTR),
                            None,
                            covered[elem] as u64,
                        );
                        if !covered[elem] {
                            gain += 1;
                        }
                        s.em.branch(site_br, !covered[elem], site_elem, Some(regs::VAL));
                    }
                    // Take the set if it still contributes enough.
                    if gain as usize * (round + 2) >= self.card {
                        for &(_, elem) in chain {
                            covered[elem] = true;
                            s.em.store(
                                site_covw,
                                covered_base + elem as u64,
                                Some(regs::PTR),
                                Some(regs::VAL),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// k-nearest-neighbors over a grid decomposition: points bucketed into
/// cells; per query, scan the 3×3 neighborhood cells' point lists.
#[derive(Clone, Debug)]
pub struct Knn {
    /// Number of points.
    pub points: usize,
    /// Grid side (cells).
    pub grid: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Knn {
    fn default() -> Self {
        Knn {
            points: 8192,
            grid: 32,
            seed: 93,
        }
    }
}

impl Kernel for Knn {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn suite(&self) -> Suite {
        Suite::Pbbs
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        let mut s = Session::new(sink, 27, Placement::Pools, self.seed);
        let g = self.grid;
        // Points bucketed into cells; each cell's points are contiguous-ish
        // (pool placement) but cells interleave.
        let mut cells: Vec<Vec<u64>> = vec![Vec::new(); g * g];
        for _ in 0..self.points {
            let c = s.rng.random_range(0..g * g);
            cells[c].push(s.heap.alloc(32));
        }
        let cell_base = s.heap.alloc_array(8, (g * g) as u64);
        let site_cell = s.pcs.sites(2);
        let sites_pt = LoopSites::alloc(&mut s);
        let ch = SemanticHints::indexed(T_SET);
        let ph = SemanticHints::deref(T_POINT);
        while !s.done() {
            let qx = s.rng.random_range(1..g - 1);
            let qy = s.rng.random_range(1..g - 1);
            for dy in 0..3usize {
                for dx in 0..3usize {
                    if s.done() {
                        return;
                    }
                    let c = (qy + dy - 1) * g + (qx + dx - 1);
                    let head = cells[c].first().copied().unwrap_or(0);
                    s.hinted_load(
                        site_cell,
                        cell_base + (c as u64) * 8,
                        regs::PTR,
                        Some(regs::IDX),
                        ch,
                        head,
                    );
                    for &p in &cells[c] {
                        if s.done() {
                            return;
                        }
                        s.hinted_load(sites_pt.link, p, regs::VAL, Some(regs::PTR), ph, 0);
                        s.em.load(sites_pt.payload, p + 8, regs::TMP, Some(regs::PTR), None, 0);
                        s.em.work(sites_pt.work, 4); // distance computation
                        s.em.branch(sites_pt.branch, true, sites_pt.link, Some(regs::TMP));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::CountingSink;

    #[test]
    fn all_pbbs_kernels_run_to_budget() {
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(SuffixArray::default()),
            Box::new(SetCover::default()),
            Box::new(Knn::default()),
        ];
        for k in kernels {
            let mut sink = CountingSink::with_limit(60_000);
            k.run(&mut sink);
            assert!(
                sink.total >= 60_000,
                "{} stalled at {}",
                k.name(),
                sink.total
            );
            assert!(sink.mem_fraction() > 0.2, "{} too compute-bound", k.name());
        }
    }
}
