//! Workload composer: multi-phase schedules stitched from captured traces.
//!
//! A [`ComposedKernel`] replays a sequence of [`Phase`]s — each an exact
//! instruction count taken from the front of an already-captured kernel
//! stream — so a single core can switch workloads mid-run (mcf→lbm→hash)
//! without ever re-running a generator. Because every phase replays a
//! prefix of its source capture, the composed stream inherits the
//! record-once/replay-many prefix property: a composed capture at budget B
//! serves every budget ≤ B, and the same schedule is bit-identical no
//! matter which sink drives it.
//!
//! The seeded [`Composer`] draws schedules from a menu of captures; the
//! multi-core engine assigns one schedule per core (phase changes,
//! co-running antagonists) and the adversarial search mutates composer
//! parameters between forks.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semloc_trace::TraceSink;

use crate::replay::CapturedTrace;
use crate::{Kernel, Suite};

/// One schedule phase: exactly `instrs` instructions replayed from the
/// front of `source`.
#[derive(Clone)]
pub struct Phase {
    /// The captured stream this phase replays a prefix of.
    pub source: Arc<CapturedTrace>,
    /// Exact number of instructions this phase contributes.
    pub instrs: u64,
}

impl Phase {
    /// A phase replaying the first `instrs` instructions of `source`.
    /// Panics if the capture is shorter than the requested phase.
    pub fn new(source: Arc<CapturedTrace>, instrs: u64) -> Self {
        assert!(
            source.buf.len() as u64 >= instrs,
            "phase wants {} instrs but capture '{}' holds only {}",
            instrs,
            source.name,
            source.buf.len()
        );
        Phase { source, instrs }
    }
}

impl std::fmt::Debug for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.source.name, self.instrs)
    }
}

/// A schedule of phases replayed back to back as one kernel.
#[derive(Clone)]
pub struct ComposedKernel {
    name: &'static str,
    phases: Vec<Phase>,
}

impl ComposedKernel {
    /// Build a schedule from explicit phases.
    pub fn new(name: &'static str, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        ComposedKernel { name, phases }
    }

    /// The phases of this schedule.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total instructions across all phases.
    pub fn total_instrs(&self) -> u64 {
        self.phases.iter().map(|p| p.instrs).sum()
    }
}

impl std::fmt::Debug for ComposedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ComposedKernel[{}]{:?}", self.name, self.phases)
    }
}

impl Kernel for ComposedKernel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn suite(&self) -> Suite {
        Suite::Micro
    }

    fn run(&self, sink: &mut dyn TraceSink) {
        for phase in &self.phases {
            for (emitted, i) in phase.source.buf.iter().enumerate() {
                if sink.done() {
                    return;
                }
                if emitted as u64 == phase.instrs {
                    break;
                }
                sink.instr(i);
            }
        }
    }

    /// Identifies the schedule by every phase's *source key* (the source
    /// kernel's full configuration) and exact length, so two schedules
    /// collide only when they produce the same stream.
    fn trace_key(&self) -> String {
        let mut key = String::from("compose(");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                key.push('|');
            }
            key.push_str(&p.source.key);
            key.push('#');
            key.push_str(&p.instrs.to_string());
        }
        key.push(')');
        key
    }
}

/// Seeded schedule builder over a menu of captured traces.
pub struct Composer {
    rng: StdRng,
}

impl Composer {
    /// A composer whose draws are a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        Composer {
            rng: StdRng::seed_from_u64(seed ^ 0xc0_3e_05_ed),
        }
    }

    /// A phase-shift schedule: `phases` draws from `menu`, each phase
    /// `min_instrs..=max_instrs` long (clamped to the source capture), with
    /// consecutive phases forced to differ when the menu allows it.
    pub fn phase_shift(
        &mut self,
        name: &'static str,
        menu: &[Arc<CapturedTrace>],
        phases: usize,
        min_instrs: u64,
        max_instrs: u64,
    ) -> ComposedKernel {
        assert!(!menu.is_empty() && phases > 0 && min_instrs <= max_instrs);
        let mut out = Vec::with_capacity(phases);
        let mut last = usize::MAX;
        for _ in 0..phases {
            let mut pick = self.rng.random_range(0..menu.len());
            if menu.len() > 1 && pick == last {
                pick = (pick + 1) % menu.len();
            }
            last = pick;
            let len = if min_instrs == max_instrs {
                min_instrs
            } else {
                self.rng.random_range(min_instrs..max_instrs + 1)
            };
            out.push(Phase::new(
                menu[pick].clone(),
                len.min(menu[pick].buf.len() as u64),
            ));
        }
        ComposedKernel::new(name, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_by_name;
    use crate::replay::capture_kernel;
    use semloc_trace::RecordingSink;

    fn menu() -> Vec<Arc<CapturedTrace>> {
        ["list", "array", "mcf"]
            .iter()
            .map(|n| {
                let k = kernel_by_name(n).expect("registry kernel");
                Arc::new(capture_kernel(k.as_ref(), 20_000))
            })
            .collect()
    }

    #[test]
    fn phase_boundaries_are_exact() {
        let m = menu();
        let k = ComposedKernel::new(
            "t",
            vec![
                Phase::new(m[0].clone(), 1_000),
                Phase::new(m[1].clone(), 2_500),
                Phase::new(m[2].clone(), 1_234),
            ],
        );
        assert_eq!(k.total_instrs(), 4_734);
        let mut sink = RecordingSink::new();
        k.run(&mut sink);
        let instrs = sink.instrs();
        assert_eq!(instrs.len(), 4_734);
        // The first instruction of each phase matches its source's first.
        assert_eq!(instrs[0], m[0].buf.iter().next().expect("nonempty"));
        assert_eq!(instrs[1_000], m[1].buf.iter().next().expect("nonempty"));
        assert_eq!(instrs[3_500], m[2].buf.iter().next().expect("nonempty"));
    }

    #[test]
    fn composer_is_deterministic_under_seed() {
        let m = menu();
        let a = Composer::new(9).phase_shift("t", &m, 5, 500, 3_000);
        let b = Composer::new(9).phase_shift("t", &m, 5, 500, 3_000);
        assert_eq!(a.trace_key(), b.trace_key());
        let c = Composer::new(10).phase_shift("t", &m, 5, 500, 3_000);
        assert_ne!(a.trace_key(), c.trace_key());
    }

    #[test]
    fn trace_key_reflects_every_phase() {
        let m = menu();
        let a = ComposedKernel::new("t", vec![Phase::new(m[0].clone(), 100)]);
        let b = ComposedKernel::new("t", vec![Phase::new(m[0].clone(), 101)]);
        assert_ne!(a.trace_key(), b.trace_key());
    }

    #[test]
    #[should_panic(expected = "phase wants")]
    fn phase_longer_than_capture_is_rejected() {
        let m = menu();
        let _ = Phase::new(m[0].clone(), 1_000_000);
    }
}
