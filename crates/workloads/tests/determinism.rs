//! Cross-kernel invariants of the workload suite: determinism, instruction
//! mixes, semantic-hint coverage, and heap discipline.

use semloc_workloads::{all_kernels, Kernel};

use semloc_trace::{CountingSink, InstrKind, RecordingSink};

#[test]
fn every_kernel_is_deterministic() {
    for k in all_kernels() {
        let run = || {
            let mut sink = RecordingSink::with_limit(8_000);
            k.run(&mut sink);
            sink.into_instrs()
        };
        assert_eq!(run(), run(), "{} is not deterministic", k.name());
    }
}

#[test]
fn every_kernel_mixes_instruction_classes() {
    for k in all_kernels() {
        let mut sink = CountingSink::with_limit(20_000);
        k.run(&mut sink);
        assert!(sink.loads > 0, "{} never loads", k.name());
        assert!(sink.branches > 0, "{} never branches", k.name());
        assert!(
            sink.mem_fraction() > 0.04 && sink.mem_fraction() < 0.9,
            "{}: implausible memory fraction {:.2}",
            k.name(),
            sink.mem_fraction()
        );
    }
}

#[test]
fn every_pointer_kernel_emits_semantic_hints() {
    // §6 injects hints only for pointer-producing loads, so pure-array
    // kernels (lbm's stencil) legitimately carry none.
    const HINT_FREE: [&str; 1] = ["lbm"];
    for k in all_kernels() {
        let mut sink = RecordingSink::with_limit(20_000);
        k.run(&mut sink);
        let hinted = sink
            .instrs()
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Load { hints: Some(_), .. }))
            .count();
        if HINT_FREE.contains(&k.name()) {
            assert_eq!(hinted, 0, "{} should be hint-free per §6", k.name());
        } else {
            assert!(hinted > 0, "{} emits no compiler hints", k.name());
        }
    }
}

#[test]
fn hinted_loads_are_preceded_by_their_hint_nop() {
    // §6: each hinted memory instruction is immediately preceded by the
    // extended NOP carrying the hints — the overhead must be modeled.
    for k in all_kernels().into_iter().take(6) {
        let mut sink = RecordingSink::with_limit(10_000);
        k.run(&mut sink);
        let instrs = sink.instrs();
        for w in instrs.windows(2) {
            if let InstrKind::Load { hints: Some(_), .. } = w[1].kind {
                assert!(
                    matches!(w[0].kind, InstrKind::Nop),
                    "{}: hinted load at pc {:#x} lacks its hint NOP",
                    k.name(),
                    w[1].pc
                );
            }
        }
    }
}

#[test]
fn memory_accesses_stay_in_the_heap_segment() {
    use semloc_trace::address_space::HEAP_BASE;
    for k in all_kernels() {
        let mut sink = RecordingSink::with_limit(10_000);
        k.run(&mut sink);
        for i in sink.instrs() {
            if let Some(addr) = i.mem_addr() {
                assert!(
                    (HEAP_BASE..HEAP_BASE + (1 << 33)).contains(&addr),
                    "{}: access at {addr:#x} outside the simulated heap",
                    k.name()
                );
            }
        }
    }
}

#[test]
fn code_sites_are_stable_and_kernel_unique() {
    // Each kernel's PCs live in its own 64 KiB code region (PC collisions
    // across kernels would corrupt PC-indexed predictors in shared runs).
    let mut regions: std::collections::BTreeMap<u64, &'static str> = Default::default();
    for k in all_kernels() {
        let mut sink = RecordingSink::with_limit(4_000);
        k.run(&mut sink);
        for i in sink.instrs() {
            let region = i.pc >> 16;
            if let Some(owner) = regions.get(&region) {
                assert_eq!(
                    *owner,
                    k.name(),
                    "PC region {region:#x} shared between kernels"
                );
            } else {
                regions.insert(region, k.name());
            }
        }
    }
}

#[test]
fn kernels_respect_custom_scales() {
    use semloc_workloads::ukernels::{Bst, ListTraversal};
    for nodes in [128usize, 1024] {
        let k = ListTraversal {
            nodes,
            work: 1,
            seed: 3,
        };
        let mut sink = RecordingSink::with_limit(30_000);
        k.run(&mut sink);
        let distinct: std::collections::BTreeSet<u64> = sink
            .instrs()
            .iter()
            .filter_map(|i| match i.kind {
                InstrKind::Load {
                    addr,
                    hints: Some(_),
                    ..
                } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(
            distinct.len(),
            nodes,
            "list must touch each node's link exactly once per lap"
        );
    }
    let k = Bst { keys: 256, seed: 9 };
    let mut sink = CountingSink::with_limit(10_000);
    k.run(&mut sink);
    assert!(sink.total >= 10_000);
}
