//! Property tests for the workload composer.
//!
//! Composed schedules are the substrate of the multi-core interference
//! mode and the adversarial search, so three properties are pinned over
//! random schedules:
//!
//! * **seed determinism** — a [`Composer`] draw is a pure function of its
//!   seed (same seed ⇒ identical schedule, bit-identical stream);
//! * **prefix property** — capturing a composed schedule at budget `b`
//!   yields exactly the first `b` instructions of the full capture, for
//!   *any* `b`, including budgets that stop mid-phase (this is what lets
//!   the trace store serve composed runs from one capture, and what
//!   [`Engine::fork_onto`]-style warm-prefix sharing rests on);
//! * **exact phase boundaries** — instruction `i` of the composed stream
//!   equals instruction `i − start(p)` of phase `p`'s source capture,
//!   where `start(p)` is the sum of the preceding phase lengths. Phase
//!   changes happen at exactly the scheduled instruction, never one early
//!   or late.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use semloc_trace::RecordingSink;
use semloc_workloads::{
    capture_kernel, kernel_by_name, CapturedTrace, ComposedKernel, Composer, Kernel, Phase,
};

/// Shared source captures (built once; proptest runs many cases).
fn menu() -> &'static [Arc<CapturedTrace>] {
    static MENU: OnceLock<Vec<Arc<CapturedTrace>>> = OnceLock::new();
    MENU.get_or_init(|| {
        ["mcf", "list", "array", "hashtest"]
            .iter()
            .map(|n| {
                let k = kernel_by_name(n).expect("registry kernel");
                Arc::new(capture_kernel(k.as_ref(), 6_000))
            })
            .collect()
    })
}

fn record(kernel: &dyn Kernel, budget: u64) -> Vec<semloc_trace::Instr> {
    let mut sink = if budget == 0 {
        RecordingSink::new()
    } else {
        RecordingSink::with_limit(budget as usize)
    };
    kernel.run(&mut sink);
    sink.into_instrs()
}

proptest! {
    /// Same seed ⇒ same schedule (trace key *and* instruction stream);
    /// the drawn schedule respects the requested shape.
    #[test]
    fn composer_is_a_pure_function_of_its_seed(
        seed in 0u64..1_000,
        phases in 1usize..6,
        min in 100u64..500,
        extra in 0u64..2_000,
    ) {
        let m = menu();
        let a = Composer::new(seed).phase_shift("prop", m, phases, min, min + extra);
        let b = Composer::new(seed).phase_shift("prop", m, phases, min, min + extra);
        prop_assert_eq!(a.trace_key(), b.trace_key());
        prop_assert_eq!(record(&a, 0), record(&b, 0));
        prop_assert_eq!(a.phases().len(), phases);
        for p in a.phases() {
            prop_assert!(p.instrs >= min.min(p.source.buf.len() as u64));
            prop_assert!(p.instrs <= min + extra);
        }
    }

    /// A composed capture at any smaller budget is exactly the prefix of
    /// the full stream — budgets landing mid-phase included.
    #[test]
    fn composed_streams_have_the_prefix_property(
        seed in 0u64..1_000,
        phases in 1usize..5,
        cut_num in 0u64..=100,
    ) {
        let m = menu();
        let k = Composer::new(seed).phase_shift("prop", m, phases, 200, 1_500);
        let full = record(&k, 0);
        prop_assert_eq!(full.len() as u64, k.total_instrs());
        let cut = (k.total_instrs() * cut_num / 100).max(1);
        let prefix = record(&k, cut);
        prop_assert_eq!(prefix.len() as u64, cut.min(k.total_instrs()));
        prop_assert_eq!(&prefix[..], &full[..prefix.len()]);
    }

    /// Every instruction of the composed stream equals the corresponding
    /// instruction of its phase's source capture: boundaries are exact.
    #[test]
    fn phase_boundaries_are_exact(
        picks in proptest::collection::vec((0usize..4, 1u64..1_200), 1..5),
    ) {
        let m = menu();
        let k = ComposedKernel::new(
            "prop",
            picks
                .iter()
                .map(|&(p, n)| Phase::new(m[p].clone(), n))
                .collect(),
        );
        let stream = record(&k, 0);
        let mut start = 0usize;
        for &(p, n) in &picks {
            let source: Vec<_> = m[p].buf.iter().take(n as usize).collect();
            prop_assert_eq!(
                &stream[start..start + n as usize],
                &source[..],
                "phase starting at {} diverged from its source prefix",
                start
            );
            start += n as usize;
        }
        prop_assert_eq!(start, stream.len());
    }
}
