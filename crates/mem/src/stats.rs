//! Memory-system statistics.

use crate::classify::ClassCounts;
use semloc_trace::{SnapReader, SnapWriter, Snapshot};

/// Counters maintained by the [`Hierarchy`](crate::Hierarchy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand accesses presented to the L1.
    pub demand_accesses: u64,
    /// Demand accesses that missed the L1 and initiated a new fill.
    pub l1_misses: u64,
    /// Demand accesses that missed the L1 but merged into an already
    /// outstanding fill (MSHR hits; not counted in `l1_misses`, matching
    /// how MPKI is conventionally reported).
    pub l1_mshr_merges: u64,
    /// Demand accesses that missed the L2.
    pub l2_misses: u64,
    /// Real prefetch requests dispatched.
    pub prefetches_issued: u64,
    /// Prefetch requests rejected for MSHR pressure.
    pub prefetches_rejected: u64,
    /// Prefetch requests dropped because the line was already present or in
    /// flight.
    pub prefetches_filtered: u64,
    /// Dirty evictions (write-backs) from either level.
    pub writebacks: u64,
    /// Per-class demand categorization (Fig 9).
    pub classes: ClassCounts,
}

impl MemStats {
    /// L1 misses per kilo-instruction.
    pub fn l1_mpki(&self, instructions: u64) -> f64 {
        mpki(self.l1_misses, instructions)
    }

    /// L2 misses per kilo-instruction.
    pub fn l2_mpki(&self, instructions: u64) -> f64 {
        mpki(self.l2_misses, instructions)
    }

    /// Demand L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        rate(self.l1_misses, self.demand_accesses)
    }

    /// L2 miss rate over L1 misses (feeds the §4.3 miss-penalty formula).
    pub fn l2_miss_rate(&self) -> f64 {
        rate(self.l2_misses, self.l1_misses)
    }
}

impl Snapshot for MemStats {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"MEMS", 1);
        w.put_u64(self.demand_accesses);
        w.put_u64(self.l1_misses);
        w.put_u64(self.l1_mshr_merges);
        w.put_u64(self.l2_misses);
        w.put_u64(self.prefetches_issued);
        w.put_u64(self.prefetches_rejected);
        w.put_u64(self.prefetches_filtered);
        w.put_u64(self.writebacks);
        w.put_u64(self.classes.hit_prefetched);
        w.put_u64(self.classes.shorter_wait);
        w.put_u64(self.classes.non_timely);
        w.put_u64(self.classes.miss_not_prefetched);
        w.put_u64(self.classes.hit_older_demand);
        w.put_u64(self.classes.prefetch_never_hit);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"MEMS", 1)?;
        self.demand_accesses = r.get_u64()?;
        self.l1_misses = r.get_u64()?;
        self.l1_mshr_merges = r.get_u64()?;
        self.l2_misses = r.get_u64()?;
        self.prefetches_issued = r.get_u64()?;
        self.prefetches_rejected = r.get_u64()?;
        self.prefetches_filtered = r.get_u64()?;
        self.writebacks = r.get_u64()?;
        self.classes.hit_prefetched = r.get_u64()?;
        self.classes.shorter_wait = r.get_u64()?;
        self.classes.non_timely = r.get_u64()?;
        self.classes.miss_not_prefetched = r.get_u64()?;
        self.classes.hit_older_demand = r.get_u64()?;
        self.classes.prefetch_never_hit = r.get_u64()?;
        Ok(())
    }
}

fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_math() {
        let s = MemStats {
            l1_misses: 50,
            l2_misses: 10,
            ..Default::default()
        };
        assert!((s.l1_mpki(10_000) - 5.0).abs() < 1e-12);
        assert!((s.l2_mpki(10_000) - 1.0).abs() < 1e-12);
        assert_eq!(s.l1_mpki(0), 0.0);
    }

    #[test]
    fn rates() {
        let s = MemStats {
            demand_accesses: 200,
            l1_misses: 50,
            l2_misses: 25,
            ..Default::default()
        };
        assert!((s.l1_miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.l2_miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(MemStats::default().l2_miss_rate(), 0.0);
    }
}
