//! Two-level cache hierarchy for the semloc simulator.
//!
//! Reproduces the memory system of Table 2 of the paper:
//!
//! * private L1 data cache — 64 kB, 8-way, 2-cycle access, 4 MSHRs;
//! * shared L2 — 2 MB, 16-way, 20-cycle access, 20 MSHRs;
//! * main memory — flat 300-cycle access.
//!
//! Prefetches are delivered **to the L1** (as in the paper), subject to L1
//! MSHR availability; when the memory system is stressed, prefetch requests
//! are rejected and the issuing prefetcher is told, so it can account for
//! them as shadow operations.
//!
//! Every demand access is classified into the six categories of Fig 9
//! (`Hit prefetched line`, `Shorter wait time`, `Non-timely`,
//! `Miss not prefetched`, `Hit older demand`, plus `Prefetch never hit`
//! counted at eviction), which the harness uses to regenerate that figure.
//!
//! Timing is *latency-computed* rather than event-queued: each access
//! returns the cycle at which its data is ready; in-flight lines are tracked
//! by per-cache MSHR files so overlapping accesses merge, exactly the
//! behaviour the out-of-order core needs to extract memory-level
//! parallelism.

// Mirror of semloc-lint rule D3 (no-unwrap); D1/D2 are mirrored via clippy.toml.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod classify;
pub mod config;
pub mod hierarchy;
pub mod mshr;
pub mod prefetcher;
pub mod shared_l2;
pub mod stats;

pub use cache::{Cache, LookupResult};
pub use classify::{AccessClass, ClassCounts};
pub use config::{CacheConfig, MemConfig};
pub use hierarchy::{DemandResult, Hierarchy};
pub use mshr::{MshrFile, MshrKind};
pub use prefetcher::{MemPressure, NoPrefetch, PrefetchReq, Prefetcher, PrefetcherStats};
pub use shared_l2::{DramConfig, DramModel, SharedL2, SharedL2Handle, SharedL2Stats};
pub use stats::MemStats;
