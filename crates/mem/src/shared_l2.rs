//! Shared L2 + DRAM bandwidth model for the multi-core interference mode.
//!
//! In single-core runs every [`crate::Hierarchy`] owns a private L2 and a
//! flat-latency DRAM. The interference mode instead hands N hierarchies one
//! [`SharedL2`]: a single L2 array + MSHR file whose DRAM leg goes through a
//! finite-bandwidth channel model, so co-running cores contend for capacity
//! (evicting each other's lines), for L2 MSHRs (throttling each other's
//! prefetchers) and for DRAM service slots (queueing each other's misses).
//!
//! The model stays latency-computed and event-free like the rest of the
//! memory system: cores hand in *arrival cycles* and get back completion
//! cycles. Because the caches use tick-counter LRU (no wall-clock), the
//! shared array is well-defined even though the contending cores' clocks
//! drift within the round-robin quantum.

use crate::cache::{Cache, LookupResult};
use crate::config::CacheConfig;
use crate::mshr::{MshrFile, MshrKind};
use semloc_trace::{Addr, Cycle, SnapReader, SnapWriter, Snapshot};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle through which per-core hierarchies reach the one L2.
pub type SharedL2Handle = Rc<RefCell<SharedL2>>;

/// DRAM bandwidth model configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Access latency of one request (cycles), as in Table 2.
    pub latency: Cycle,
    /// Independent channels servicing requests in parallel.
    pub channels: u32,
    /// Cycles a channel is occupied per line transfer (1/bandwidth).
    pub service_interval: Cycle,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency: 300,
            channels: 2,
            service_interval: 8,
        }
    }
}

/// Finite-bandwidth DRAM: each channel serves one line per
/// `service_interval` cycles; a request picks the earliest-free channel and
/// queues behind its outstanding transfers.
#[derive(Debug)]
pub struct DramModel {
    // semloc-lint: allow(snapshot-field-coverage): construction-time config (latency/channels/interval), not run state
    cfg: DramConfig,
    next_free: Vec<Cycle>,
}

impl DramModel {
    /// A DRAM model with all channels idle.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = cfg.channels.max(1) as usize;
        DramModel {
            cfg,
            next_free: vec![0; channels],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Schedule a line request arriving at cycle `t`. Returns the completion
    /// cycle (`service start + latency`) and advances the chosen channel.
    /// Deterministic: the earliest-free channel wins, first index on ties.
    pub fn schedule(&mut self, t: Cycle) -> (Cycle, Cycle) {
        let mut best = 0usize;
        for (i, &free) in self.next_free.iter().enumerate() {
            if free < self.next_free[best] {
                best = i;
            }
        }
        let start = t.max(self.next_free[best]);
        self.next_free[best] = start + self.cfg.service_interval;
        (start + self.cfg.latency, start - t)
    }
}

impl Snapshot for DramModel {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"DRAM", 1);
        w.put_len(self.next_free.len());
        for &t in &self.next_free {
            w.put_u64(t);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"DRAM", 1)?;
        let n = r.get_len()?;
        let mut next_free = Vec::with_capacity(n);
        for _ in 0..n {
            next_free.push(r.get_u64()?);
        }
        self.next_free = next_free;
        Ok(())
    }
}

/// Aggregate counters for the shared level (per-core counters stay in each
/// core's [`crate::MemStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedL2Stats {
    /// Demand lookups from any core.
    pub demand_lookups: u64,
    /// Demand lookups that hit the shared array or merged in flight.
    pub demand_hits: u64,
    /// Demand lookups that went to DRAM.
    pub demand_misses: u64,
    /// Prefetch fills installed in the shared array.
    pub prefetch_fills: u64,
    /// Dirty lines written back on eviction from the shared array.
    pub writebacks: u64,
    /// Total cycles demand misses spent queued behind busy DRAM channels.
    pub dram_queue_cycles: u64,
}

impl Snapshot for SharedL2Stats {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"SLST", 1);
        w.put_u64(self.demand_lookups);
        w.put_u64(self.demand_hits);
        w.put_u64(self.demand_misses);
        w.put_u64(self.prefetch_fills);
        w.put_u64(self.writebacks);
        w.put_u64(self.dram_queue_cycles);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"SLST", 1)?;
        self.demand_lookups = r.get_u64()?;
        self.demand_hits = r.get_u64()?;
        self.demand_misses = r.get_u64()?;
        self.prefetch_fills = r.get_u64()?;
        self.writebacks = r.get_u64()?;
        self.dram_queue_cycles = r.get_u64()?;
        Ok(())
    }
}

/// One L2 + MSHR file + DRAM shared by every core of a multi-core engine.
///
/// The two legs mirror [`crate::Hierarchy`]'s private L2 paths exactly,
/// except that the flat `dram_latency` is replaced by
/// [`DramModel::schedule`], so a miss behind a saturated channel completes
/// later than an identical miss on an idle machine.
pub struct SharedL2 {
    // semloc-lint: allow(snapshot-field-coverage): construction-time geometry config, not run state
    cfg: CacheConfig,
    l2: Cache,
    mshrs: MshrFile,
    dram: DramModel,
    stats: SharedL2Stats,
}

impl SharedL2 {
    /// Build the shared level from an L2 geometry and a DRAM model.
    pub fn new(l2: CacheConfig, dram: DramConfig) -> Self {
        SharedL2 {
            l2: Cache::new(l2.clone()),
            mshrs: MshrFile::new(l2.mshrs, l2.line_bytes),
            dram: DramModel::new(dram),
            cfg: l2,
            stats: SharedL2Stats::default(),
        }
    }

    /// Wrap a fresh shared level in the handle cores hold.
    pub fn handle(l2: CacheConfig, dram: DramConfig) -> SharedL2Handle {
        Rc::new(RefCell::new(SharedL2::new(l2, dram)))
    }

    /// Accumulated shared-level statistics.
    pub fn stats(&self) -> &SharedL2Stats {
        &self.stats
    }

    /// Free shared MSHRs at cycle `now` (feeds per-core prefetch pressure).
    pub fn mshr_free(&mut self, now: Cycle) -> u32 {
        self.mshrs.free(now)
    }

    /// The demand leg of a core's L1 miss arriving at cycle `arrive`
    /// (already past that core's L1 latency + MSHR backpressure). Returns
    /// the cycle the line reaches the core's L1 boundary and whether the
    /// shared array missed.
    pub fn demand_leg(
        &mut self,
        addr: Addr,
        arrive: Cycle,
        kind: MshrKind,
        dirty: bool,
    ) -> (Cycle, bool) {
        let l2_lat = self.cfg.latency;
        self.stats.demand_lookups += 1;
        match self.l2.lookup_demand(addr, arrive, dirty) {
            LookupResult::Hit { .. } => {
                self.stats.demand_hits += 1;
                (arrive + l2_lat, false)
            }
            LookupResult::InFlight { ready_at, .. } => {
                self.stats.demand_hits += 1;
                (ready_at.max(arrive) + l2_lat, false)
            }
            LookupResult::Miss => {
                self.stats.demand_misses += 1;
                // Shared-MSHR backpressure (reservation-counted for demands),
                // then the finite-bandwidth DRAM leg.
                let mut l2_start = arrive + l2_lat;
                while kind == MshrKind::Demand && self.mshrs.free_for_demand(l2_start) == 0 {
                    match self.mshrs.earliest_demand_fill() {
                        Some(t) if t > l2_start => l2_start = t,
                        _ => break,
                    }
                }
                let (fill, queued) = self.dram.schedule(l2_start);
                self.stats.dram_queue_cycles += queued;
                let _ = self.mshrs.try_allocate(addr, fill, kind, l2_start);
                let ev = self.l2.fill(addr, fill, false, false);
                if ev.dirty {
                    self.stats.writebacks += 1;
                }
                (fill, true)
            }
        }
    }

    /// The L2 leg of a core's prefetch arriving at cycle `arrive` (`now` is
    /// the core's current cycle, used for MSHR occupancy). Returns the L1
    /// fill cycle and the L1 MSHR window start, or `None` when rejected by
    /// shared-MSHR pressure.
    pub fn prefetch_leg(
        &mut self,
        addr: Addr,
        arrive: Cycle,
        now: Cycle,
    ) -> Option<(Cycle, Cycle)> {
        let l2_lat = self.cfg.latency;
        match self.l2.lookup_demand(addr, arrive, false) {
            LookupResult::Hit { .. } => Some((arrive + l2_lat, now)),
            LookupResult::InFlight { ready_at, .. } => {
                let fill = ready_at.max(arrive) + l2_lat;
                Some((fill, fill.saturating_sub(l2_lat)))
            }
            LookupResult::Miss => {
                if self.mshrs.free(now) == 0 {
                    return None;
                }
                let (fill, _queued) = self.dram.schedule(arrive + l2_lat);
                let _ = self.mshrs.try_allocate(addr, fill, MshrKind::Prefetch, now);
                let ev = self.l2.fill(addr, fill, false, false);
                if ev.dirty {
                    self.stats.writebacks += 1;
                }
                self.stats.prefetch_fills += 1;
                Some((fill, fill.saturating_sub(l2_lat)))
            }
        }
    }
}

impl Snapshot for SharedL2 {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"SHL2", 1);
        self.l2.save(w);
        self.mshrs.save(w);
        self.dram.save(w);
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"SHL2", 1)?;
        self.l2.restore(r)?;
        self.mshrs.restore(r)?;
        self.dram.restore(r)?;
        self.stats.restore(r)
    }
}

impl std::fmt::Debug for SharedL2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedL2")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    #[test]
    fn idle_dram_matches_flat_latency() {
        let mut d = DramModel::new(DramConfig::default());
        let (done, queued) = d.schedule(100);
        assert_eq!(done, 400);
        assert_eq!(queued, 0);
    }

    #[test]
    fn saturated_channels_queue_requests() {
        let cfg = DramConfig {
            latency: 300,
            channels: 2,
            service_interval: 8,
        };
        let mut d = DramModel::new(cfg);
        // Four simultaneous requests on two channels: two start at t, two
        // queue one service interval behind.
        let done: Vec<Cycle> = (0..4).map(|_| d.schedule(0).0).collect();
        assert_eq!(done, vec![300, 300, 308, 308]);
    }

    #[test]
    fn dram_schedule_is_deterministic() {
        let mk = || DramModel::new(DramConfig::default());
        let (mut a, mut b) = (mk(), mk());
        for t in [0u64, 5, 5, 300, 301, 301, 900] {
            assert_eq!(a.schedule(t), b.schedule(t));
        }
    }

    #[test]
    fn demand_leg_mirrors_private_path_when_idle() {
        let mem = MemConfig::default();
        let mut sh = SharedL2::new(mem.l2.clone(), DramConfig::default());
        // Cold miss arriving at the L2 boundary at cycle 2 (past a 2-cycle
        // L1): 2 + 20 (L2) + 300 (DRAM) = 322, as in the private path.
        let (ready, missed) = sh.demand_leg(0x10000, 2, MshrKind::Demand, false);
        assert_eq!(ready, 322);
        assert!(missed);
        // Second core touching the same line merges in flight.
        let (ready2, missed2) = sh.demand_leg(0x10020, 10, MshrKind::Demand, false);
        assert_eq!(ready2, 322 + 20);
        assert!(!missed2);
        assert_eq!(sh.stats().demand_misses, 1);
        assert_eq!(sh.stats().demand_hits, 1);
    }

    #[test]
    fn capacity_contention_evicts_across_cores() {
        // A tiny 2-way shared L2: core B's streaming evicts core A's line.
        let l2 = CacheConfig {
            size_bytes: 2 * 64,
            ways: 2,
            line_bytes: 64,
            latency: 20,
            mshrs: 20,
        };
        let mut sh = SharedL2::new(l2, DramConfig::default());
        sh.demand_leg(0x0000, 0, MshrKind::Demand, false);
        // Refetch after the fill completes: hit.
        let (_, missed) = sh.demand_leg(0x0000, 1000, MshrKind::Demand, false);
        assert!(!missed);
        // Another core floods the set.
        sh.demand_leg(0x1000, 2000, MshrKind::Demand, false);
        sh.demand_leg(0x2000, 3000, MshrKind::Demand, false);
        let (_, missed) = sh.demand_leg(0x0000, 10_000, MshrKind::Demand, false);
        assert!(missed, "victim line must have been evicted by the flood");
    }

    #[test]
    #[allow(clippy::unwrap_used)]
    fn snapshot_roundtrip_is_bit_identical() {
        let mem = MemConfig::default();
        let mut sh = SharedL2::new(mem.l2.clone(), DramConfig::default());
        for i in 0..32u64 {
            sh.demand_leg(0x4000 + i * 0x1000, i * 7, MshrKind::Demand, i % 3 == 0);
            sh.prefetch_leg(0x9000 + i * 0x1000, i * 7 + 2, i * 7);
        }
        let mut w = SnapWriter::new();
        sh.save(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = SharedL2::new(mem.l2.clone(), DramConfig::default());
        let mut r = SnapReader::new(&bytes);
        fresh.restore(&mut r).unwrap();
        r.expect_end().unwrap();

        let mut w2 = SnapWriter::new();
        fresh.save(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "re-save must be byte-identical");
        assert_eq!(sh.stats(), fresh.stats());
    }
}
