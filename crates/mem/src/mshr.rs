//! Miss-status holding registers.
//!
//! Each cache level owns an [`MshrFile`] tracking its outstanding fills.
//! Entries are retired lazily when the current cycle passes their fill time.
//! Capacity pressure is what throttles prefetching (§4.2 of the paper) and
//! bounds memory-level parallelism in the core model.

use semloc_trace::{snap_err, Addr, Cycle, SnapReader, SnapWriter, Snapshot};

/// Whether an outstanding fill was initiated by a demand or a prefetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrKind {
    /// Demand load/store miss.
    Demand,
    /// Prefetch fill.
    Prefetch,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    block: u64,
    /// Cycle from which the entry occupies a register. Demand misses
    /// occupy from allocation; a prefetch whose long-latency leg is carried
    /// by the next level only occupies this file for its final transfer
    /// window.
    start: Cycle,
    fill_at: Cycle,
    kind: MshrKind,
}

impl Entry {
    fn active_at(&self, now: Cycle) -> bool {
        self.start <= now && self.fill_at > now
    }
}

/// A fixed-capacity file of outstanding misses for one cache level.
///
/// ```rust
/// use semloc_mem::{MshrFile, MshrKind};
///
/// let mut mshrs = MshrFile::new(4, 64);
/// assert!(mshrs.try_allocate(0x1000, 322, MshrKind::Demand, 0));
/// // A second access to the same line merges instead of allocating.
/// assert_eq!(mshrs.lookup(0x1020, 10).map(|(fill, _)| fill), Some(322));
/// assert_eq!(mshrs.free(10), 3);
/// assert_eq!(mshrs.free(400), 4); // retired after the fill
/// ```
#[derive(Debug)]
pub struct MshrFile {
    entries: Vec<Entry>,
    // semloc-lint: allow(snapshot-field-coverage): file size is construction-time config; restore validates the entry count against it
    capacity: usize,
    // semloc-lint: allow(snapshot-field-coverage): geometry derived from cfg at construction
    line_shift: u32,
}

impl MshrFile {
    /// An MSHR file with `capacity` entries for a cache with `line_bytes`
    /// lines.
    pub fn new(capacity: u32, line_bytes: u64) -> Self {
        MshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            line_shift: line_bytes.trailing_zeros(),
        }
    }

    #[inline]
    fn block(&self, addr: Addr) -> u64 {
        addr >> self.line_shift
    }

    /// Drop entries whose fill completed at or before `now`.
    pub fn retire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.fill_at > now);
    }

    /// Free slots at cycle `now` (entries whose occupancy window has not
    /// started yet do not count).
    pub fn free(&mut self, now: Cycle) -> u32 {
        self.retire(now);
        let active = self.entries.iter().filter(|e| e.active_at(now)).count();
        self.capacity.saturating_sub(active) as u32
    }

    /// Outstanding entry for `addr`'s line, if any (after retiring).
    pub fn lookup(&mut self, addr: Addr, now: Cycle) -> Option<(Cycle, MshrKind)> {
        self.retire(now);
        let b = self.block(addr);
        self.entries
            .iter()
            .find(|e| e.block == b)
            .map(|e| (e.fill_at, e.kind))
    }

    /// Try to allocate an entry occupying a register from `now` until
    /// `fill_at`; returns `false` when full.
    pub fn try_allocate(&mut self, addr: Addr, fill_at: Cycle, kind: MshrKind, now: Cycle) -> bool {
        self.try_allocate_window(addr, now, fill_at, kind, now)
    }

    /// Try to allocate an entry that only occupies a register during
    /// `[start, fill_at]` — the final-transfer leg of a fill whose
    /// long-latency portion is tracked by the next level's MSHRs (used by
    /// prefetches that ride the L2's registers to DRAM).
    pub fn try_allocate_window(
        &mut self,
        addr: Addr,
        start: Cycle,
        fill_at: Cycle,
        kind: MshrKind,
        now: Cycle,
    ) -> bool {
        self.retire(now);
        // Capacity is checked at the window start: how many existing
        // entries will still be active when this one becomes active?
        let active_then = self
            .entries
            .iter()
            .filter(|e| e.start <= start && e.fill_at > start)
            .count();
        if active_then >= self.capacity {
            return false;
        }
        self.entries.push(Entry {
            block: self.block(addr),
            start,
            fill_at,
            kind,
        });
        true
    }

    /// Earliest completion among outstanding entries (for modeling the stall
    /// a demand miss suffers when the file is full).
    pub fn earliest_fill(&self) -> Option<Cycle> {
        self.entries.iter().map(|e| e.fill_at).min()
    }

    /// Free slots counting *reservations* by demand misses (every demand
    /// entry not yet filled, regardless of its occupancy window). A demand
    /// miss must not overtake an earlier stalled demand, so demand
    /// backpressure uses this rather than [`MshrFile::free`].
    pub fn free_for_demand(&mut self, now: Cycle) -> u32 {
        self.retire(now);
        let reserved = self
            .entries
            .iter()
            .filter(|e| e.kind == MshrKind::Demand)
            .count();
        self.capacity.saturating_sub(reserved) as u32
    }

    /// Earliest completion among outstanding *demand* entries.
    pub fn earliest_demand_fill(&self) -> Option<Cycle> {
        self.entries
            .iter()
            .filter(|e| e.kind == MshrKind::Demand)
            .map(|e| e.fill_at)
            .min()
    }

    /// Number of outstanding entries (without retiring), for tests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Snapshot for MshrFile {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"MSHR", 1);
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.block);
            w.put_u64(e.start);
            w.put_u64(e.fill_at);
            w.put_u8(match e.kind {
                MshrKind::Demand => 0,
                MshrKind::Prefetch => 1,
            });
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"MSHR", 1)?;
        let n = r.get_len()?;
        let mut entries = Vec::with_capacity(n.max(self.capacity));
        for _ in 0..n {
            let block = r.get_u64()?;
            let start = r.get_u64()?;
            let fill_at = r.get_u64()?;
            let kind = match r.get_u8()? {
                0 => MshrKind::Demand,
                1 => MshrKind::Prefetch,
                k => return Err(snap_err(format!("MSHR kind byte {k} invalid"))),
            };
            entries.push(Entry {
                block,
                start,
                fill_at,
                kind,
            });
        }
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full_then_reject() {
        let mut m = MshrFile::new(2, 64);
        assert!(m.try_allocate(0x000, 100, MshrKind::Demand, 0));
        assert!(m.try_allocate(0x040, 100, MshrKind::Demand, 0));
        assert!(!m.try_allocate(0x080, 100, MshrKind::Demand, 0));
        assert_eq!(m.free(0), 0);
    }

    #[test]
    fn retire_frees_slots() {
        let mut m = MshrFile::new(1, 64);
        assert!(m.try_allocate(0x000, 10, MshrKind::Prefetch, 0));
        assert!(!m.try_allocate(0x040, 20, MshrKind::Demand, 5));
        assert!(m.try_allocate(0x040, 20, MshrKind::Demand, 10));
    }

    #[test]
    fn lookup_matches_same_line_only() {
        let mut m = MshrFile::new(4, 64);
        m.try_allocate(0x1000, 50, MshrKind::Prefetch, 0);
        assert_eq!(m.lookup(0x103f, 0), Some((50, MshrKind::Prefetch)));
        assert_eq!(m.lookup(0x1040, 0), None);
    }

    #[test]
    fn earliest_fill_tracks_minimum() {
        let mut m = MshrFile::new(4, 64);
        m.try_allocate(0x000, 30, MshrKind::Demand, 0);
        m.try_allocate(0x040, 10, MshrKind::Demand, 0);
        assert_eq!(m.earliest_fill(), Some(10));
    }
}
