//! The prefetcher interface.
//!
//! Every prefetcher in the workspace — the paper's context-based prefetcher
//! and the spatio-temporal baselines (stride, GHB, SMS, Markov) — implements
//! [`Prefetcher`]. The [`Hierarchy`](crate::Hierarchy) invokes it on every
//! demand access, attempts to issue the returned requests subject to MSHR
//! pressure, and reports back which were actually dispatched.

use semloc_trace::{AccessContext, Addr, SnapReader, SnapWriter, Snapshot};

/// Snapshot of memory-system pressure handed to the prefetcher so it can
/// throttle (§4.2: "prefetch operations may be skipped if the memory system
/// is stressed").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemPressure {
    /// Free L1 MSHRs at this instant.
    pub l1_mshr_free: u32,
    /// Free L2 MSHRs at this instant.
    pub l2_mshr_free: u32,
}

/// A prefetch request produced by a prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchReq {
    /// Virtual address to prefetch (any address within the target line).
    pub addr: Addr,
    /// A shadow operation: tracked for training but never dispatched to the
    /// memory system (§4.1 of the paper).
    pub shadow: bool,
    /// Prefetcher-private identifier echoed back via
    /// [`Prefetcher::on_issue_result`].
    pub tag: u64,
}

impl PrefetchReq {
    /// A real (dispatched) prefetch request.
    pub fn real(addr: Addr, tag: u64) -> Self {
        PrefetchReq {
            addr,
            shadow: false,
            tag,
        }
    }

    /// A shadow (training-only) request.
    pub fn shadow(addr: Addr, tag: u64) -> Self {
        PrefetchReq {
            addr,
            shadow: true,
            tag,
        }
    }
}

/// Aggregate counters every prefetcher exposes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetcherStats {
    /// Real prefetch requests produced.
    pub issued: u64,
    /// Requests rejected by the memory system (MSHR pressure) and converted
    /// to shadow operations.
    pub rejected: u64,
    /// Shadow operations produced deliberately (exploration).
    pub shadow: u64,
    /// Predictions that were later hit by a demand access.
    pub useful: u64,
}

impl PrefetcherStats {
    /// Fraction of issued prefetches that proved useful (0 when none
    /// issued).
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }
}

impl Snapshot for PrefetcherStats {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"PFST", 1);
        w.put_u64(self.issued);
        w.put_u64(self.rejected);
        w.put_u64(self.shadow);
        w.put_u64(self.useful);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"PFST", 1)?;
        self.issued = r.get_u64()?;
        self.rejected = r.get_u64()?;
        self.shadow = r.get_u64()?;
        self.useful = r.get_u64()?;
        Ok(())
    }
}

/// A hardware prefetcher attached to the L1 data cache.
pub trait Prefetcher {
    /// Short display name (e.g. `"context"`, `"ghb-pc/dc"`).
    fn name(&self) -> &'static str;

    /// Observe one demand access and append any prefetch requests to `out`.
    ///
    /// `out` is cleared by the caller before the call. Requests marked
    /// `shadow` are never dispatched; the rest are attempted in order until
    /// MSHR pressure rejects them.
    fn on_access(&mut self, ctx: &AccessContext, pressure: MemPressure, out: &mut Vec<PrefetchReq>);

    /// Told, for each non-shadow request returned by
    /// [`Prefetcher::on_access`], whether it was actually dispatched
    /// (`issued = false` means the memory system rejected it and the
    /// prefetcher should treat it as a shadow operation).
    fn on_issue_result(&mut self, tag: u64, issued: bool) {
        let _ = (tag, issued);
    }

    /// Whether the prefetcher currently has an un-issued or shadow
    /// prediction covering `addr`'s block — used to classify demand misses
    /// as *non-timely* rather than *not prefetched* (Fig 9).
    fn was_predicted(&self, addr: Addr) -> bool {
        let _ = addr;
        false
    }

    /// Hardware budget of the configuration, in bytes (Table 2 scales all
    /// competitors to the same budget).
    fn storage_bytes(&self) -> usize;

    /// Aggregate counters.
    fn stats(&self) -> PrefetcherStats {
        PrefetcherStats::default()
    }

    /// End-of-run hook (e.g. flush outstanding training feedback). Called
    /// once by [`Hierarchy::finish`](crate::Hierarchy::finish).
    fn finish(&mut self) {}

    /// Downcast support for harness code that needs prefetcher-specific
    /// statistics from behind `dyn Prefetcher`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Append the prefetcher's complete run state (tables, queues, RNG
    /// streams, counters) to `w`. Stateful prefetchers MUST override this
    /// together with [`Prefetcher::restore_state`]; the default writes a
    /// stateless marker section only, which is correct solely for
    /// prefetchers with no run state at all (e.g. [`NoPrefetch`]).
    fn save_state(&self, w: &mut SnapWriter) {
        w.section(*b"PF--", 1);
    }

    /// Restore state previously written by [`Prefetcher::save_state`] into
    /// a prefetcher constructed from the same configuration.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"PF--", 1)
    }
}

impl Prefetcher for Box<dyn Prefetcher> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        (**self).on_access(ctx, pressure, out)
    }

    fn on_issue_result(&mut self, tag: u64, issued: bool) {
        (**self).on_issue_result(tag, issued)
    }

    fn was_predicted(&self, addr: Addr) -> bool {
        (**self).was_predicted(addr)
    }

    fn storage_bytes(&self) -> usize {
        (**self).storage_bytes()
    }

    fn stats(&self) -> PrefetcherStats {
        (**self).stats()
    }

    fn finish(&mut self) {
        (**self).finish()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }

    fn save_state(&self, w: &mut SnapWriter) {
        (**self).save_state(w)
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        (**self).restore_state(r)
    }
}

/// The no-prefetching baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoPrefetch;

impl Prefetcher for NoPrefetch {
    fn name(&self) -> &'static str {
        "none"
    }

    fn on_access(
        &mut self,
        _ctx: &AccessContext,
        _pressure: MemPressure,
        _out: &mut Vec<PrefetchReq>,
    ) {
    }

    fn storage_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetch_is_silent() {
        let mut p = NoPrefetch;
        let mut out = Vec::new();
        let ctx = AccessContext::bare(0, 0x400, 0x1000, false);
        p.on_access(
            &ctx,
            MemPressure {
                l1_mshr_free: 4,
                l2_mshr_free: 20,
            },
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(p.storage_bytes(), 0);
        assert!(!p.was_predicted(0x1000));
    }

    #[test]
    fn stats_accuracy() {
        let s = PrefetcherStats {
            issued: 10,
            useful: 4,
            ..Default::default()
        };
        assert!((s.accuracy() - 0.4).abs() < 1e-12);
        assert_eq!(PrefetcherStats::default().accuracy(), 0.0);
    }

    #[test]
    fn req_constructors() {
        assert!(!PrefetchReq::real(0x40, 1).shadow);
        assert!(PrefetchReq::shadow(0x40, 2).shadow);
    }
}
