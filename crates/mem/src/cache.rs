//! A set-associative, write-back, write-allocate cache array with true-LRU
//! replacement.
//!
//! The array stores only metadata (tags and flags); simulated programs never
//! store data. Each line remembers whether it was brought in by a prefetch
//! and whether a demand access has touched it since the fill, which drives
//! the Fig 9 access classification and the "prefetch never hit" statistic.

use crate::config::CacheConfig;
use semloc_trace::{snap_err, Addr, Cycle, SnapReader, SnapWriter, Snapshot};

// (Line metadata is stored structure-of-arrays directly in `Cache`; see
// the field docs there.)

/// Outcome of a cache lookup-and-update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// Present and filled: data available `latency` cycles after the access.
    Hit {
        /// The line was originally brought in by a prefetch and this is the
        /// first demand touch.
        first_touch_of_prefetch: bool,
    },
    /// Present but still in flight (fill outstanding): data available at
    /// `ready_at`.
    InFlight {
        /// Fill-completion cycle of the outstanding request.
        ready_at: Cycle,
        /// The outstanding request is a prefetch.
        prefetch: bool,
    },
    /// Not present.
    Miss,
}

/// What was evicted when a new line was inserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// A valid line was displaced.
    pub valid: bool,
    /// The displaced line was dirty (write-back generated).
    pub dirty: bool,
    /// The displaced line was prefetched and never touched by a demand.
    pub useless_prefetch: bool,
}

/// A set-associative cache array.
///
/// ```rust
/// use semloc_mem::{Cache, CacheConfig, LookupResult};
///
/// let mut l1 = Cache::new(CacheConfig::l1d());
/// assert_eq!(l1.lookup_demand(0x1000, 0, false), LookupResult::Miss);
/// l1.fill(0x1000, 22, false, false);
/// assert!(matches!(l1.lookup_demand(0x1000, 30, false), LookupResult::Hit { .. }));
/// ```
#[derive(Debug)]
pub struct Cache {
    // semloc-lint: allow(snapshot-field-coverage): construction-time config; the geometry fields below are derived from it
    cfg: CacheConfig,
    /// Line metadata in parallel arrays, set-major: set `s`, way `w` lives
    /// at index `s * ways + w` of each array. Splitting by field keeps the
    /// tags of a whole set inside one hardware cache line (an 8-way probe
    /// touches 64 contiguous tag bytes instead of striding over ~400 bytes
    /// of interleaved metadata) and exposes flat lanes to the
    /// `semloc_accel` tag-probe and victim-scan kernels.
    tags: Box<[u64]>,
    valid: Box<[bool]>,
    dirty: Box<[bool]>,
    /// Brought in by a prefetch (cleared once a demand access touches it).
    prefetched: Box<[bool]>,
    /// A demand access has touched the line since the fill.
    touched: Box<[bool]>,
    /// LRU timestamps (larger = more recent).
    lru: Box<[u64]>,
    /// Cycle at which each fill completes; before it the line is in flight.
    ready_at: Box<[Cycle]>,
    // semloc-lint: allow(snapshot-field-coverage): geometry derived from cfg at construction
    ways: usize,
    // semloc-lint: allow(snapshot-field-coverage): geometry derived from cfg at construction
    set_mask: u64,
    // semloc-lint: allow(snapshot-field-coverage): geometry derived from cfg at construction
    line_shift: u32,
    tick: u64,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let ways = cfg.ways as usize;
        let line_shift = cfg.line_bytes.trailing_zeros();
        let n = sets as usize * ways;
        Cache {
            tags: vec![0; n].into_boxed_slice(),
            valid: vec![false; n].into_boxed_slice(),
            dirty: vec![false; n].into_boxed_slice(),
            prefetched: vec![false; n].into_boxed_slice(),
            touched: vec![false; n].into_boxed_slice(),
            lru: vec![0; n].into_boxed_slice(),
            ready_at: vec![0; n].into_boxed_slice(),
            ways,
            set_mask: sets - 1,
            line_shift,
            cfg,
            tick: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn index(&self, addr: Addr) -> (usize, u64) {
        let block = addr >> self.line_shift;
        (
            (block & self.set_mask) as usize,
            block >> self.set_mask.count_ones(),
        )
    }

    /// First way of `set` holding a valid line tagged `tag` (the same
    /// first-match the interleaved scan produced), as a flat line index.
    #[inline]
    fn find_line(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        let r = base..base + self.ways;
        semloc_accel::find_valid_tag(&self.tags[r.clone()], &self.valid[r], tag).map(|w| base + w)
    }

    /// Look up `addr` at cycle `now` as a demand access, updating LRU and
    /// touch/prefetch flags.
    #[inline]
    pub fn lookup_demand(&mut self, addr: Addr, now: Cycle, is_write: bool) -> LookupResult {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        if let Some(i) = self.find_line(set, tag) {
            self.lru[i] = tick;
            if is_write {
                self.dirty[i] = true;
            }
            if self.ready_at[i] > now {
                return LookupResult::InFlight {
                    ready_at: self.ready_at[i],
                    prefetch: self.prefetched[i],
                };
            }
            let first = self.prefetched[i] && !self.touched[i];
            self.touched[i] = true;
            self.prefetched[i] = false;
            return LookupResult::Hit {
                first_touch_of_prefetch: first,
            };
        }
        LookupResult::Miss
    }

    /// Look up `addr` without modifying any state (for prefetch filtering
    /// and tests).
    #[inline]
    pub fn probe(&self, addr: Addr, now: Cycle) -> LookupResult {
        let (set, tag) = self.index(addr);
        if let Some(i) = self.find_line(set, tag) {
            if self.ready_at[i] > now {
                return LookupResult::InFlight {
                    ready_at: self.ready_at[i],
                    prefetch: self.prefetched[i],
                };
            }
            return LookupResult::Hit {
                first_touch_of_prefetch: self.prefetched[i] && !self.touched[i],
            };
        }
        LookupResult::Miss
    }

    /// Insert the line containing `addr`, becoming ready at `ready_at`.
    /// Returns what was evicted.
    #[inline]
    #[allow(clippy::expect_used)]
    pub fn fill(&mut self, addr: Addr, ready_at: Cycle, prefetched: bool, dirty: bool) -> Eviction {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        // Refill of a line already present (e.g. prefetch raced a demand):
        // just refresh, never duplicate tags within a set.
        if let Some(i) = self.find_line(set, tag) {
            self.lru[i] = tick;
            self.dirty[i] |= dirty;
            self.ready_at[i] = self.ready_at[i].min(ready_at);
            if !prefetched {
                // A demand fill claims the line: it must no longer count as
                // an untouched prefetch (Fig 9 classes / `useless_prefetch`),
                // even if a prefetched fill for it is still in flight.
                self.prefetched[i] = false;
                self.touched[i] = true;
            }
            return Eviction {
                valid: false,
                dirty: false,
                useless_prefetch: false,
            };
        }
        let base = set * self.ways;
        let r = base..base + self.ways;
        // First-minimum of `if valid { lru + 1 } else { 0 }`, exactly the
        // `min_by_key` the interleaved scan used.
        let victim = base
            + semloc_accel::victim_way(&self.valid[r.clone()], &self.lru[r])
                // semloc-lint: allow(no-unwrap): associativity is validated > 0 at construction
                .expect("cache set has at least one way");
        let ev = Eviction {
            valid: self.valid[victim],
            dirty: self.valid[victim] && self.dirty[victim],
            useless_prefetch: self.valid[victim]
                && self.prefetched[victim]
                && !self.touched[victim],
        };
        self.tags[victim] = tag;
        self.valid[victim] = true;
        self.dirty[victim] = dirty;
        self.prefetched[victim] = prefetched;
        self.touched[victim] = false;
        self.lru[victim] = tick;
        self.ready_at[victim] = ready_at;
        ev
    }

    /// Count valid lines that were prefetched and never demand-touched
    /// (the residual "prefetch never hit" population at end of run).
    pub fn count_untouched_prefetches(&self) -> u64 {
        (0..self.tags.len())
            .filter(|&i| self.valid[i] && self.prefetched[i] && !self.touched[i])
            .count() as u64
    }

    /// Number of valid lines (occupancy), for tests.
    pub fn valid_lines(&self) -> u64 {
        self.valid.iter().filter(|&&v| v).count() as u64
    }
}

impl Snapshot for Cache {
    fn save(&self, w: &mut SnapWriter) {
        // Byte-identical to the interleaved-line format: per line index,
        // tag / flags / lru / ready_at, in set-major order.
        w.section(*b"CACH", 1);
        w.put_u64(self.tick);
        w.put_len(self.tags.len());
        for i in 0..self.tags.len() {
            w.put_u64(self.tags[i]);
            let flags = self.valid[i] as u8
                | (self.dirty[i] as u8) << 1
                | (self.prefetched[i] as u8) << 2
                | (self.touched[i] as u8) << 3;
            w.put_u8(flags);
            w.put_u64(self.lru[i]);
            w.put_u64(self.ready_at[i]);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"CACH", 1)?;
        let tick = r.get_u64()?;
        let n = r.get_len()?;
        if n != self.tags.len() {
            return Err(snap_err(format!(
                "cache snapshot has {n} lines, geometry expects {}",
                self.tags.len()
            )));
        }
        // Parse into scratch first so a malformed snapshot leaves the
        // cache untouched.
        let mut tags = vec![0u64; n];
        let mut packed_flags = vec![0u8; n];
        let mut lru = vec![0u64; n];
        let mut ready_at = vec![0u64; n];
        for i in 0..n {
            tags[i] = r.get_u64()?;
            let flags = r.get_u8()?;
            if flags & !0x0F != 0 {
                return Err(snap_err(format!("cache line flags {flags:#04x} invalid")));
            }
            packed_flags[i] = flags;
            lru[i] = r.get_u64()?;
            ready_at[i] = r.get_u64()?;
        }
        self.tick = tick;
        for i in 0..n {
            self.tags[i] = tags[i];
            self.valid[i] = packed_flags[i] & 1 != 0;
            self.dirty[i] = packed_flags[i] & 2 != 0;
            self.prefetched[i] = packed_flags[i] & 4 != 0;
            self.touched[i] = packed_flags[i] & 8 != 0;
            self.lru[i] = lru[i];
            self.ready_at[i] = ready_at[i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup_demand(0x1000, 0, false), LookupResult::Miss);
        c.fill(0x1000, 10, false, false);
        // Before the fill completes: in flight.
        assert_eq!(
            c.lookup_demand(0x1000, 5, false),
            LookupResult::InFlight {
                ready_at: 10,
                prefetch: false
            }
        );
        // After: hit.
        assert_eq!(
            c.lookup_demand(0x1000, 11, false),
            LookupResult::Hit {
                first_touch_of_prefetch: false
            }
        );
    }

    #[test]
    fn prefetched_line_first_touch_is_flagged_once() {
        let mut c = tiny();
        c.fill(0x2000, 0, true, false);
        assert_eq!(
            c.lookup_demand(0x2000, 1, false),
            LookupResult::Hit {
                first_touch_of_prefetch: true
            }
        );
        assert_eq!(
            c.lookup_demand(0x2000, 2, false),
            LookupResult::Hit {
                first_touch_of_prefetch: false
            }
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (4 sets, 64B lines -> set = block % 4).
        let a = 0x0000; // set 0
        let b = 0x0100; // set 0
        let d = 0x0200; // set 0
        c.fill(a, 0, false, false);
        c.fill(b, 0, false, false);
        c.lookup_demand(a, 1, false); // a now MRU
        let ev = c.fill(d, 2, false, false);
        assert!(ev.valid);
        // b should have been the victim: a still hits.
        assert!(matches!(
            c.lookup_demand(a, 3, false),
            LookupResult::Hit { .. }
        ));
        assert_eq!(c.lookup_demand(b, 3, false), LookupResult::Miss);
    }

    #[test]
    fn eviction_reports_useless_prefetch() {
        let mut c = tiny();
        c.fill(0x0000, 0, true, false); // prefetch, never touched
        c.fill(0x0100, 0, false, false);
        let ev = c.fill(0x0200, 0, false, false); // evicts the prefetch (LRU)
        assert!(ev.useless_prefetch);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.fill(0x0000, 0, false, false);
        c.lookup_demand(0x0000, 1, true); // dirty it
        c.fill(0x0100, 0, false, false);
        let ev = c.fill(0x0200, 0, false, false);
        assert!(ev.valid && ev.dirty);
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(0x0000, 0, false, false);
        c.fill(0x0000, 0, true, false);
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn demand_refill_of_prefetched_line_clears_prefetch_class() {
        // Regression: a demand fill racing a prefetched in-flight line used
        // to leave `prefetched`/`touched` untouched, so the line kept
        // counting as an untouched prefetch.
        let mut c = tiny();
        c.fill(0x1000, 50, true, false); // prefetch, in flight until 50
        c.fill(0x1000, 40, false, false); // demand fill for the same line
        assert_eq!(
            c.count_untouched_prefetches(),
            0,
            "demand fill claims the line"
        );
        // The next demand hit is an ordinary hit, not a prefetch first touch.
        assert_eq!(
            c.lookup_demand(0x1000, 60, false),
            LookupResult::Hit {
                first_touch_of_prefetch: false
            }
        );
        // Evicting it must not report a useless prefetch.
        let ev1 = c.fill(0x1100, 100, false, false);
        let ev2 = c.fill(0x1200, 100, false, false);
        assert!(!ev1.useless_prefetch && !ev2.useless_prefetch);
    }

    #[test]
    fn prefetch_refill_of_demand_line_keeps_demand_class() {
        let mut c = tiny();
        c.fill(0x2000, 0, false, false); // demand-owned line
        c.fill(0x2000, 10, true, false); // late prefetch refill
        assert_eq!(c.count_untouched_prefetches(), 0);
        assert_eq!(
            c.lookup_demand(0x2000, 20, false),
            LookupResult::Hit {
                first_touch_of_prefetch: false
            }
        );
    }

    #[test]
    fn untouched_prefetch_census() {
        let mut c = tiny();
        c.fill(0x0000, 0, true, false);
        c.fill(0x0040, 0, true, false);
        c.lookup_demand(0x0040, 1, false);
        assert_eq!(c.count_untouched_prefetches(), 1);
    }
}
