//! A set-associative, write-back, write-allocate cache array with true-LRU
//! replacement.
//!
//! The array stores only metadata (tags and flags); simulated programs never
//! store data. Each line remembers whether it was brought in by a prefetch
//! and whether a demand access has touched it since the fill, which drives
//! the Fig 9 access classification and the "prefetch never hit" statistic.

use crate::config::CacheConfig;
use semloc_trace::{snap_err, Addr, Cycle, SnapReader, SnapWriter, Snapshot};

/// One cache line's metadata.
#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Brought in by a prefetch (cleared once a demand access touches it).
    prefetched: bool,
    /// A demand access has touched the line since the fill.
    touched: bool,
    /// LRU timestamp (larger = more recent).
    lru: u64,
    /// Cycle at which the fill completes; before this the line is in flight.
    ready_at: Cycle,
}

/// Outcome of a cache lookup-and-update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// Present and filled: data available `latency` cycles after the access.
    Hit {
        /// The line was originally brought in by a prefetch and this is the
        /// first demand touch.
        first_touch_of_prefetch: bool,
    },
    /// Present but still in flight (fill outstanding): data available at
    /// `ready_at`.
    InFlight {
        /// Fill-completion cycle of the outstanding request.
        ready_at: Cycle,
        /// The outstanding request is a prefetch.
        prefetch: bool,
    },
    /// Not present.
    Miss,
}

/// What was evicted when a new line was inserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// A valid line was displaced.
    pub valid: bool,
    /// The displaced line was dirty (write-back generated).
    pub dirty: bool,
    /// The displaced line was prefetched and never touched by a demand.
    pub useless_prefetch: bool,
}

/// A set-associative cache array.
///
/// ```rust
/// use semloc_mem::{Cache, CacheConfig, LookupResult};
///
/// let mut l1 = Cache::new(CacheConfig::l1d());
/// assert_eq!(l1.lookup_demand(0x1000, 0, false), LookupResult::Miss);
/// l1.fill(0x1000, 22, false, false);
/// assert!(matches!(l1.lookup_demand(0x1000, 30, false), LookupResult::Hit { .. }));
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// All lines in one flat slice, set-major: set `s`, way `w` lives at
    /// `s * ways + w`. One allocation and one indirection per access
    /// instead of a `Vec<Vec<Line>>` pointer chase.
    lines: Box<[Line]>,
    ways: usize,
    set_mask: u64,
    line_shift: u32,
    tick: u64,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let ways = cfg.ways as usize;
        let line_shift = cfg.line_bytes.trailing_zeros();
        Cache {
            lines: vec![Line::default(); sets as usize * ways].into_boxed_slice(),
            ways,
            set_mask: sets - 1,
            line_shift,
            cfg,
            tick: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn index(&self, addr: Addr) -> (usize, u64) {
        let block = addr >> self.line_shift;
        (
            (block & self.set_mask) as usize,
            block >> self.set_mask.count_ones(),
        )
    }

    /// The ways of `set`, in way order.
    #[inline]
    fn set(&self, set: usize) -> &[Line] {
        &self.lines[set * self.ways..(set + 1) * self.ways]
    }

    /// The ways of `set`, mutably.
    #[inline]
    fn set_mut(&mut self, set: usize) -> &mut [Line] {
        let ways = self.ways;
        &mut self.lines[set * ways..(set + 1) * ways]
    }

    /// Look up `addr` at cycle `now` as a demand access, updating LRU and
    /// touch/prefetch flags.
    #[inline]
    pub fn lookup_demand(&mut self, addr: Addr, now: Cycle, is_write: bool) -> LookupResult {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        for line in self.set_mut(set) {
            if line.valid && line.tag == tag {
                line.lru = tick;
                if is_write {
                    line.dirty = true;
                }
                if line.ready_at > now {
                    return LookupResult::InFlight {
                        ready_at: line.ready_at,
                        prefetch: line.prefetched,
                    };
                }
                let first = line.prefetched && !line.touched;
                line.touched = true;
                line.prefetched = false;
                return LookupResult::Hit {
                    first_touch_of_prefetch: first,
                };
            }
        }
        LookupResult::Miss
    }

    /// Look up `addr` without modifying any state (for prefetch filtering
    /// and tests).
    #[inline]
    pub fn probe(&self, addr: Addr, now: Cycle) -> LookupResult {
        let (set, tag) = self.index(addr);
        for line in self.set(set) {
            if line.valid && line.tag == tag {
                if line.ready_at > now {
                    return LookupResult::InFlight {
                        ready_at: line.ready_at,
                        prefetch: line.prefetched,
                    };
                }
                return LookupResult::Hit {
                    first_touch_of_prefetch: line.prefetched && !line.touched,
                };
            }
        }
        LookupResult::Miss
    }

    /// Insert the line containing `addr`, becoming ready at `ready_at`.
    /// Returns what was evicted.
    #[inline]
    #[allow(clippy::expect_used)]
    pub fn fill(&mut self, addr: Addr, ready_at: Cycle, prefetched: bool, dirty: bool) -> Eviction {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let ways = self.set_mut(set);
        // Refill of a line already present (e.g. prefetch raced a demand):
        // just refresh, never duplicate tags within a set.
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= dirty;
            line.ready_at = line.ready_at.min(ready_at);
            if !prefetched {
                // A demand fill claims the line: it must no longer count as
                // an untouched prefetch (Fig 9 classes / `useless_prefetch`),
                // even if a prefetched fill for it is still in flight.
                line.prefetched = false;
                line.touched = true;
            }
            return Eviction {
                valid: false,
                dirty: false,
                useless_prefetch: false,
            };
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            // semloc-lint: allow(no-unwrap): associativity is validated > 0 at construction
            .expect("cache set has at least one way");
        let ev = Eviction {
            valid: victim.valid,
            dirty: victim.valid && victim.dirty,
            useless_prefetch: victim.valid && victim.prefetched && !victim.touched,
        };
        *victim = Line {
            tag,
            valid: true,
            dirty,
            prefetched,
            touched: false,
            lru: tick,
            ready_at,
        };
        ev
    }

    /// Count valid lines that were prefetched and never demand-touched
    /// (the residual "prefetch never hit" population at end of run).
    pub fn count_untouched_prefetches(&self) -> u64 {
        self.lines
            .iter()
            .filter(|l| l.valid && l.prefetched && !l.touched)
            .count() as u64
    }

    /// Number of valid lines (occupancy), for tests.
    pub fn valid_lines(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }
}

impl Snapshot for Cache {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"CACH", 1);
        w.put_u64(self.tick);
        w.put_len(self.lines.len());
        for l in self.lines.iter() {
            w.put_u64(l.tag);
            let flags = l.valid as u8
                | (l.dirty as u8) << 1
                | (l.prefetched as u8) << 2
                | (l.touched as u8) << 3;
            w.put_u8(flags);
            w.put_u64(l.lru);
            w.put_u64(l.ready_at);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"CACH", 1)?;
        let tick = r.get_u64()?;
        let n = r.get_len()?;
        if n != self.lines.len() {
            return Err(snap_err(format!(
                "cache snapshot has {n} lines, geometry expects {}",
                self.lines.len()
            )));
        }
        let mut lines = vec![Line::default(); n];
        for l in &mut lines {
            l.tag = r.get_u64()?;
            let flags = r.get_u8()?;
            if flags & !0x0F != 0 {
                return Err(snap_err(format!("cache line flags {flags:#04x} invalid")));
            }
            l.valid = flags & 1 != 0;
            l.dirty = flags & 2 != 0;
            l.prefetched = flags & 4 != 0;
            l.touched = flags & 8 != 0;
            l.lru = r.get_u64()?;
            l.ready_at = r.get_u64()?;
        }
        self.tick = tick;
        self.lines.copy_from_slice(&lines);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup_demand(0x1000, 0, false), LookupResult::Miss);
        c.fill(0x1000, 10, false, false);
        // Before the fill completes: in flight.
        assert_eq!(
            c.lookup_demand(0x1000, 5, false),
            LookupResult::InFlight {
                ready_at: 10,
                prefetch: false
            }
        );
        // After: hit.
        assert_eq!(
            c.lookup_demand(0x1000, 11, false),
            LookupResult::Hit {
                first_touch_of_prefetch: false
            }
        );
    }

    #[test]
    fn prefetched_line_first_touch_is_flagged_once() {
        let mut c = tiny();
        c.fill(0x2000, 0, true, false);
        assert_eq!(
            c.lookup_demand(0x2000, 1, false),
            LookupResult::Hit {
                first_touch_of_prefetch: true
            }
        );
        assert_eq!(
            c.lookup_demand(0x2000, 2, false),
            LookupResult::Hit {
                first_touch_of_prefetch: false
            }
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (4 sets, 64B lines -> set = block % 4).
        let a = 0x0000; // set 0
        let b = 0x0100; // set 0
        let d = 0x0200; // set 0
        c.fill(a, 0, false, false);
        c.fill(b, 0, false, false);
        c.lookup_demand(a, 1, false); // a now MRU
        let ev = c.fill(d, 2, false, false);
        assert!(ev.valid);
        // b should have been the victim: a still hits.
        assert!(matches!(
            c.lookup_demand(a, 3, false),
            LookupResult::Hit { .. }
        ));
        assert_eq!(c.lookup_demand(b, 3, false), LookupResult::Miss);
    }

    #[test]
    fn eviction_reports_useless_prefetch() {
        let mut c = tiny();
        c.fill(0x0000, 0, true, false); // prefetch, never touched
        c.fill(0x0100, 0, false, false);
        let ev = c.fill(0x0200, 0, false, false); // evicts the prefetch (LRU)
        assert!(ev.useless_prefetch);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.fill(0x0000, 0, false, false);
        c.lookup_demand(0x0000, 1, true); // dirty it
        c.fill(0x0100, 0, false, false);
        let ev = c.fill(0x0200, 0, false, false);
        assert!(ev.valid && ev.dirty);
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(0x0000, 0, false, false);
        c.fill(0x0000, 0, true, false);
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn demand_refill_of_prefetched_line_clears_prefetch_class() {
        // Regression: a demand fill racing a prefetched in-flight line used
        // to leave `prefetched`/`touched` untouched, so the line kept
        // counting as an untouched prefetch.
        let mut c = tiny();
        c.fill(0x1000, 50, true, false); // prefetch, in flight until 50
        c.fill(0x1000, 40, false, false); // demand fill for the same line
        assert_eq!(
            c.count_untouched_prefetches(),
            0,
            "demand fill claims the line"
        );
        // The next demand hit is an ordinary hit, not a prefetch first touch.
        assert_eq!(
            c.lookup_demand(0x1000, 60, false),
            LookupResult::Hit {
                first_touch_of_prefetch: false
            }
        );
        // Evicting it must not report a useless prefetch.
        let ev1 = c.fill(0x1100, 100, false, false);
        let ev2 = c.fill(0x1200, 100, false, false);
        assert!(!ev1.useless_prefetch && !ev2.useless_prefetch);
    }

    #[test]
    fn prefetch_refill_of_demand_line_keeps_demand_class() {
        let mut c = tiny();
        c.fill(0x2000, 0, false, false); // demand-owned line
        c.fill(0x2000, 10, true, false); // late prefetch refill
        assert_eq!(c.count_untouched_prefetches(), 0);
        assert_eq!(
            c.lookup_demand(0x2000, 20, false),
            LookupResult::Hit {
                first_touch_of_prefetch: false
            }
        );
    }

    #[test]
    fn untouched_prefetch_census() {
        let mut c = tiny();
        c.fill(0x0000, 0, true, false);
        c.fill(0x0040, 0, true, false);
        c.lookup_demand(0x0040, 1, false);
        assert_eq!(c.count_untouched_prefetches(), 1);
    }
}
