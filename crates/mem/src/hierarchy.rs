//! The two-level cache hierarchy with a prefetch-to-L1 port.
//!
//! [`Hierarchy::demand_access`] is the single entry point used by the core
//! model: it performs the L1/L2/DRAM lookup chain, merges into in-flight
//! fills through the MSHR files, classifies the access (Fig 9), invokes the
//! attached [`Prefetcher`] and dispatches whatever requests survive MSHR
//! pressure.

use crate::cache::{Cache, LookupResult};
use crate::classify::AccessClass;
use crate::config::MemConfig;
use crate::mshr::{MshrFile, MshrKind};
use crate::prefetcher::{MemPressure, PrefetchReq, Prefetcher};
use crate::shared_l2::SharedL2Handle;
use crate::stats::MemStats;
use semloc_trace::{AccessContext, Addr, Cycle, SnapReader, SnapWriter, Snapshot};

/// Result of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DemandResult {
    /// Cycle at which the loaded data is available to dependents.
    pub ready_at: Cycle,
    /// Fig 9 class of the access.
    pub class: AccessClass,
}

/// The simulated memory system: L1D + shared L2 + flat-latency DRAM, with an
/// attached prefetcher.
///
/// ```rust
/// use semloc_mem::{Hierarchy, MemConfig, NoPrefetch};
/// use semloc_trace::AccessContext;
///
/// let mut mem = Hierarchy::new(MemConfig::default(), NoPrefetch);
/// let cold = mem.demand_access(&AccessContext::bare(0, 0x400, 0x1000, false), 0);
/// assert_eq!(cold.ready_at, 322); // L1 2 + L2 20 + DRAM 300
/// let warm = mem.demand_access(&AccessContext::bare(1, 0x400, 0x1000, false), 400);
/// assert_eq!(warm.ready_at, 402); // L1 hit
/// ```
pub struct Hierarchy<P: Prefetcher> {
    // semloc-lint: allow(snapshot-field-coverage): construction-time config (latencies/geometry), not run state
    cfg: MemConfig,
    l1: Cache,
    l2: Cache,
    l1_mshrs: MshrFile,
    l2_mshrs: MshrFile,
    prefetcher: P,
    stats: MemStats,
    // semloc-lint: allow(snapshot-field-coverage): allocation-reuse scratch, cleared before every use in demand_access
    req_buf: Vec<PrefetchReq>,
    /// In interference mode the L2/DRAM legs go through the shared level
    /// instead of the private `l2`/`l2_mshrs` (which then stay empty).
    // semloc-lint: allow(snapshot-field-coverage): handle only — mem/SharedL2 is manifested and snapshotted once by the owning multi-core harness
    shared: Option<SharedL2Handle>,
}

impl<P: Prefetcher> Hierarchy<P> {
    /// Build the hierarchy described by `cfg` with `prefetcher` attached to
    /// the L1.
    pub fn new(cfg: MemConfig, prefetcher: P) -> Self {
        Hierarchy {
            l1: Cache::new(cfg.l1.clone()),
            l2: Cache::new(cfg.l2.clone()),
            l1_mshrs: MshrFile::new(cfg.l1.mshrs, cfg.l1.line_bytes),
            l2_mshrs: MshrFile::new(cfg.l2.mshrs, cfg.l2.line_bytes),
            cfg,
            prefetcher,
            stats: MemStats::default(),
            req_buf: Vec::with_capacity(8),
            shared: None,
        }
    }

    /// Build a hierarchy whose L2/DRAM legs go through `shared` — the
    /// private-L1 half of one core in the multi-core interference mode. The
    /// `cfg.l2` geometry is ignored (the shared level carries its own); only
    /// the L1 and `prefetch_mshr_reserve` fields matter.
    pub fn new_shared(cfg: MemConfig, prefetcher: P, shared: SharedL2Handle) -> Self {
        let mut h = Hierarchy::new(cfg, prefetcher);
        h.shared = Some(shared);
        h
    }

    /// The attached prefetcher.
    pub fn prefetcher(&self) -> &P {
        &self.prefetcher
    }

    /// Mutable access to the attached prefetcher (for end-of-run accounting).
    pub fn prefetcher_mut(&mut self) -> &mut P {
        &mut self.prefetcher
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Current memory pressure (free MSHRs). In shared mode the L2 figure
    /// reflects the contended shared file, so prefetchers back off when
    /// *other* cores saturate it.
    pub fn pressure(&mut self, now: Cycle) -> MemPressure {
        let l2_mshr_free = match &self.shared {
            Some(sh) => sh.borrow_mut().mshr_free(now),
            None => self.l2_mshrs.free(now),
        };
        MemPressure {
            l1_mshr_free: self.l1_mshrs.free(now),
            l2_mshr_free,
        }
    }

    /// Perform one demand access at cycle `now`, train the prefetcher, and
    /// dispatch its requests.
    pub fn demand_access(&mut self, ctx: &AccessContext, now: Cycle) -> DemandResult {
        self.stats.demand_accesses += 1;
        let result = self.demand_lookup(ctx.addr, ctx.is_write, now);

        // Train the prefetcher and dispatch what it asks for.
        let pressure = self.pressure(now);
        let mut reqs = std::mem::take(&mut self.req_buf);
        reqs.clear();
        self.prefetcher.on_access(ctx, pressure, &mut reqs);
        for req in &reqs {
            if req.shadow {
                continue;
            }
            let issued = self.try_issue_prefetch(req.addr, now);
            self.prefetcher.on_issue_result(req.tag, issued);
        }
        self.req_buf = reqs;
        result
    }

    /// The cache-lookup half of a demand access (no prefetcher involvement).
    fn demand_lookup(&mut self, addr: Addr, is_write: bool, now: Cycle) -> DemandResult {
        let l1_lat = self.cfg.l1.latency;
        match self.l1.lookup_demand(addr, now, is_write) {
            LookupResult::Hit {
                first_touch_of_prefetch: true,
            } => {
                self.stats.classes.record(AccessClass::HitPrefetchedLine);
                DemandResult {
                    ready_at: now + l1_lat,
                    class: AccessClass::HitPrefetchedLine,
                }
            }
            LookupResult::Hit {
                first_touch_of_prefetch: false,
            } => {
                self.stats.classes.record(AccessClass::HitOlderDemand);
                DemandResult {
                    ready_at: now + l1_lat,
                    class: AccessClass::HitOlderDemand,
                }
            }
            LookupResult::InFlight { ready_at, prefetch } => {
                // Missed the array but merged into an outstanding fill (an
                // MSHR hit — not a new miss).
                self.stats.l1_mshr_merges += 1;
                let class = if prefetch {
                    AccessClass::ShorterWait
                } else {
                    AccessClass::MissNotPrefetched
                };
                self.stats.classes.record(class);
                DemandResult {
                    ready_at: ready_at.max(now + l1_lat),
                    class,
                }
            }
            LookupResult::Miss => {
                self.stats.l1_misses += 1;
                let class = if self.prefetcher.was_predicted(addr) {
                    AccessClass::NonTimely
                } else {
                    AccessClass::MissNotPrefetched
                };
                self.stats.classes.record(class);
                let fill = self.fetch_line(addr, now, MshrKind::Demand, is_write);
                DemandResult {
                    ready_at: fill,
                    class,
                }
            }
        }
    }

    /// Bring `addr`'s line into the L1 (and L2 if needed), honouring MSHR
    /// capacity as backpressure. Returns the fill-completion cycle.
    fn fetch_line(&mut self, addr: Addr, now: Cycle, kind: MshrKind, dirty: bool) -> Cycle {
        let l1_lat = self.cfg.l1.latency;
        let l2_lat = self.cfg.l2.latency;

        // When the L1 MSHR file is full of demand reservations, the miss
        // waits for the earliest outstanding demand fill before its own
        // request can be tracked (demands are FIFO among themselves;
        // prefetches riding the L2's registers do not stall them).
        let mut start = now;
        while kind == MshrKind::Demand && self.l1_mshrs.free_for_demand(start) == 0 {
            match self.l1_mshrs.earliest_demand_fill() {
                Some(t) if t > start => start = t,
                _ => break,
            }
        }

        let l2_ready = match &self.shared {
            Some(sh) => {
                let (ready, missed) = sh
                    .borrow_mut()
                    .demand_leg(addr, start + l1_lat, kind, dirty);
                if missed {
                    self.stats.l2_misses += 1;
                }
                ready
            }
            None => match self.l2.lookup_demand(addr, start + l1_lat, dirty) {
                LookupResult::Hit { .. } => start + l1_lat + l2_lat,
                LookupResult::InFlight { ready_at, .. } => ready_at.max(start + l1_lat) + l2_lat,
                LookupResult::Miss => {
                    self.stats.l2_misses += 1;
                    // L2 MSHR backpressure (reservation-counted for demands).
                    let mut l2_start = start + l1_lat + l2_lat;
                    while kind == MshrKind::Demand && self.l2_mshrs.free_for_demand(l2_start) == 0 {
                        match self.l2_mshrs.earliest_demand_fill() {
                            Some(t) if t > l2_start => l2_start = t,
                            _ => break,
                        }
                    }
                    let fill = l2_start + self.cfg.dram_latency;
                    let _ = self.l2_mshrs.try_allocate(addr, fill, kind, l2_start);
                    let ev = self.l2.fill(addr, fill, false, false);
                    if ev.dirty {
                        self.stats.writebacks += 1;
                    }
                    fill
                }
            },
        };

        let _ = self.l1_mshrs.try_allocate(addr, l2_ready, kind, start);
        let ev = self
            .l1
            .fill(addr, l2_ready, kind == MshrKind::Prefetch, dirty);
        if ev.dirty {
            self.stats.writebacks += 1;
        }
        if ev.useless_prefetch {
            self.stats.classes.prefetch_never_hit += 1;
        }
        l2_ready
    }

    /// Attempt to dispatch a real prefetch for `addr` at cycle `now`.
    /// Returns `false` if it was filtered (already present/in flight) or
    /// rejected (MSHR pressure).
    fn try_issue_prefetch(&mut self, addr: Addr, now: Cycle) -> bool {
        if !matches!(self.l1.probe(addr, now), LookupResult::Miss) {
            self.stats.prefetches_filtered += 1;
            return false;
        }
        // Prefetches are second-class citizens: leave headroom for demands.
        if self.l1_mshrs.free(now) <= self.cfg.prefetch_mshr_reserve {
            self.stats.prefetches_rejected += 1;
            return false;
        }
        let l1_lat = self.cfg.l1.latency;
        let l2_lat = self.cfg.l2.latency;
        // Prefetches that miss the L2 ride the L2's MSHRs for the DRAM leg;
        // the L1 MSHR is only held for the final L2→L1 transfer window, so
        // the 4-entry L1 file does not serialize deep prefetching.
        let (fill, l1_window_start) = match &self.shared {
            Some(sh) => {
                let leg = sh.borrow_mut().prefetch_leg(addr, now + l1_lat, now);
                match leg {
                    Some(fill_window) => fill_window,
                    None => {
                        self.stats.prefetches_rejected += 1;
                        return false;
                    }
                }
            }
            None => match self.l2.lookup_demand(addr, now + l1_lat, false) {
                LookupResult::Hit { .. } => (now + l1_lat + l2_lat, now),
                LookupResult::InFlight { ready_at, .. } => {
                    let fill = ready_at.max(now + l1_lat) + l2_lat;
                    (fill, fill.saturating_sub(l2_lat))
                }
                LookupResult::Miss => {
                    if self.l2_mshrs.free(now) == 0 {
                        self.stats.prefetches_rejected += 1;
                        return false;
                    }
                    let fill = now + l1_lat + l2_lat + self.cfg.dram_latency;
                    let _ = self
                        .l2_mshrs
                        .try_allocate(addr, fill, MshrKind::Prefetch, now);
                    let ev = self.l2.fill(addr, fill, false, false);
                    if ev.dirty {
                        self.stats.writebacks += 1;
                    }
                    (fill, fill.saturating_sub(l2_lat))
                }
            },
        };
        let _ =
            self.l1_mshrs
                .try_allocate_window(addr, l1_window_start, fill, MshrKind::Prefetch, now);
        let ev = self.l1.fill(addr, fill, true, false);
        if ev.dirty {
            self.stats.writebacks += 1;
        }
        if ev.useless_prefetch {
            self.stats.classes.prefetch_never_hit += 1;
        }
        self.stats.prefetches_issued += 1;
        true
    }

    /// Finish the run: flush the prefetcher's end-of-run feedback and count
    /// prefetched-but-never-touched lines still resident in the L1 as wrong
    /// predictions.
    pub fn finish(&mut self) {
        self.prefetcher.finish();
        self.stats.classes.prefetch_never_hit += self.l1.count_untouched_prefetches();
    }
}

impl<P: Prefetcher> Snapshot for Hierarchy<P> {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"HIER", 1);
        self.l1.save(w);
        self.l2.save(w);
        self.l1_mshrs.save(w);
        self.l2_mshrs.save(w);
        self.stats.save(w);
        self.prefetcher.save_state(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"HIER", 1)?;
        self.l1.restore(r)?;
        self.l2.restore(r)?;
        self.l1_mshrs.restore(r)?;
        self.l2_mshrs.restore(r)?;
        self.stats.restore(r)?;
        self.prefetcher.restore_state(r)
    }
}

impl<P: Prefetcher> std::fmt::Debug for Hierarchy<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("prefetcher", &self.prefetcher.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::NoPrefetch;
    use semloc_trace::AccessContext;

    fn ctx(seq: u64, addr: Addr) -> AccessContext {
        AccessContext::bare(seq, 0x400000, addr, false)
    }

    fn h() -> Hierarchy<NoPrefetch> {
        Hierarchy::new(MemConfig::default(), NoPrefetch)
    }

    #[test]
    fn cold_miss_pays_full_chain() {
        let mut m = h();
        let r = m.demand_access(&ctx(0, 0x10000), 0);
        // 2 (L1) + 20 (L2) + 300 (DRAM) = 322.
        assert_eq!(r.ready_at, 322);
        assert_eq!(r.class, AccessClass::MissNotPrefetched);
        assert_eq!(m.stats().l1_misses, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn second_access_hits_after_fill() {
        let mut m = h();
        m.demand_access(&ctx(0, 0x10000), 0);
        let r = m.demand_access(&ctx(1, 0x10008), 400);
        assert_eq!(r.ready_at, 402);
        assert_eq!(r.class, AccessClass::HitOlderDemand);
        assert_eq!(m.stats().l1_misses, 1);
    }

    #[test]
    fn merge_into_inflight_demand() {
        let mut m = h();
        m.demand_access(&ctx(0, 0x10000), 0);
        // Same line, while the first fill is outstanding.
        let r = m.demand_access(&ctx(1, 0x10020), 10);
        assert_eq!(r.ready_at, 322);
        assert_eq!(m.stats().l1_misses, 1, "MSHR hit is not a new miss");
        assert_eq!(m.stats().l1_mshr_merges, 1);
        assert_eq!(
            m.stats().l2_misses,
            1,
            "merged access must not refetch from DRAM"
        );
    }

    #[test]
    fn l2_hit_after_l1_eviction_costs_l2_latency_only() {
        let mut m = h();
        // Fill a line, then flood the L1 set with conflicting lines to evict it.
        m.demand_access(&ctx(0, 0x10000), 0);
        // L1: 128 sets * 64B lines -> same set every 8 KiB. 8 ways.
        for i in 1..=8u64 {
            m.demand_access(&ctx(i, 0x10000 + i * 8192), 1000 + i * 1000);
        }
        let r = m.demand_access(&ctx(9, 0x10000), 100_000);
        // L1 miss, L2 hit: 2 + 20.
        assert_eq!(r.ready_at, 100_022);
    }

    struct OneShot {
        target: Addr,
        fired: bool,
    }
    impl Prefetcher for OneShot {
        fn name(&self) -> &'static str {
            "oneshot"
        }
        fn on_access(&mut self, _ctx: &AccessContext, _p: MemPressure, out: &mut Vec<PrefetchReq>) {
            if !self.fired {
                self.fired = true;
                out.push(PrefetchReq::real(self.target, 1));
            }
        }
        fn storage_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn timely_prefetch_yields_hit_prefetched_line() {
        let mut m = Hierarchy::new(
            MemConfig::default(),
            OneShot {
                target: 0x20000,
                fired: false,
            },
        );
        m.demand_access(&ctx(0, 0x10000), 0); // triggers the prefetch
        assert_eq!(m.stats().prefetches_issued, 1);
        let r = m.demand_access(&ctx(1, 0x20000), 1000);
        assert_eq!(r.class, AccessClass::HitPrefetchedLine);
        assert_eq!(r.ready_at, 1002);
    }

    #[test]
    fn late_demand_merges_into_inflight_prefetch() {
        let mut m = Hierarchy::new(
            MemConfig::default(),
            OneShot {
                target: 0x20000,
                fired: false,
            },
        );
        m.demand_access(&ctx(0, 0x10000), 0);
        // Demand arrives while the prefetch is still in flight.
        let r = m.demand_access(&ctx(1, 0x20000), 100);
        assert_eq!(r.class, AccessClass::ShorterWait);
        assert!(r.ready_at < 100 + 322, "merged wait must beat a full miss");
    }

    #[test]
    fn untouched_prefetch_counted_at_finish() {
        let mut m = Hierarchy::new(
            MemConfig::default(),
            OneShot {
                target: 0x20000,
                fired: false,
            },
        );
        m.demand_access(&ctx(0, 0x10000), 0);
        m.finish();
        assert_eq!(m.stats().classes.prefetch_never_hit, 1);
    }

    struct Greedy;
    impl Prefetcher for Greedy {
        fn name(&self) -> &'static str {
            "greedy"
        }
        fn on_access(&mut self, ctx: &AccessContext, _p: MemPressure, out: &mut Vec<PrefetchReq>) {
            for i in 1..=32u64 {
                out.push(PrefetchReq::real(ctx.addr + i * 64, i));
            }
        }
        fn storage_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn mshr_pressure_rejects_excess_prefetches() {
        let mut m = Hierarchy::new(MemConfig::default(), Greedy);
        m.demand_access(&ctx(0, 0x10000), 0);
        // DRAM-bound prefetches ride the 20 L2 MSHRs (one already taken by
        // the demand miss): at most 19 can be outstanding; the rest are
        // rejected.
        assert!(
            m.stats().prefetches_issued <= 20,
            "issued {}",
            m.stats().prefetches_issued
        );
        assert!(
            m.stats().prefetches_rejected >= 12,
            "rejected {}",
            m.stats().prefetches_rejected
        );
    }

    #[test]
    fn duplicate_prefetch_is_filtered() {
        struct Dup;
        impl Prefetcher for Dup {
            fn name(&self) -> &'static str {
                "dup"
            }
            fn on_access(
                &mut self,
                ctx: &AccessContext,
                _p: MemPressure,
                out: &mut Vec<PrefetchReq>,
            ) {
                // Prefetch the line we just accessed: always redundant.
                out.push(PrefetchReq::real(ctx.addr, 0));
            }
            fn storage_bytes(&self) -> usize {
                0
            }
        }
        let mut m = Hierarchy::new(MemConfig::default(), Dup);
        m.demand_access(&ctx(0, 0x10000), 0);
        assert_eq!(m.stats().prefetches_issued, 0);
        assert_eq!(m.stats().prefetches_filtered, 1);
    }

    #[test]
    fn shadow_requests_are_never_dispatched() {
        struct Shadow;
        impl Prefetcher for Shadow {
            fn name(&self) -> &'static str {
                "shadow"
            }
            fn on_access(
                &mut self,
                ctx: &AccessContext,
                _p: MemPressure,
                out: &mut Vec<PrefetchReq>,
            ) {
                out.push(PrefetchReq::shadow(ctx.addr + 64, 0));
            }
            fn storage_bytes(&self) -> usize {
                0
            }
        }
        let mut m = Hierarchy::new(MemConfig::default(), Shadow);
        m.demand_access(&ctx(0, 0x10000), 0);
        assert_eq!(m.stats().prefetches_issued, 0);
        assert_eq!(m.stats().prefetches_filtered, 0);
    }
}
