//! Memory-system configuration (Table 2 of the paper).

/// Geometry and latency of one cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Access latency in cycles.
    pub latency: u64,
    /// Number of miss-status holding registers.
    pub mshrs: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// `ways × line` sets, or non-power-of-two set count/line size).
    pub fn sets(&self) -> u64 {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a positive power of two"
        );
        assert_eq!(
            self.size_bytes,
            sets * self.ways as u64 * self.line_bytes,
            "inconsistent cache geometry"
        );
        sets
    }

    /// The paper's L1 data cache: 64 kB, 8-way, 2-cycle, 4 MSHRs.
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 2,
            mshrs: 4,
        }
    }

    /// The paper's shared L2: 2 MB, 16-way, 20-cycle, 20 MSHRs.
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
            latency: 20,
            mshrs: 20,
        }
    }
}

/// Full memory-system configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 cache.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles (Table 2: 300).
    pub dram_latency: u64,
    /// Minimum free L1 MSHRs required to issue a prefetch; below this the
    /// request is rejected (converted to a shadow operation by the
    /// prefetcher), per §4.2 "prefetch operations may be skipped if the
    /// memory system is stressed".
    pub prefetch_mshr_reserve: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            dram_latency: 300,
            prefetch_mshr_reserve: 1,
        }
    }
}

impl MemConfig {
    /// Average L1 miss penalty in cycles given an estimated L2 miss rate,
    /// per §4.3: `L2 latency + L2 miss rate × DRAM latency`.
    pub fn l1_miss_penalty(&self, l2_miss_rate: f64) -> f64 {
        self.l2.latency as f64 + l2_miss_rate * self.dram_latency as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_l1_geometry() {
        let l1 = CacheConfig::l1d();
        assert_eq!(l1.sets(), 128);
        assert_eq!(l1.latency, 2);
        assert_eq!(l1.mshrs, 4);
    }

    #[test]
    fn table2_l2_geometry() {
        let l2 = CacheConfig::l2();
        assert_eq!(l2.sets(), 2048);
        assert_eq!(l2.latency, 20);
        assert_eq!(l2.mshrs, 20);
    }

    #[test]
    fn miss_penalty_formula() {
        let c = MemConfig::default();
        // All L2 hits: penalty is the L2 latency.
        assert!((c.l1_miss_penalty(0.0) - 20.0).abs() < 1e-12);
        // Half the L1 misses also miss L2.
        assert!((c.l1_miss_penalty(0.5) - 170.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 1000,
            ways: 3,
            line_bytes: 64,
            latency: 1,
            mshrs: 1,
        }
        .sets();
    }
}
