//! Demand-access classification — the six categories of Fig 9.

/// Benefit class of one demand access (Fig 9 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// The demand hit the cache because a prefetch brought the line in.
    HitPrefetchedLine,
    /// The demand missed, but merged into an in-flight prefetch and waited
    /// less than a full miss.
    ShorterWait,
    /// The prefetcher had predicted this address, but the request had not
    /// been issued to memory before the demand arrived.
    NonTimely,
    /// A plain miss the prefetcher never predicted.
    MissNotPrefetched,
    /// The demand hit a line brought in by an older demand — no prefetch
    /// needed.
    HitOlderDemand,
}

impl AccessClass {
    /// All demand classes, in the order Fig 9 stacks them.
    pub const ALL: [AccessClass; 5] = [
        AccessClass::HitPrefetchedLine,
        AccessClass::ShorterWait,
        AccessClass::NonTimely,
        AccessClass::MissNotPrefetched,
        AccessClass::HitOlderDemand,
    ];

    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::HitPrefetchedLine => "Hit prefetched line",
            AccessClass::ShorterWait => "Shorter wait time",
            AccessClass::NonTimely => "Non-timely",
            AccessClass::MissNotPrefetched => "Miss not prefetched",
            AccessClass::HitOlderDemand => "Hit older demand",
        }
    }
}

/// Tallies of demand accesses per class, plus wrong prefetches (which Fig 9
/// counts *on top of* the demand accesses, pushing bars past 100%).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Demands that hit a prefetched line.
    pub hit_prefetched: u64,
    /// Demands that merged into an in-flight prefetch.
    pub shorter_wait: u64,
    /// Demands predicted but not issued in time.
    pub non_timely: u64,
    /// Demand misses never predicted.
    pub miss_not_prefetched: u64,
    /// Demands hitting lines fetched by older demands.
    pub hit_older_demand: u64,
    /// Prefetched lines evicted (or left at end of run) without any demand
    /// touch.
    pub prefetch_never_hit: u64,
}

impl ClassCounts {
    /// Record one demand access of the given class.
    pub fn record(&mut self, class: AccessClass) {
        match class {
            AccessClass::HitPrefetchedLine => self.hit_prefetched += 1,
            AccessClass::ShorterWait => self.shorter_wait += 1,
            AccessClass::NonTimely => self.non_timely += 1,
            AccessClass::MissNotPrefetched => self.miss_not_prefetched += 1,
            AccessClass::HitOlderDemand => self.hit_older_demand += 1,
        }
    }

    /// Total demand accesses recorded.
    pub fn demands(&self) -> u64 {
        self.hit_prefetched
            + self.shorter_wait
            + self.non_timely
            + self.miss_not_prefetched
            + self.hit_older_demand
    }

    /// Count for a class, as a fraction of demand accesses (Fig 9's y-axis).
    pub fn fraction(&self, class: AccessClass) -> f64 {
        let n = self.demands();
        if n == 0 {
            return 0.0;
        }
        let c = match class {
            AccessClass::HitPrefetchedLine => self.hit_prefetched,
            AccessClass::ShorterWait => self.shorter_wait,
            AccessClass::NonTimely => self.non_timely,
            AccessClass::MissNotPrefetched => self.miss_not_prefetched,
            AccessClass::HitOlderDemand => self.hit_older_demand,
        };
        c as f64 / n as f64
    }

    /// Wrong prefetches as a fraction of demand accesses (the >100% part of
    /// the Fig 9 bars).
    pub fn wrong_fraction(&self) -> f64 {
        let n = self.demands();
        if n == 0 {
            0.0
        } else {
            self.prefetch_never_hit as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fractions() {
        let mut c = ClassCounts::default();
        c.record(AccessClass::HitPrefetchedLine);
        c.record(AccessClass::HitPrefetchedLine);
        c.record(AccessClass::MissNotPrefetched);
        c.record(AccessClass::HitOlderDemand);
        c.prefetch_never_hit = 2;
        assert_eq!(c.demands(), 4);
        assert!((c.fraction(AccessClass::HitPrefetchedLine) - 0.5).abs() < 1e-12);
        assert!((c.wrong_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut c = ClassCounts::default();
        for (i, class) in AccessClass::ALL.into_iter().enumerate() {
            for _ in 0..=i {
                c.record(class);
            }
        }
        let sum: f64 = AccessClass::ALL.iter().map(|&cl| c.fraction(cl)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_are_zero() {
        let c = ClassCounts::default();
        assert_eq!(c.demands(), 0);
        assert_eq!(c.fraction(AccessClass::NonTimely), 0.0);
        assert_eq!(c.wrong_fraction(), 0.0);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            AccessClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), AccessClass::ALL.len());
    }
}
