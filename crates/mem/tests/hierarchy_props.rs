//! Property-based tests of the memory hierarchy's timing and accounting
//! invariants.

use proptest::prelude::*;

use semloc_mem::{
    AccessClass, Hierarchy, MemConfig, MemPressure, NoPrefetch, PrefetchReq, Prefetcher,
};
use semloc_trace::AccessContext;

fn ctx(seq: u64, addr: u64) -> AccessContext {
    AccessContext::bare(seq, 0x400, addr, false)
}

proptest! {
    /// Data is never ready before the L1 latency, never later than the full
    /// L1+L2+DRAM chain plus accumulated MSHR backpressure.
    #[test]
    fn ready_times_are_bounded(addrs in proptest::collection::vec(0u64..(1 << 24), 1..200)) {
        let cfg = MemConfig::default();
        let full_chain = cfg.l1.latency + cfg.l2.latency + cfg.dram_latency;
        let mut h = Hierarchy::new(cfg.clone(), NoPrefetch);
        let mut now = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            now += (i % 7) as u64;
            let r = h.demand_access(&ctx(i as u64, a), now);
            prop_assert!(r.ready_at >= now + cfg.l1.latency, "ready before L1 latency");
            // Worst case: every prior miss serialized through one MSHR.
            let bound = now + full_chain * (i as u64 + 1) + cfg.l2.latency * (i as u64 + 1);
            prop_assert!(r.ready_at <= bound, "ready {} beyond any physical bound {}", r.ready_at, bound);
        }
    }

    /// Without a prefetcher, no access is ever classified as benefiting
    /// from prefetching, and classes partition the demand stream.
    #[test]
    fn no_prefetcher_no_prefetch_classes(addrs in proptest::collection::vec(0u64..(1 << 22), 1..300)) {
        let mut h = Hierarchy::new(MemConfig::default(), NoPrefetch);
        for (i, &a) in addrs.iter().enumerate() {
            let r = h.demand_access(&ctx(i as u64, a), i as u64 * 3);
            prop_assert!(!matches!(r.class, AccessClass::HitPrefetchedLine | AccessClass::ShorterWait | AccessClass::NonTimely));
        }
        h.finish();
        let s = h.stats();
        prop_assert_eq!(s.classes.demands(), s.demand_accesses);
        prop_assert_eq!(s.classes.hit_prefetched, 0);
        prop_assert_eq!(s.classes.prefetch_never_hit, 0);
        prop_assert_eq!(s.prefetches_issued, 0);
    }

    /// Re-accessing the same line after its fill completes is always an L1
    /// hit (inclusion of recently fetched lines, no spurious invalidation).
    #[test]
    fn immediate_reuse_hits(addr in 0u64..(1 << 30)) {
        let mut h = Hierarchy::new(MemConfig::default(), NoPrefetch);
        let first = h.demand_access(&ctx(0, addr), 0);
        let second = h.demand_access(&ctx(1, addr), first.ready_at + 1);
        prop_assert_eq!(second.class, AccessClass::HitOlderDemand);
        prop_assert_eq!(second.ready_at, first.ready_at + 1 + 2);
    }
}

/// A prefetcher that requests exactly one configurable address per access.
struct OneAhead(u64);
impl Prefetcher for OneAhead {
    fn name(&self) -> &'static str {
        "one-ahead"
    }
    fn on_access(&mut self, c: &AccessContext, _p: MemPressure, out: &mut Vec<PrefetchReq>) {
        out.push(PrefetchReq::real(c.addr + self.0, 0));
    }
    fn storage_bytes(&self) -> usize {
        0
    }
}

proptest! {
    /// Prefetching never increases any demand access's latency class to
    /// something slower than the no-prefetch run would see for L1 hits:
    /// totals must stay consistent and issued ≥ 0 implied by types; most
    /// importantly, accounting identities hold under arbitrary streams.
    #[test]
    fn prefetch_accounting_identities(
        stride in prop_oneof![Just(64u64), Just(128u64), Just(256u64)],
        n in 10usize..300,
    ) {
        let mut h = Hierarchy::new(MemConfig::default(), OneAhead(stride));
        for i in 0..n {
            let a = 0x40_0000 + (i as u64) * stride;
            h.demand_access(&ctx(i as u64, a), (i as u64) * 8);
        }
        h.finish();
        let s = h.stats();
        prop_assert_eq!(s.demand_accesses, n as u64);
        prop_assert!(s.prefetches_issued + s.prefetches_filtered + s.prefetches_rejected <= n as u64);
        // Every wrong prefetch was once an issued prefetch.
        prop_assert!(s.classes.prefetch_never_hit <= s.prefetches_issued);
        // Useful classes cannot exceed issued prefetches (each line helps
        // one first-touch, merges bounded by demands).
        prop_assert!(s.classes.hit_prefetched <= n as u64);
    }
}

#[test]
fn pressure_reflects_outstanding_fills() {
    let mut h = Hierarchy::new(MemConfig::default(), NoPrefetch);
    let free0 = h.pressure(0).l1_mshr_free;
    h.demand_access(&ctx(0, 0x100000), 0);
    h.demand_access(&ctx(1, 0x200000), 1);
    let free2 = h.pressure(2).l1_mshr_free;
    assert!(
        free2 <= free0 - 2,
        "two outstanding misses must consume MSHRs"
    );
    // After everything fills, pressure recovers.
    let free_late = h.pressure(10_000).l1_mshr_free;
    assert_eq!(free_late, free0);
}
