//! Reward shaping for delayed prefetch feedback (§4.3 and Fig 5).
//!
//! A prediction's *hit depth* is the number of demand memory accesses
//! between issuing the prediction and the demand that hit it. Useful
//! prefetches land inside the effective prefetch window — early enough to
//! hide the L1 miss penalty, late enough not to be evicted first. The
//! paper's reward is **bell-shaped over the window with negative edges**:
//! repetitions at useful distances are promoted; relations that drift
//! outside the window are demoted; predictions that expire unhit receive a
//! negative reward.
//!
//! Beyond the paper's bell, this module carries the alternative shapes the
//! policy tournament sweeps: a gaussian bell with a *multiplicative*
//! out-of-window penalty (after the gem5 `context_based_prefetcher`
//! variant) and Pythia-style discrete reward levels. [`RewardShape`] is the
//! closed, config-storable sum of all of them.

/// Maps a hit depth (in demand memory accesses) to a score delta.
pub trait RewardFunction {
    /// Reward for a prediction hit `depth` accesses after issue.
    fn reward(&self, depth: u32) -> i32;

    /// Reward for a prediction that expired without being hit.
    fn expiry(&self) -> i32;

    /// The window `[lo, hi]` of depths considered timely (positive reward).
    fn window(&self) -> (u32, u32);

    /// The smallest depth `S` with `reward(d) == reward(S)` for every
    /// `d >= S` — i.e. where the shaping has flattened into its constant
    /// tail. Lets [`RewardLut`] tabulate the function exactly.
    fn stable_depth(&self) -> u32;
}

/// An exact table of a [`RewardFunction`]: `reward(d)` for every depth up
/// to [`RewardFunction::stable_depth`], with deeper lookups clamped onto
/// the (constant) tail entry. Bit-identical to evaluating the function —
/// the bell's two `exp()` calls per prefetch-queue hit become one clamped
/// load, and batched lookups can go through `semloc_accel::gather_i32` on
/// the raw [`RewardLut::table`].
#[derive(Clone, Debug, PartialEq)]
pub struct RewardLut {
    table: Vec<i32>,
    expiry: i32,
}

impl RewardLut {
    /// Tabulate `f` exactly.
    pub fn new(f: &dyn RewardFunction) -> Self {
        let table: Vec<i32> = (0..=f.stable_depth()).map(|d| f.reward(d)).collect();
        RewardLut {
            table,
            expiry: f.expiry(),
        }
    }

    /// `f.reward(depth)`, for any depth.
    #[inline]
    pub fn reward(&self, depth: u32) -> i32 {
        self.table[(depth as usize).min(self.table.len() - 1)]
    }

    /// `f.expiry()`.
    #[inline]
    pub fn expiry(&self) -> i32 {
        self.expiry
    }

    /// The raw table for batched gathers: `table()[min(d, len-1)]` is the
    /// reward at depth `d` (exactly `semloc_accel::gather_i32` semantics).
    #[inline]
    pub fn table(&self) -> &[i32] {
        &self.table
    }
}

/// The paper's bell-shaped reward (Fig 5).
///
/// Inside the window the reward is a quadratic bell peaking at the target
/// prefetch distance and degrading gracefully toward the window edges; just
/// outside the window it dips negative (demoting relations that shifted out
/// of usefulness) and decays toward zero far away.
/// ```rust
/// use semloc_bandit::{BellReward, RewardFunction};
///
/// let bell = BellReward::paper_default();
/// assert_eq!(bell.window(), (18, 50));
/// assert_eq!(bell.reward(34), 16);            // peak at the center
/// assert!(bell.reward(60) < 0);               // too early: demoted
/// assert!(bell.reward(10) >= 0);              // late: partial merge credit
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BellReward {
    lo: u32,
    hi: u32,
    peak: i32,
    edge_penalty: i32,
    expiry_penalty: i32,
}

impl BellReward {
    /// A bell over `[lo, hi]` with the given peak reward, edge penalty and
    /// expiry penalty.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, or `peak <= 0`, or penalties are positive.
    pub fn new(lo: u32, hi: u32, peak: i32, edge_penalty: i32, expiry_penalty: i32) -> Self {
        assert!(lo < hi, "window must be non-empty");
        assert!(peak > 0, "peak reward must be positive");
        assert!(
            edge_penalty <= 0 && expiry_penalty <= 0,
            "penalties must be non-positive"
        );
        BellReward {
            lo,
            hi,
            peak,
            edge_penalty,
            expiry_penalty,
        }
    }

    /// The paper's configuration: positive window 18–50 accesses (§7.1),
    /// centered on the ~30-access average target distance (§4.3).
    pub fn paper_default() -> Self {
        BellReward::new(18, 50, 16, -8, -4)
    }

    /// The peak reward at the window center.
    pub fn peak(&self) -> i32 {
        self.peak
    }

    /// The (non-positive) penalty applied just past the early edge.
    pub fn edge_penalty(&self) -> i32 {
        self.edge_penalty
    }

    /// Build a bell for a measured target prefetch distance, per §4.3:
    /// `distance = L1 miss penalty × IPC × Prob(mem op)`. The window spans
    /// 0.6×–1.67× the target, mirroring the paper's 18–50 around ~30.
    pub fn for_target_distance(target: f64) -> Self {
        let target = target.clamp(4.0, 512.0);
        let lo = (target * 0.6).round() as u32;
        let hi = (target * 5.0 / 3.0).round() as u32;
        BellReward::new(lo.max(1), hi.max(lo.max(1) + 2), 16, -8, -4)
    }
}

impl RewardFunction for BellReward {
    fn reward(&self, depth: u32) -> i32 {
        let (lo, hi) = (self.lo as f64, self.hi as f64);
        let d = depth as f64;
        let center = (lo + hi) / 2.0;
        let sigma = (hi - lo) / 2.0;
        if depth <= self.hi {
            // Gaussian bell peaking at the window center. Its late-side
            // tail stays (mildly) positive: a prediction hit only a few
            // accesses after issue still shortens the demand's wait by
            // merging into the in-flight fill, so near-window-late
            // repetitions deserve partial credit rather than demotion.
            let x = (d - center) / sigma;
            ((self.peak as f64) * (-x * x).exp()).round() as i32
        } else {
            // Early side: negative edge decaying toward zero away from the
            // window — data fetched too early risks eviction before use,
            // and pairs whose relation drifted out of the window are
            // demoted (§4.3).
            let dist = d - hi;
            let decay = (-dist / 16.0).exp();
            ((self.edge_penalty as f64) * decay).round() as i32
        }
    }

    fn expiry(&self) -> i32 {
        self.expiry_penalty
    }

    fn window(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    fn stable_depth(&self) -> u32 {
        // Past `hi` the penalty magnitude decays strictly toward zero, so
        // the first depth whose rounded value is 0 starts the constant
        // tail. The walk is short: even an extreme penalty needs only
        // ~16·ln(2·|edge|) extra depths to round to zero.
        let mut d = self.hi + 1;
        while self.reward(d) != 0 {
            d += 1;
        }
        d
    }
}

/// A flat step reward (ablation A2): full peak anywhere inside the window,
/// constant penalty outside. Removes the paper's graceful degradation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepReward {
    lo: u32,
    hi: u32,
    peak: i32,
    penalty: i32,
}

impl StepReward {
    /// A step over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `peak <= 0` or `penalty > 0`.
    pub fn new(lo: u32, hi: u32, peak: i32, penalty: i32) -> Self {
        assert!(lo < hi && peak > 0 && penalty <= 0);
        StepReward {
            lo,
            hi,
            peak,
            penalty,
        }
    }

    /// Step analogue of [`BellReward::paper_default`].
    pub fn paper_default() -> Self {
        StepReward::new(18, 50, 16, -8)
    }
}

impl RewardFunction for StepReward {
    fn reward(&self, depth: u32) -> i32 {
        if depth >= self.lo && depth <= self.hi {
            self.peak
        } else {
            self.penalty
        }
    }

    fn expiry(&self) -> i32 {
        self.penalty / 2
    }

    fn window(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    fn stable_depth(&self) -> u32 {
        // Constant `penalty` everywhere past the window's upper edge.
        self.hi + 1
    }
}

impl StepReward {
    /// The flat in-window reward.
    pub fn peak(&self) -> i32 {
        self.peak
    }

    /// The flat out-of-window penalty.
    pub fn penalty(&self) -> i32 {
        self.penalty
    }
}

/// A gaussian bell with a **multiplicative** out-of-window penalty, after
/// the gem5 `context_based_prefetcher` variant: inside `center ± 2σ` the
/// reward is `round(scale · exp(−(d−center)² / 2σ²))`; outside it the same
/// gaussian magnitude is *negated and amplified* by `penalty_factor`, so a
/// hit just past the window is punished hard while a far-off hit (tiny
/// gaussian) fades to zero on its own.
///
/// Parameters are integers (lint D6 / golden-digest determinism); the
/// gaussian is evaluated in `f64` and rounded exactly like [`BellReward`],
/// so the [`RewardLut`] tabulation stays bit-exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaussianPenaltyReward {
    center: u32,
    sigma: u32,
    scale: i32,
    penalty_factor: i32,
    expiry_penalty: i32,
}

impl GaussianPenaltyReward {
    /// A gaussian-with-penalty shape centered on `center` with width
    /// `sigma`, peak `scale`, out-of-window amplification `penalty_factor`
    /// and expiry penalty `expiry_penalty`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma == 0`, `scale <= 0`, `penalty_factor < 0`, or
    /// `expiry_penalty > 0`.
    pub fn new(
        center: u32,
        sigma: u32,
        scale: i32,
        penalty_factor: i32,
        expiry_penalty: i32,
    ) -> Self {
        assert!(sigma >= 1, "gaussian width must be positive");
        assert!(scale > 0, "peak scale must be positive");
        assert!(penalty_factor >= 0, "penalty factor must be non-negative");
        assert!(expiry_penalty <= 0, "expiry penalty must be non-positive");
        GaussianPenaltyReward {
            center,
            sigma,
            scale,
            penalty_factor,
            expiry_penalty,
        }
    }

    /// The reference-variant parameters (center 30, σ 10) mapped onto this
    /// simulator's i8 score rails: the source uses scale 100 / factor 20,
    /// which would pin every score at the ±127 saturation rails and erase
    /// the ranking the CST replaces by; 16 / 4 keeps the identical shape at
    /// the paper bell's dynamic range.
    pub fn snippet_default() -> Self {
        GaussianPenaltyReward::new(30, 10, 16, 4, -4)
    }

    /// The gaussian center (peak depth).
    pub fn center(&self) -> u32 {
        self.center
    }

    /// The gaussian width σ.
    pub fn sigma(&self) -> u32 {
        self.sigma
    }

    /// The peak scale.
    pub fn scale(&self) -> i32 {
        self.scale
    }

    /// The out-of-window amplification factor.
    pub fn penalty_factor(&self) -> i32 {
        self.penalty_factor
    }

    /// The raw gaussian magnitude at `depth` (before the window sign).
    fn gaussian(&self, depth: u32) -> i32 {
        let d = depth as f64;
        let center = self.center as f64;
        let sigma = self.sigma as f64;
        let x = d - center;
        ((self.scale as f64) * (-(x * x) / (2.0 * sigma * sigma)).exp()).round() as i32
    }
}

impl RewardFunction for GaussianPenaltyReward {
    fn reward(&self, depth: u32) -> i32 {
        let (lo, hi) = self.window();
        let g = self.gaussian(depth);
        if depth < lo || depth > hi {
            -g * self.penalty_factor
        } else {
            g
        }
    }

    fn expiry(&self) -> i32 {
        self.expiry_penalty
    }

    fn window(&self) -> (u32, u32) {
        let lo = self.center.saturating_sub(2 * self.sigma).max(1);
        (lo, self.center + 2 * self.sigma)
    }

    fn stable_depth(&self) -> u32 {
        // Past `hi` the reward is −penalty_factor·gaussian, and the
        // gaussian magnitude decays strictly toward zero, so the walk
        // terminates at the first depth that rounds to 0 (≈ center +
        // σ·√(2·ln(2·scale·factor)) — a few σ past the window).
        let (_, hi) = self.window();
        let mut d = hi + 1;
        while self.reward(d) != 0 {
            d += 1;
        }
        d
    }
}

/// Pythia-style **discrete reward levels** (arXiv 2109.12021, Table 4):
/// instead of a continuous shape over depth, every feedback event maps to
/// one of four levels — accurate-and-timely, accurate-but-late, too-early
/// (out the far side of the window), and never-hit (expiry). Pythia's
/// published magnitudes (+20/+12/−8/−14) are scaled onto this simulator's
/// i8 score rails, preserving their ordering and sign structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PythiaLevelReward {
    lo: u32,
    hi: u32,
    timely: i32,
    late: i32,
    early: i32,
    expiry_penalty: i32,
}

impl PythiaLevelReward {
    /// Discrete levels over the window `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`, `timely > late > 0`, and the early/expiry
    /// levels are non-positive with expiry at least as harsh as early.
    pub fn new(lo: u32, hi: u32, timely: i32, late: i32, early: i32, expiry_penalty: i32) -> Self {
        assert!(lo < hi, "window must be non-empty");
        assert!(
            timely > late && late > 0,
            "levels must rank timely > late > 0"
        );
        assert!(
            early <= 0 && expiry_penalty <= early,
            "early/expiry levels must be non-positive, expiry the harshest"
        );
        PythiaLevelReward {
            lo,
            hi,
            timely,
            late,
            early,
            expiry_penalty,
        }
    }

    /// Pythia's level structure over the paper's 18–50 window, scaled from
    /// +20/+12/−8/−14 onto the bell's peak-16 dynamic range.
    pub fn pythia_default() -> Self {
        PythiaLevelReward::new(18, 50, 16, 10, -6, -12)
    }

    /// The accurate-and-timely level.
    pub fn timely(&self) -> i32 {
        self.timely
    }

    /// The accurate-but-late level.
    pub fn late(&self) -> i32 {
        self.late
    }

    /// The too-early level.
    pub fn early(&self) -> i32 {
        self.early
    }
}

impl RewardFunction for PythiaLevelReward {
    fn reward(&self, depth: u32) -> i32 {
        if depth < self.lo {
            self.late
        } else if depth <= self.hi {
            self.timely
        } else {
            self.early
        }
    }

    fn expiry(&self) -> i32 {
        self.expiry_penalty
    }

    fn window(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    fn stable_depth(&self) -> u32 {
        // Constant `early` level everywhere past the window.
        self.hi + 1
    }
}

/// The closed sum of every reward shape a pipeline can be configured with.
///
/// This is what `ContextConfig` stores: a concrete, cloneable, comparable
/// value (no trait objects in config structs), delegating
/// [`RewardFunction`] to the selected shape. [`RewardShape::default`] is
/// the paper bell — the composition the golden digest pins.
#[derive(Clone, Debug, PartialEq)]
pub enum RewardShape {
    /// The paper's bell (Fig 5) — the default.
    PaperBell(BellReward),
    /// Flat step (ablation A2).
    Step(StepReward),
    /// Gaussian bell with multiplicative out-of-window penalty.
    GaussianPenalty(GaussianPenaltyReward),
    /// Pythia-style discrete levels.
    PythiaLevel(PythiaLevelReward),
}

impl Default for RewardShape {
    fn default() -> Self {
        RewardShape::PaperBell(BellReward::paper_default())
    }
}

impl RewardShape {
    /// Short label for leaderboards and cell names.
    pub fn label(&self) -> &'static str {
        match self {
            RewardShape::PaperBell(_) => "bell",
            RewardShape::Step(_) => "step",
            RewardShape::GaussianPenalty(_) => "gauss-pen",
            RewardShape::PythiaLevel(_) => "pythia-lvl",
        }
    }
}

impl RewardFunction for RewardShape {
    fn reward(&self, depth: u32) -> i32 {
        match self {
            RewardShape::PaperBell(r) => r.reward(depth),
            RewardShape::Step(r) => r.reward(depth),
            RewardShape::GaussianPenalty(r) => r.reward(depth),
            RewardShape::PythiaLevel(r) => r.reward(depth),
        }
    }

    fn expiry(&self) -> i32 {
        match self {
            RewardShape::PaperBell(r) => r.expiry(),
            RewardShape::Step(r) => r.expiry(),
            RewardShape::GaussianPenalty(r) => r.expiry(),
            RewardShape::PythiaLevel(r) => r.expiry(),
        }
    }

    fn window(&self) -> (u32, u32) {
        match self {
            RewardShape::PaperBell(r) => r.window(),
            RewardShape::Step(r) => r.window(),
            RewardShape::GaussianPenalty(r) => r.window(),
            RewardShape::PythiaLevel(r) => r.window(),
        }
    }

    fn stable_depth(&self) -> u32 {
        match self {
            RewardShape::PaperBell(r) => r.stable_depth(),
            RewardShape::Step(r) => r.stable_depth(),
            RewardShape::GaussianPenalty(r) => r.stable_depth(),
            RewardShape::PythiaLevel(r) => r.stable_depth(),
        }
    }
}

impl From<BellReward> for RewardShape {
    fn from(r: BellReward) -> Self {
        RewardShape::PaperBell(r)
    }
}

impl From<StepReward> for RewardShape {
    fn from(r: StepReward) -> Self {
        RewardShape::Step(r)
    }
}

impl From<GaussianPenaltyReward> for RewardShape {
    fn from(r: GaussianPenaltyReward) -> Self {
        RewardShape::GaussianPenalty(r)
    }
}

impl From<PythiaLevelReward> for RewardShape {
    fn from(r: PythiaLevelReward) -> Self {
        RewardShape::PythiaLevel(r)
    }
}

impl semloc_trace::Snapshot for RewardShape {
    fn save(&self, w: &mut semloc_trace::SnapWriter) {
        w.section(*b"RWSH", 1);
        match self {
            RewardShape::PaperBell(r) => {
                w.put_u8(0);
                let (lo, hi) = r.window();
                w.put_u32(lo);
                w.put_u32(hi);
                w.put_i64(r.peak() as i64);
                w.put_i64(r.edge_penalty() as i64);
                w.put_i64(r.expiry() as i64);
            }
            RewardShape::Step(r) => {
                w.put_u8(1);
                let (lo, hi) = r.window();
                w.put_u32(lo);
                w.put_u32(hi);
                w.put_i64(r.peak() as i64);
                w.put_i64(r.penalty() as i64);
            }
            RewardShape::GaussianPenalty(r) => {
                w.put_u8(2);
                w.put_u32(r.center());
                w.put_u32(r.sigma());
                w.put_i64(r.scale() as i64);
                w.put_i64(r.penalty_factor() as i64);
                w.put_i64(r.expiry() as i64);
            }
            RewardShape::PythiaLevel(r) => {
                w.put_u8(3);
                let (lo, hi) = r.window();
                w.put_u32(lo);
                w.put_u32(hi);
                w.put_i64(r.timely() as i64);
                w.put_i64(r.late() as i64);
                w.put_i64(r.early() as i64);
                w.put_i64(r.expiry() as i64);
            }
        }
    }

    fn restore(&mut self, r: &mut semloc_trace::SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"RWSH", 1)?;
        let get_i32 = |v: i64| -> std::io::Result<i32> {
            i32::try_from(v)
                .map_err(|_| semloc_trace::snap_err(format!("reward parameter {v} out of range")))
        };
        *self = match r.get_u8()? {
            0 => {
                let (lo, hi) = (r.get_u32()?, r.get_u32()?);
                let peak = get_i32(r.get_i64()?)?;
                let edge = get_i32(r.get_i64()?)?;
                let expiry = get_i32(r.get_i64()?)?;
                if lo >= hi || peak <= 0 || edge > 0 || expiry > 0 {
                    return Err(semloc_trace::snap_err("malformed bell reward snapshot"));
                }
                RewardShape::PaperBell(BellReward::new(lo, hi, peak, edge, expiry))
            }
            1 => {
                let (lo, hi) = (r.get_u32()?, r.get_u32()?);
                let peak = get_i32(r.get_i64()?)?;
                let penalty = get_i32(r.get_i64()?)?;
                if lo >= hi || peak <= 0 || penalty > 0 {
                    return Err(semloc_trace::snap_err("malformed step reward snapshot"));
                }
                RewardShape::Step(StepReward::new(lo, hi, peak, penalty))
            }
            2 => {
                let (center, sigma) = (r.get_u32()?, r.get_u32()?);
                let scale = get_i32(r.get_i64()?)?;
                let factor = get_i32(r.get_i64()?)?;
                let expiry = get_i32(r.get_i64()?)?;
                if sigma == 0 || scale <= 0 || factor < 0 || expiry > 0 {
                    return Err(semloc_trace::snap_err(
                        "malformed gaussian-penalty reward snapshot",
                    ));
                }
                RewardShape::GaussianPenalty(GaussianPenaltyReward::new(
                    center, sigma, scale, factor, expiry,
                ))
            }
            3 => {
                let (lo, hi) = (r.get_u32()?, r.get_u32()?);
                let timely = get_i32(r.get_i64()?)?;
                let late = get_i32(r.get_i64()?)?;
                let early = get_i32(r.get_i64()?)?;
                let expiry = get_i32(r.get_i64()?)?;
                if lo >= hi || timely <= late || late <= 0 || early > 0 || expiry > early {
                    return Err(semloc_trace::snap_err(
                        "malformed pythia-level reward snapshot",
                    ));
                }
                RewardShape::PythiaLevel(PythiaLevelReward::new(
                    lo, hi, timely, late, early, expiry,
                ))
            }
            d => {
                return Err(semloc_trace::snap_err(format!(
                    "unknown reward-shape discriminant {d}"
                )))
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_peaks_at_center_and_degrades_toward_edges() {
        let b = BellReward::paper_default();
        assert_eq!(b.reward(34), 16);
        assert!(b.reward(18) < b.reward(34) / 2);
        assert!(b.reward(50) < b.reward(34) / 2);
        assert!(b.reward(30) > b.reward(20));
        assert!(b.reward(30) > b.reward(48));
    }

    #[test]
    fn late_side_keeps_partial_merge_credit() {
        // A hit only a few accesses after issue still shortened the
        // demand's wait (it merged into the in-flight fill), so the late
        // tail is small-but-positive, never punitive.
        let b = BellReward::paper_default();
        assert!(b.reward(10) >= 0);
        assert!(b.reward(10) < b.reward(30));
        assert!(b.reward(2) <= b.reward(12));
    }

    #[test]
    fn early_side_is_negative_and_decays() {
        let b = BellReward::paper_default();
        assert!(b.reward(51) < 0);
        assert!(
            b.reward(51) <= b.reward(120),
            "penalty decays with distance"
        );
        assert!(b.expiry() < 0);
    }

    #[test]
    fn bell_is_monotone_up_then_down() {
        let b = BellReward::paper_default();
        let vals: Vec<i32> = (2..=50).map(|d| b.reward(d)).collect();
        let peak_pos = vals
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap();
        assert!(vals[..=peak_pos].windows(2).all(|w| w[0] <= w[1]));
        assert!(vals[peak_pos..].windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn target_distance_scales_window() {
        let b = BellReward::for_target_distance(30.0);
        assert_eq!(b.window(), (18, 50));
        let fast = BellReward::for_target_distance(12.0);
        assert_eq!(fast.window(), (7, 20));
        // Degenerate targets still yield a valid window.
        let tiny = BellReward::for_target_distance(0.0);
        let (lo, hi) = tiny.window();
        assert!(lo < hi);
    }

    #[test]
    fn step_is_flat() {
        let s = StepReward::paper_default();
        assert_eq!(s.reward(18), s.reward(34));
        assert_eq!(s.reward(0), s.reward(200));
        assert!(s.reward(0) < 0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn empty_window_rejected() {
        BellReward::new(10, 10, 1, 0, 0);
    }

    #[test]
    fn lut_is_exact_for_every_depth() {
        for bell in [
            BellReward::paper_default(),
            BellReward::for_target_distance(12.0),
            BellReward::for_target_distance(512.0),
            BellReward::new(1, 127, 16, 0, -4), // flat-edge ablation shape
        ] {
            let lut = RewardLut::new(&bell);
            for d in 0..4096u32 {
                assert_eq!(lut.reward(d), bell.reward(d), "bell depth {d}");
            }
            assert_eq!(lut.expiry(), bell.expiry());
        }
        let step = StepReward::paper_default();
        let lut = RewardLut::new(&step);
        for d in 0..4096u32 {
            assert_eq!(lut.reward(d), step.reward(d), "step depth {d}");
        }
        assert_eq!(lut.expiry(), step.expiry());
    }

    #[test]
    fn lut_table_tail_is_the_stable_value() {
        let bell = BellReward::paper_default();
        let lut = RewardLut::new(&bell);
        let last = *lut.table().last().unwrap();
        assert_eq!(last, 0, "bell decays to zero");
        assert_eq!(lut.table().len() as u32, bell.stable_depth() + 1);
        assert_eq!(lut.table()[34], 16, "peak preserved");
    }

    #[test]
    fn gaussian_penalty_flips_sign_outside_the_window() {
        let g = GaussianPenaltyReward::snippet_default();
        let (lo, hi) = g.window();
        assert_eq!((lo, hi), (10, 50));
        assert_eq!(g.reward(30), 16, "peak at center");
        assert!(g.reward(lo) > 0 && g.reward(hi) > 0, "in-window positive");
        // Just outside the window the *same* gaussian magnitude comes back
        // negated and amplified — the multiplicative penalty.
        assert!(g.reward(hi + 1) < 0);
        assert_eq!(g.reward(hi + 1), -4 * g_magnitude(&g, hi + 1));
        assert!(g.reward(lo - 1) < 0, "early side is punished too");
        // Far away the gaussian itself fades, so the penalty self-limits.
        assert_eq!(g.reward(200), 0);
        assert!(g.expiry() < 0);
    }

    fn g_magnitude(g: &GaussianPenaltyReward, depth: u32) -> i32 {
        let d = depth as f64 - g.center() as f64;
        let s = g.sigma() as f64;
        ((g.scale() as f64) * (-(d * d) / (2.0 * s * s)).exp()).round() as i32
    }

    #[test]
    fn gaussian_penalty_stable_depth_terminates_past_the_window() {
        let g = GaussianPenaltyReward::snippet_default();
        let stable = g.stable_depth();
        assert!(stable > g.window().1);
        assert_eq!(g.reward(stable), 0);
        assert_ne!(g.reward(stable - 1), 0);
        // A narrow, tall shape still terminates.
        let sharp = GaussianPenaltyReward::new(8, 1, 100, 20, -1);
        assert_eq!(sharp.reward(sharp.stable_depth()), 0);
    }

    #[test]
    fn pythia_levels_are_discrete_and_ranked() {
        let p = PythiaLevelReward::pythia_default();
        assert_eq!(p.window(), (18, 50));
        // One level per region, constant within it.
        assert_eq!(p.reward(18), p.reward(50));
        assert_eq!(p.reward(1), p.reward(17));
        assert_eq!(p.reward(51), p.reward(500));
        // Pythia's ordering: timely > late > 0 > early > expiry.
        assert!(p.reward(30) > p.reward(5));
        assert!(p.reward(5) > 0);
        assert!(p.reward(60) < 0);
        assert!(p.expiry() < p.reward(60));
        assert_eq!(p.stable_depth(), 51);
    }

    #[test]
    fn lut_is_exact_for_every_reward_shape() {
        let shapes: [RewardShape; 4] = [
            RewardShape::default(),
            StepReward::paper_default().into(),
            GaussianPenaltyReward::snippet_default().into(),
            PythiaLevelReward::pythia_default().into(),
        ];
        for shape in &shapes {
            let lut = RewardLut::new(shape);
            for d in 0..4096u32 {
                assert_eq!(
                    lut.reward(d),
                    shape.reward(d),
                    "{} depth {d}",
                    shape.label()
                );
            }
            assert_eq!(lut.expiry(), shape.expiry());
        }
    }

    #[test]
    fn default_shape_is_the_paper_bell() {
        let shape = RewardShape::default();
        let bell = BellReward::paper_default();
        assert_eq!(shape.window(), bell.window());
        assert_eq!(shape.expiry(), bell.expiry());
        assert_eq!(shape.stable_depth(), bell.stable_depth());
        for d in 0..256u32 {
            assert_eq!(shape.reward(d), bell.reward(d));
        }
        assert_eq!(shape.label(), "bell");
    }

    #[test]
    fn reward_shape_snapshot_round_trips_every_variant() {
        use semloc_trace::{SnapReader, SnapWriter, Snapshot};
        let shapes: [RewardShape; 4] = [
            BellReward::new(10, 64, 20, -6, -3).into(),
            StepReward::paper_default().into(),
            GaussianPenaltyReward::new(24, 7, 12, 3, -2).into(),
            PythiaLevelReward::new(4, 90, 9, 5, -1, -7).into(),
        ];
        for shape in &shapes {
            let mut w = SnapWriter::new();
            shape.save(&mut w);
            let bytes = w.into_bytes();
            // Restore overwrites whatever variant was there before.
            let mut back = RewardShape::default();
            back.restore(&mut SnapReader::new(&bytes))
                .expect("round trip");
            assert_eq!(&back, shape);
        }
    }

    #[test]
    fn reward_shape_snapshot_rejects_garbage() {
        use semloc_trace::{SnapReader, SnapWriter, Snapshot};
        let mut w = SnapWriter::new();
        w.section(*b"RWSH", 1);
        w.put_u8(9); // unknown discriminant
        let bytes = w.into_bytes();
        let mut shape = RewardShape::default();
        assert!(shape.restore(&mut SnapReader::new(&bytes)).is_err());
    }
}
