//! Reward shaping for delayed prefetch feedback (§4.3 and Fig 5).
//!
//! A prediction's *hit depth* is the number of demand memory accesses
//! between issuing the prediction and the demand that hit it. Useful
//! prefetches land inside the effective prefetch window — early enough to
//! hide the L1 miss penalty, late enough not to be evicted first. The
//! paper's reward is **bell-shaped over the window with negative edges**:
//! repetitions at useful distances are promoted; relations that drift
//! outside the window are demoted; predictions that expire unhit receive a
//! negative reward.

/// Maps a hit depth (in demand memory accesses) to a score delta.
pub trait RewardFunction {
    /// Reward for a prediction hit `depth` accesses after issue.
    fn reward(&self, depth: u32) -> i32;

    /// Reward for a prediction that expired without being hit.
    fn expiry(&self) -> i32;

    /// The window `[lo, hi]` of depths considered timely (positive reward).
    fn window(&self) -> (u32, u32);

    /// The smallest depth `S` with `reward(d) == reward(S)` for every
    /// `d >= S` — i.e. where the shaping has flattened into its constant
    /// tail. Lets [`RewardLut`] tabulate the function exactly.
    fn stable_depth(&self) -> u32;
}

/// An exact table of a [`RewardFunction`]: `reward(d)` for every depth up
/// to [`RewardFunction::stable_depth`], with deeper lookups clamped onto
/// the (constant) tail entry. Bit-identical to evaluating the function —
/// the bell's two `exp()` calls per prefetch-queue hit become one clamped
/// load, and batched lookups can go through `semloc_accel::gather_i32` on
/// the raw [`RewardLut::table`].
#[derive(Clone, Debug, PartialEq)]
pub struct RewardLut {
    table: Vec<i32>,
    expiry: i32,
}

impl RewardLut {
    /// Tabulate `f` exactly.
    pub fn new(f: &dyn RewardFunction) -> Self {
        let table: Vec<i32> = (0..=f.stable_depth()).map(|d| f.reward(d)).collect();
        RewardLut {
            table,
            expiry: f.expiry(),
        }
    }

    /// `f.reward(depth)`, for any depth.
    #[inline]
    pub fn reward(&self, depth: u32) -> i32 {
        self.table[(depth as usize).min(self.table.len() - 1)]
    }

    /// `f.expiry()`.
    #[inline]
    pub fn expiry(&self) -> i32 {
        self.expiry
    }

    /// The raw table for batched gathers: `table()[min(d, len-1)]` is the
    /// reward at depth `d` (exactly `semloc_accel::gather_i32` semantics).
    #[inline]
    pub fn table(&self) -> &[i32] {
        &self.table
    }
}

/// The paper's bell-shaped reward (Fig 5).
///
/// Inside the window the reward is a quadratic bell peaking at the target
/// prefetch distance and degrading gracefully toward the window edges; just
/// outside the window it dips negative (demoting relations that shifted out
/// of usefulness) and decays toward zero far away.
/// ```rust
/// use semloc_bandit::{BellReward, RewardFunction};
///
/// let bell = BellReward::paper_default();
/// assert_eq!(bell.window(), (18, 50));
/// assert_eq!(bell.reward(34), 16);            // peak at the center
/// assert!(bell.reward(60) < 0);               // too early: demoted
/// assert!(bell.reward(10) >= 0);              // late: partial merge credit
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BellReward {
    lo: u32,
    hi: u32,
    peak: i32,
    edge_penalty: i32,
    expiry_penalty: i32,
}

impl BellReward {
    /// A bell over `[lo, hi]` with the given peak reward, edge penalty and
    /// expiry penalty.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, or `peak <= 0`, or penalties are positive.
    pub fn new(lo: u32, hi: u32, peak: i32, edge_penalty: i32, expiry_penalty: i32) -> Self {
        assert!(lo < hi, "window must be non-empty");
        assert!(peak > 0, "peak reward must be positive");
        assert!(
            edge_penalty <= 0 && expiry_penalty <= 0,
            "penalties must be non-positive"
        );
        BellReward {
            lo,
            hi,
            peak,
            edge_penalty,
            expiry_penalty,
        }
    }

    /// The paper's configuration: positive window 18–50 accesses (§7.1),
    /// centered on the ~30-access average target distance (§4.3).
    pub fn paper_default() -> Self {
        BellReward::new(18, 50, 16, -8, -4)
    }

    /// The peak reward at the window center.
    pub fn peak(&self) -> i32 {
        self.peak
    }

    /// The (non-positive) penalty applied just past the early edge.
    pub fn edge_penalty(&self) -> i32 {
        self.edge_penalty
    }

    /// Build a bell for a measured target prefetch distance, per §4.3:
    /// `distance = L1 miss penalty × IPC × Prob(mem op)`. The window spans
    /// 0.6×–1.67× the target, mirroring the paper's 18–50 around ~30.
    pub fn for_target_distance(target: f64) -> Self {
        let target = target.clamp(4.0, 512.0);
        let lo = (target * 0.6).round() as u32;
        let hi = (target * 5.0 / 3.0).round() as u32;
        BellReward::new(lo.max(1), hi.max(lo.max(1) + 2), 16, -8, -4)
    }
}

impl RewardFunction for BellReward {
    fn reward(&self, depth: u32) -> i32 {
        let (lo, hi) = (self.lo as f64, self.hi as f64);
        let d = depth as f64;
        let center = (lo + hi) / 2.0;
        let sigma = (hi - lo) / 2.0;
        if depth <= self.hi {
            // Gaussian bell peaking at the window center. Its late-side
            // tail stays (mildly) positive: a prediction hit only a few
            // accesses after issue still shortens the demand's wait by
            // merging into the in-flight fill, so near-window-late
            // repetitions deserve partial credit rather than demotion.
            let x = (d - center) / sigma;
            ((self.peak as f64) * (-x * x).exp()).round() as i32
        } else {
            // Early side: negative edge decaying toward zero away from the
            // window — data fetched too early risks eviction before use,
            // and pairs whose relation drifted out of the window are
            // demoted (§4.3).
            let dist = d - hi;
            let decay = (-dist / 16.0).exp();
            ((self.edge_penalty as f64) * decay).round() as i32
        }
    }

    fn expiry(&self) -> i32 {
        self.expiry_penalty
    }

    fn window(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    fn stable_depth(&self) -> u32 {
        // Past `hi` the penalty magnitude decays strictly toward zero, so
        // the first depth whose rounded value is 0 starts the constant
        // tail. The walk is short: even an extreme penalty needs only
        // ~16·ln(2·|edge|) extra depths to round to zero.
        let mut d = self.hi + 1;
        while self.reward(d) != 0 {
            d += 1;
        }
        d
    }
}

/// A flat step reward (ablation A2): full peak anywhere inside the window,
/// constant penalty outside. Removes the paper's graceful degradation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepReward {
    lo: u32,
    hi: u32,
    peak: i32,
    penalty: i32,
}

impl StepReward {
    /// A step over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `peak <= 0` or `penalty > 0`.
    pub fn new(lo: u32, hi: u32, peak: i32, penalty: i32) -> Self {
        assert!(lo < hi && peak > 0 && penalty <= 0);
        StepReward {
            lo,
            hi,
            peak,
            penalty,
        }
    }

    /// Step analogue of [`BellReward::paper_default`].
    pub fn paper_default() -> Self {
        StepReward::new(18, 50, 16, -8)
    }
}

impl RewardFunction for StepReward {
    fn reward(&self, depth: u32) -> i32 {
        if depth >= self.lo && depth <= self.hi {
            self.peak
        } else {
            self.penalty
        }
    }

    fn expiry(&self) -> i32 {
        self.penalty / 2
    }

    fn window(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    fn stable_depth(&self) -> u32 {
        // Constant `penalty` everywhere past the window's upper edge.
        self.hi + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_peaks_at_center_and_degrades_toward_edges() {
        let b = BellReward::paper_default();
        assert_eq!(b.reward(34), 16);
        assert!(b.reward(18) < b.reward(34) / 2);
        assert!(b.reward(50) < b.reward(34) / 2);
        assert!(b.reward(30) > b.reward(20));
        assert!(b.reward(30) > b.reward(48));
    }

    #[test]
    fn late_side_keeps_partial_merge_credit() {
        // A hit only a few accesses after issue still shortened the
        // demand's wait (it merged into the in-flight fill), so the late
        // tail is small-but-positive, never punitive.
        let b = BellReward::paper_default();
        assert!(b.reward(10) >= 0);
        assert!(b.reward(10) < b.reward(30));
        assert!(b.reward(2) <= b.reward(12));
    }

    #[test]
    fn early_side_is_negative_and_decays() {
        let b = BellReward::paper_default();
        assert!(b.reward(51) < 0);
        assert!(
            b.reward(51) <= b.reward(120),
            "penalty decays with distance"
        );
        assert!(b.expiry() < 0);
    }

    #[test]
    fn bell_is_monotone_up_then_down() {
        let b = BellReward::paper_default();
        let vals: Vec<i32> = (2..=50).map(|d| b.reward(d)).collect();
        let peak_pos = vals
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap();
        assert!(vals[..=peak_pos].windows(2).all(|w| w[0] <= w[1]));
        assert!(vals[peak_pos..].windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn target_distance_scales_window() {
        let b = BellReward::for_target_distance(30.0);
        assert_eq!(b.window(), (18, 50));
        let fast = BellReward::for_target_distance(12.0);
        assert_eq!(fast.window(), (7, 20));
        // Degenerate targets still yield a valid window.
        let tiny = BellReward::for_target_distance(0.0);
        let (lo, hi) = tiny.window();
        assert!(lo < hi);
    }

    #[test]
    fn step_is_flat() {
        let s = StepReward::paper_default();
        assert_eq!(s.reward(18), s.reward(34));
        assert_eq!(s.reward(0), s.reward(200));
        assert!(s.reward(0) < 0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn empty_window_rejected() {
        BellReward::new(10, 10, 1, 0, 0);
    }

    #[test]
    fn lut_is_exact_for_every_depth() {
        for bell in [
            BellReward::paper_default(),
            BellReward::for_target_distance(12.0),
            BellReward::for_target_distance(512.0),
            BellReward::new(1, 127, 16, 0, -4), // flat-edge ablation shape
        ] {
            let lut = RewardLut::new(&bell);
            for d in 0..4096u32 {
                assert_eq!(lut.reward(d), bell.reward(d), "bell depth {d}");
            }
            assert_eq!(lut.expiry(), bell.expiry());
        }
        let step = StepReward::paper_default();
        let lut = RewardLut::new(&step);
        for d in 0..4096u32 {
            assert_eq!(lut.reward(d), step.reward(d), "step depth {d}");
        }
        assert_eq!(lut.expiry(), step.expiry());
    }

    #[test]
    fn lut_table_tail_is_the_stable_value() {
        let bell = BellReward::paper_default();
        let lut = RewardLut::new(&bell);
        let last = *lut.table().last().unwrap();
        assert_eq!(last, 0, "bell decays to zero");
        assert_eq!(lut.table().len() as u32, bell.stable_depth() + 1);
        assert_eq!(lut.table()[34], 16, "peak preserved");
    }
}
