//! Reinforcement-learning primitives for the context-based prefetcher.
//!
//! The paper frames prefetching as a **contextual bandits** problem (§4):
//! the context is the machine state at a memory access, the actions are
//! candidate prefetch addresses, and the (delayed) reward is derived from
//! whether — and how soon — a predicted address was actually demanded.
//!
//! This crate provides the model-side building blocks, independent of any
//! cache machinery, so they can be tested and reused in isolation:
//!
//! * [`RewardFunction`] and the paper's bell-shaped [`BellReward`] (Fig 5),
//!   plus a [`StepReward`] used by the ablation experiments, a
//!   [`GaussianPenaltyReward`] and Pythia-style [`PythiaLevelReward`], and
//!   [`RewardShape`] — the closed sum the pipeline config stores;
//! * [`AdaptiveEpsilon`] — ε-greedy exploration whose rate anneals with
//!   prediction accuracy, after Tokic's value-difference-based exploration
//!   (the paper cites this directly in §4.1);
//! * [`ScoredSet`] — a fixed-capacity action set with saturating integer
//!   scores and score-based replacement, the policy core of a CST entry;
//! * [`MultiArmedBandit`] — the classical model the paper generalizes,
//!   kept here for reference, tests and examples.

// Mirror of semloc-lint rule D3 (no-unwrap); D1/D2 are mirrored via clippy.toml.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod mab;
pub mod policy;
pub mod reward;
pub mod scored;

pub use mab::MultiArmedBandit;
pub use policy::{AdaptiveEpsilon, ExplorationPolicy, FixedEpsilon};
pub use reward::{
    BellReward, GaussianPenaltyReward, PythiaLevelReward, RewardFunction, RewardLut, RewardShape,
    StepReward,
};
pub use scored::{Action, ScoredSet};
