//! The classical multi-armed bandit (§4.1 background).
//!
//! The paper's contextual-bandits formulation generalizes this model: a
//! single global decision with incremental value estimates and ε-greedy
//! action selection. Kept as a reference implementation — it documents the
//! learning rule the prefetcher specializes, anchors the crate's tests, and
//! backs the `explore_contexts` example.

use crate::policy::ExplorationPolicy;
use rand::{Rng, RngExt};

/// An ε-greedy multi-armed bandit with incremental mean value estimates.
///
/// ```rust
/// use semloc_bandit::{FixedEpsilon, MultiArmedBandit};
///
/// let mut bandit = MultiArmedBandit::new(3, FixedEpsilon::new(0.0));
/// bandit.update(2, 5.0);
/// assert_eq!(bandit.greedy(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct MultiArmedBandit<P> {
    values: Vec<f64>,
    pulls: Vec<u64>,
    policy: P,
}

impl<P: ExplorationPolicy> MultiArmedBandit<P> {
    /// A bandit with `arms` arms and the given exploration policy.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is zero.
    pub fn new(arms: usize, policy: P) -> Self {
        assert!(arms > 0, "bandit needs at least one arm");
        MultiArmedBandit {
            values: vec![0.0; arms],
            pulls: vec![0; arms],
            policy,
        }
    }

    /// Number of arms.
    pub fn arms(&self) -> usize {
        self.values.len()
    }

    /// Select an arm: the greedy arm, or a random one with probability ε.
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.policy.explore(rng) {
            rng.random_range(0..self.values.len())
        } else {
            self.greedy()
        }
    }

    /// The arm with the highest value estimate.
    #[allow(clippy::expect_used)]
    pub fn greedy(&self) -> usize {
        self.values
            .iter()
            .enumerate()
            // semloc-lint: allow(no-unwrap): estimates are incremental means of finite rewards, never NaN
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("value estimates are finite"))
            .map(|(i, _)| i)
            // semloc-lint: allow(no-unwrap): constructors reject zero-arm bandits
            .expect("at least one arm")
    }

    /// Update arm `arm` with an observed `reward` (incremental mean).
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn update(&mut self, arm: usize, reward: f64) {
        self.pulls[arm] += 1;
        let n = self.pulls[arm] as f64;
        self.values[arm] += (reward - self.values[arm]) / n;
        self.policy.observe(reward > 0.0);
    }

    /// Current value estimate of `arm`.
    pub fn value(&self, arm: usize) -> f64 {
        self.values[arm]
    }

    /// Times `arm` was updated.
    pub fn pulls(&self, arm: usize) -> u64 {
        self.pulls[arm]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedEpsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_to_the_best_arm() {
        let mut bandit = MultiArmedBandit::new(5, FixedEpsilon::new(0.1));
        let mut rng = StdRng::seed_from_u64(11);
        // Arm 3 pays double.
        for _ in 0..5000 {
            let arm = bandit.select(&mut rng);
            let noise: f64 = rng.random::<f64>() * 0.1;
            let reward = if arm == 3 { 2.0 } else { 1.0 } + noise;
            bandit.update(arm, reward);
        }
        assert_eq!(bandit.greedy(), 3);
        assert!(bandit.pulls(3) > 3000, "greedy arm should dominate pulls");
    }

    #[test]
    fn incremental_mean_matches_arithmetic_mean() {
        let mut b = MultiArmedBandit::new(1, FixedEpsilon::new(0.0));
        for r in [1.0, 2.0, 3.0, 4.0] {
            b.update(0, r);
        }
        assert!((b.value(0) - 2.5).abs() < 1e-12);
        assert_eq!(b.pulls(0), 4);
    }

    #[test]
    fn zero_epsilon_is_pure_greedy() {
        let mut b = MultiArmedBandit::new(3, FixedEpsilon::new(0.0));
        b.update(1, 5.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!((0..100).all(|_| b.select(&mut rng) == 1));
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_rejected() {
        MultiArmedBandit::new(0, FixedEpsilon::new(0.0));
    }
}
