//! A fixed-capacity set of actions with saturating integer scores.
//!
//! This is the policy core of a context-states-table entry: each stored
//! context keeps up to `N` candidate actions (address deltas, in the
//! prefetcher), each with a 1-byte score updated by rewards. Insertion
//! evicts the lowest-scoring candidate — "a score-based replacement policy,
//! which benefits pairs that gained positive rewards" (§5) — expanding the
//! exploration space while protecting proven actions.

use rand::{Rng, RngExt};

/// Replacement policy used when inserting into a full [`ScoredSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Evict the candidate with the lowest score (the paper's policy).
    #[default]
    LowestScore,
    /// Evict the oldest candidate (ablation baseline).
    Fifo,
}

/// An action storable in a [`ScoredSet`]: the membership scan is routed
/// through a per-type accelerated kernel (first-match, identical to
/// `Iterator::position`). `Default` supplies the filler for unused slots —
/// never observable, since every read is bounded by the live length.
pub trait Action: Copy + Eq + Default {
    /// First index of `needle` in `hay`, or `None`.
    fn find(hay: &[Self], needle: Self) -> Option<usize>;
}

impl Action for i16 {
    fn find(hay: &[Self], needle: Self) -> Option<usize> {
        semloc_accel::find_i16(hay, needle)
    }
}

impl Action for u64 {
    fn find(hay: &[Self], needle: Self) -> Option<usize> {
        semloc_accel::find_u64(hay, needle)
    }
}

impl Action for i8 {
    // No dedicated SIMD kernel: the simulator's sets key on i16 deltas and
    // u64 blocks; i8 actions only appear in property tests.
    fn find(hay: &[Self], needle: Self) -> Option<usize> {
        hay.iter().position(|&a| a == needle)
    }
}

/// Up to `N` scored candidate actions.
///
/// Stored structure-of-arrays: the score scan of an eviction or a
/// best-candidate probe touches one small contiguous array instead of
/// striding over interleaved slots, and each scan vectorizes through
/// `semloc_accel` (actions, scores and ages are split exactly so those
/// kernels see flat lanes).
///
/// ```rust
/// use semloc_bandit::ScoredSet;
///
/// let mut actions: ScoredSet<u64, 4> = ScoredSet::default();
/// actions.insert(0xA0);
/// actions.insert(0xB0);
/// actions.reward(0xB0, 16);
/// assert_eq!(actions.best(), Some((0xB0, 16)));
/// ```
#[derive(Clone, Debug)]
pub struct ScoredSet<A, const N: usize> {
    actions: [A; N],
    scores: [i8; N],
    inserted_at: [u32; N],
    len: u8,
    policy: Replacement,
    clock: u32,
}

impl<A: Action, const N: usize> Default for ScoredSet<A, N> {
    fn default() -> Self {
        Self::new(Replacement::default())
    }
}

impl<A: Action, const N: usize> ScoredSet<A, N> {
    /// An empty set with the given replacement policy.
    pub fn new(policy: Replacement) -> Self {
        ScoredSet {
            actions: [A::default(); N],
            scores: [0; N],
            inserted_at: [0; N],
            len: 0,
            policy,
            clock: 0,
        }
    }

    /// Number of stored candidates.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of `action` among the live slots, if stored.
    #[inline]
    fn position(&self, action: A) -> Option<usize> {
        A::find(&self.actions[..self.len()], action)
    }

    /// Insert `action` with score 0 if not already present. When full, the
    /// replacement policy selects a victim. Returns the evicted action and
    /// its score, if any.
    #[allow(clippy::expect_used)]
    pub fn insert(&mut self, action: A) -> Option<(A, i8)> {
        self.clock = self.clock.wrapping_add(1);
        if self.position(action).is_some() {
            return None;
        }
        let len = self.len();
        if len < N {
            self.actions[len] = action;
            self.scores[len] = 0;
            self.inserted_at[len] = self.clock;
            self.len += 1;
            return None;
        }
        let victim = match self.policy {
            Replacement::LowestScore => semloc_accel::min_index_i8(&self.scores)
                // semloc-lint: allow(no-unwrap): eviction path only runs when the set is full
                .expect("full set is non-empty"),
            Replacement::Fifo => semloc_accel::min_index_u32(&self.inserted_at)
                // semloc-lint: allow(no-unwrap): eviction path only runs when the set is full
                .expect("full set is non-empty"),
        };
        let evicted = (self.actions[victim], self.scores[victim]);
        self.actions[victim] = action;
        self.scores[victim] = 0;
        self.inserted_at[victim] = self.clock;
        Some(evicted)
    }

    /// Apply a saturating score delta to `action`. Returns `false` when the
    /// action is not stored.
    pub fn reward(&mut self, action: A, delta: i32) -> bool {
        self.reward_capped(action, delta, i8::MAX)
    }

    /// Like [`ScoredSet::reward`], but positive deltas cannot raise the
    /// score above `cap` (scores already above `cap` are left untouched).
    /// Used for *partial credit* — e.g. late prefetch hits that only
    /// shortened a wait — so such credit saturates early and can never
    /// outrank fully timely candidates.
    pub fn reward_capped(&mut self, action: A, delta: i32, cap: i8) -> bool {
        match self.position(action) {
            Some(i) => {
                let old = self.scores[i];
                let mut new = (old as i32 + delta).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
                if delta > 0 {
                    new = new.min(cap.max(old));
                }
                self.scores[i] = new;
                true
            }
            None => false,
        }
    }

    /// The stored score of `action`, if present.
    pub fn score_of(&self, action: A) -> Option<i8> {
        self.position(action).map(|i| self.scores[i])
    }

    /// The highest-scoring candidate.
    pub fn best(&self) -> Option<(A, i8)> {
        semloc_accel::max_index_last_i8(&self.scores[..self.len()])
            .map(|i| (self.actions[i], self.scores[i]))
    }

    /// All candidates, highest score first.
    pub fn ranked(&self) -> Vec<(A, i8)> {
        let mut v: Vec<(A, i8)> = (0..self.len())
            .map(|i| (self.actions[i], self.scores[i]))
            .collect();
        v.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
        v
    }

    /// Copy all candidates into `out` (cleared first) in slot order,
    /// *unsorted*. Lets callers rank with their own tie-break in one stable
    /// sort without an allocation per lookup; sorting `out` by score
    /// descending reproduces [`ScoredSet::ranked`] exactly (both sorts are
    /// stable over the same slot order).
    pub fn ranked_into(&self, out: &mut Vec<(A, i8)>) {
        out.clear();
        out.extend((0..self.len()).map(|i| (self.actions[i], self.scores[i])));
    }

    /// A uniformly random stored candidate (the ε-greedy exploration draw:
    /// "choosing a random address from the set of previously correlated
    /// ones").
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<A> {
        if self.is_empty() {
            None
        } else {
            Some(self.actions[rng.random_range(0..self.len())])
        }
    }

    /// The insertion clock driving FIFO eviction ages (checkpoint state:
    /// restoring it preserves future eviction order exactly).
    pub fn clock(&self) -> u32 {
        self.clock
    }

    /// Every slot as `(action, score, inserted_at)` in internal slot order,
    /// for checkpointing. Slot order matters: lookup tie-breaks and the
    /// stable ranking walk slots in this order.
    pub fn slots_raw(&self) -> impl Iterator<Item = (A, i8, u32)> + '_ {
        (0..self.len()).map(|i| (self.actions[i], self.scores[i], self.inserted_at[i]))
    }

    /// Rebuild the set from raw checkpoint state captured by
    /// [`ScoredSet::clock`] + [`ScoredSet::slots_raw`]. The replacement
    /// policy is construction configuration and is kept as-is.
    ///
    /// Fails when `slots` exceeds the set's capacity `N`.
    pub fn restore_raw(&mut self, clock: u32, slots: &[(A, i8, u32)]) -> std::io::Result<()> {
        if slots.len() > N {
            return Err(semloc_trace::snap_err(format!(
                "scored-set snapshot has {} slots, capacity is {N}",
                slots.len()
            )));
        }
        self.clock = clock;
        self.actions = [A::default(); N];
        self.scores = [0; N];
        self.inserted_at = [0; N];
        self.len = slots.len() as u8;
        for (i, &(action, score, inserted_at)) in slots.iter().enumerate() {
            self.actions[i] = action;
            self.scores[i] = score;
            self.inserted_at[i] = inserted_at;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type Set = ScoredSet<u64, 4>;

    #[test]
    fn fills_then_evicts_lowest() {
        let mut s = Set::default();
        for a in 1..=4u64 {
            assert_eq!(s.insert(a), None);
        }
        s.reward(1, 10);
        s.reward(2, 5);
        s.reward(3, -5);
        s.reward(4, 1);
        let evicted = s.insert(99);
        assert_eq!(evicted, Some((3, -5)), "lowest-scoring candidate must go");
        assert_eq!(s.len(), 4);
        assert_eq!(s.score_of(99), Some(0));
    }

    #[test]
    fn duplicate_insert_is_a_noop() {
        let mut s = Set::default();
        s.insert(7);
        s.reward(7, 20);
        assert_eq!(s.insert(7), None);
        assert_eq!(
            s.score_of(7),
            Some(20),
            "reinsertion must not reset the score"
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fifo_policy_evicts_oldest() {
        let mut s: ScoredSet<u64, 2> = ScoredSet::new(Replacement::Fifo);
        s.insert(1);
        s.insert(2);
        s.reward(1, 100); // high score should NOT protect under FIFO
        assert_eq!(s.insert(3), Some((1, 100)));
    }

    #[test]
    fn scores_saturate() {
        let mut s = Set::default();
        s.insert(1);
        for _ in 0..100 {
            s.reward(1, 50);
        }
        assert_eq!(s.score_of(1), Some(i8::MAX));
        for _ in 0..100 {
            s.reward(1, -50);
        }
        assert_eq!(s.score_of(1), Some(i8::MIN));
    }

    #[test]
    fn best_and_ranked_agree() {
        let mut s = Set::default();
        s.insert(10);
        s.insert(20);
        s.insert(30);
        s.reward(20, 9);
        s.reward(30, 3);
        assert_eq!(s.best(), Some((20, 9)));
        let ranked = s.ranked();
        assert_eq!(ranked[0], (20, 9));
        assert_eq!(ranked[1], (30, 3));
        assert_eq!(ranked[2], (10, 0));
    }

    #[test]
    fn random_draws_only_stored_actions() {
        let mut s = Set::default();
        assert!(s.random(&mut StdRng::seed_from_u64(0)).is_none());
        s.insert(5);
        s.insert(6);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.random(&mut rng).unwrap());
        }
        assert_eq!(seen, [5u64, 6].into_iter().collect());
    }

    #[test]
    fn ranked_into_sorted_matches_ranked() {
        let mut s = Set::default();
        s.insert(10);
        s.insert(20);
        s.insert(30);
        s.insert(40);
        s.reward(20, 9);
        s.reward(40, 9); // tie with 20: stability must keep slot order
        s.reward(30, 3);
        let mut buf = Vec::new();
        s.ranked_into(&mut buf);
        buf.sort_by_key(|&(_, score)| std::cmp::Reverse(score));
        assert_eq!(buf, s.ranked());
    }

    #[test]
    fn reward_on_missing_action_reports_false() {
        let mut s = Set::default();
        assert!(!s.reward(42, 1));
    }

    #[test]
    fn raw_round_trip_preserves_eviction_order() {
        let mut s: ScoredSet<u64, 2> = ScoredSet::new(Replacement::Fifo);
        s.insert(1);
        s.insert(2);
        let raw: Vec<_> = s.slots_raw().collect();
        let mut t: ScoredSet<u64, 2> = ScoredSet::new(Replacement::Fifo);
        t.restore_raw(s.clock(), &raw).unwrap();
        // Under FIFO, the restored set must evict the same (oldest) victim.
        assert_eq!(s.insert(3), t.insert(3));
        assert_eq!(s.clock(), t.clock());
        assert_eq!(
            s.slots_raw().collect::<Vec<_>>(),
            t.slots_raw().collect::<Vec<_>>()
        );
    }

    #[test]
    fn raw_restore_rejects_overflow() {
        let mut t: ScoredSet<u64, 2> = ScoredSet::default();
        let too_many = [(1u64, 0i8, 1u32), (2, 0, 2), (3, 0, 3)];
        assert!(t.restore_raw(9, &too_many).is_err());
    }
}
