//! Exploration policies.
//!
//! The paper's exploration is "based on the common ε-greedy approach
//! (choosing a random address from the set of previously correlated ones at
//! probability ε on each step)" with "dynamic adaptation based on prediction
//! accuracy, thereby reducing the level of exploration as the predictor
//! begins to converge, similar to the proposal by Tokic" (§4.1).

use rand::{Rng, RngExt};
use semloc_trace::{snap_err, SnapReader, SnapWriter, Snapshot};

/// Decides, per step, whether to exploit the best-known action or explore a
/// random one.
pub trait ExplorationPolicy {
    /// Current exploration probability in `[0, 1]`.
    fn epsilon(&self) -> f64;

    /// Sample the explore/exploit decision.
    fn explore<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.random::<f64>() < self.epsilon()
    }

    /// Feed back whether the latest prediction was accurate.
    fn observe(&mut self, hit: bool);
}

/// Constant-rate ε-greedy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FixedEpsilon {
    eps: f64,
}

impl FixedEpsilon {
    /// A fixed exploration rate.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is outside `[0, 1]`.
    pub fn new(eps: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "epsilon must be a probability");
        FixedEpsilon { eps }
    }
}

impl ExplorationPolicy for FixedEpsilon {
    fn epsilon(&self) -> f64 {
        self.eps
    }

    fn observe(&mut self, _hit: bool) {}
}

/// Accuracy-adaptive ε-greedy.
///
/// Maintains an exponentially-weighted accuracy estimate and anneals the
/// exploration rate from `eps_max` (cold predictor) toward `eps_min`
/// (converged predictor): `ε = eps_min + (eps_max − eps_min)·(1 − accuracy)`.
/// ```rust
/// use semloc_bandit::{AdaptiveEpsilon, ExplorationPolicy};
///
/// let mut eps = AdaptiveEpsilon::paper_default();
/// let cold = eps.epsilon();
/// for _ in 0..1000 {
///     eps.observe(true);
/// }
/// assert!(eps.epsilon() < cold, "exploration anneals as accuracy rises");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveEpsilon {
    eps_min: f64,
    eps_max: f64,
    accuracy: f64,
    alpha: f64,
}

impl AdaptiveEpsilon {
    /// An adaptive policy annealing between `eps_min` and `eps_max` with
    /// EWMA smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not probabilities with
    /// `eps_min <= eps_max`, or `alpha` is outside `(0, 1]`.
    pub fn new(eps_min: f64, eps_max: f64, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&eps_min) && (0.0..=1.0).contains(&eps_max) && eps_min <= eps_max
        );
        assert!(alpha > 0.0 && alpha <= 1.0);
        AdaptiveEpsilon {
            eps_min,
            eps_max,
            accuracy: 0.0,
            alpha,
        }
    }

    /// The paper-flavored default: explore a few percent of accesses when
    /// converged, aggressively when cold.
    pub fn paper_default() -> Self {
        AdaptiveEpsilon::new(0.02, 0.25, 0.01)
    }

    /// Current accuracy estimate in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// The floor exploration rate reached at perfect accuracy.
    pub fn eps_min(&self) -> f64 {
        self.eps_min
    }

    /// The ceiling exploration rate of a cold predictor.
    pub fn eps_max(&self) -> f64 {
        self.eps_max
    }

    /// The EWMA smoothing factor for accuracy updates.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl ExplorationPolicy for AdaptiveEpsilon {
    fn epsilon(&self) -> f64 {
        self.eps_min + (self.eps_max - self.eps_min) * (1.0 - self.accuracy)
    }

    fn observe(&mut self, hit: bool) {
        self.accuracy += self.alpha * ((hit as u8 as f64) - self.accuracy);
    }
}

impl Snapshot for AdaptiveEpsilon {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"EPSL", 1);
        w.put_f64(self.eps_min);
        w.put_f64(self.eps_max);
        w.put_f64(self.accuracy);
        w.put_f64(self.alpha);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"EPSL", 1)?;
        let eps_min = r.get_f64()?;
        let eps_max = r.get_f64()?;
        let accuracy = r.get_f64()?;
        let alpha = r.get_f64()?;
        let bounds_ok = (0.0..=1.0).contains(&eps_min)
            && (0.0..=1.0).contains(&eps_max)
            && eps_min <= eps_max
            && (0.0..=1.0).contains(&accuracy)
            && alpha > 0.0
            && alpha <= 1.0;
        if !bounds_ok {
            return Err(snap_err(format!(
                "adaptive-epsilon snapshot out of bounds: \
                 eps_min={eps_min}, eps_max={eps_max}, accuracy={accuracy}, alpha={alpha}"
            )));
        }
        self.eps_min = eps_min;
        self.eps_max = eps_max;
        self.accuracy = accuracy;
        self.alpha = alpha;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_rate_is_respected_statistically() {
        let p = FixedEpsilon::new(0.1);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let explored = (0..n).filter(|_| p.explore(&mut rng)).count();
        let rate = explored as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn adaptive_anneals_with_accuracy() {
        let mut p = AdaptiveEpsilon::paper_default();
        let cold = p.epsilon();
        for _ in 0..2000 {
            p.observe(true);
        }
        let warm = p.epsilon();
        assert!(cold > 0.2 && warm < 0.05, "cold {cold}, warm {warm}");
        // Degrades back when accuracy collapses.
        for _ in 0..2000 {
            p.observe(false);
        }
        assert!(p.epsilon() > 0.2);
    }

    #[test]
    fn adaptive_epsilon_stays_in_bounds() {
        let mut p = AdaptiveEpsilon::new(0.05, 0.5, 0.5);
        for i in 0..100 {
            p.observe(i % 3 == 0);
            assert!(p.epsilon() >= 0.05 - 1e-12 && p.epsilon() <= 0.5 + 1e-12);
            assert!((0.0..=1.0).contains(&p.accuracy()));
        }
    }

    #[test]
    fn zero_epsilon_never_explores() {
        let p = FixedEpsilon::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..1000).all(|_| !p.explore(&mut rng)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_epsilon_rejected() {
        FixedEpsilon::new(1.5);
    }

    #[test]
    fn adaptive_snapshot_round_trips_mid_anneal() {
        use semloc_trace::{SnapReader, SnapWriter, Snapshot};
        let mut p = AdaptiveEpsilon::paper_default();
        for i in 0..137 {
            p.observe(i % 3 != 0);
        }
        let mut w = SnapWriter::new();
        p.save(&mut w);
        let bytes = w.into_bytes();
        let mut q = AdaptiveEpsilon::paper_default();
        q.restore(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(p, q);
        // The restored policy continues the exact same trajectory.
        p.observe(true);
        q.observe(true);
        assert_eq!(p.epsilon().to_bits(), q.epsilon().to_bits());
    }

    #[test]
    fn adaptive_snapshot_rejects_corrupt_bounds() {
        use semloc_trace::{SnapReader, SnapWriter, Snapshot};
        let p = AdaptiveEpsilon::paper_default();
        let mut w = SnapWriter::new();
        p.save(&mut w);
        let mut bytes = w.into_bytes();
        // Corrupt eps_max (second f64 after the 8-byte section header) to a
        // huge value: restore must fail, not construct an invalid policy.
        bytes[16..24].copy_from_slice(&f64::to_bits(7.5).to_le_bytes());
        let mut q = AdaptiveEpsilon::paper_default();
        let err = q.restore(&mut SnapReader::new(&bytes)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
