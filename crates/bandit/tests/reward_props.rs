//! Property tests over the reward machinery: the [`BellReward`] shape
//! (symmetry, monotone decay, strictly-negative expiry) under *arbitrary*
//! valid parameterizations, and the saturating-arithmetic invariants of
//! [`ScoredSet`] (clamping at the i8 rails, cap semantics that never lower
//! a score).

use proptest::prelude::*;

use semloc_bandit::scored::{Replacement, ScoredSet};
use semloc_bandit::{
    BellReward, GaussianPenaltyReward, PythiaLevelReward, RewardFunction, RewardLut, RewardShape,
    StepReward,
};

/// An arbitrary *valid* bell: lo < hi, positive peak, non-positive
/// penalties.
fn bell_from(raw: (u64, u64, u64, u64)) -> BellReward {
    let (a, b, c, d) = raw;
    let lo = 1 + (a % 60) as u32;
    let hi = lo + 2 + (b % 100) as u32;
    let peak = 1 + (c % 40) as i32;
    let edge = -((d % 20) as i32);
    let expiry = -(1 + (d >> 32 & 0xf) as i32);
    BellReward::new(lo, hi, peak, edge, expiry)
}

proptest! {
    #[test]
    fn bell_symmetry_around_center(raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let bell = bell_from(raw);
        let (lo, hi) = bell.window();
        // exp(-x²) is even around the (possibly half-integer) center
        // (lo+hi)/2, so depths d and (lo+hi)−d mirror each other exactly
        // while both stay in the bell regime (≤ hi).
        let c2 = lo + hi;
        for d in lo..=(c2 / 2) {
            prop_assert_eq!(bell.reward(d), bell.reward(c2 - d));
        }
    }

    #[test]
    fn bell_monotone_decay_on_both_sides(raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let bell = bell_from(raw);
        let (lo, hi) = bell.window();
        let center = (lo + hi) / 2;
        for d in 1..=center {
            prop_assert!(bell.reward(d - 1) <= bell.reward(d));
        }
        for d in center..hi {
            prop_assert!(bell.reward(d + 1) <= bell.reward(d));
        }
        // Past the early edge the penalty decays toward zero and never
        // goes positive.
        let mut prev = bell.reward(hi + 1);
        prop_assert!(prev <= 0);
        for d in (hi + 2)..(hi + 64) {
            let r = bell.reward(d);
            prop_assert!(r <= 0 && r >= prev);
            prev = r;
        }
    }

    #[test]
    fn bell_peak_bounds_every_reward(raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let bell = bell_from(raw);
        let (_, hi) = bell.window();
        for d in 0..(hi + 64) {
            prop_assert!(bell.reward(d) <= bell.peak());
        }
        prop_assert!(bell.expiry() < 0, "expiry must always be a strict penalty");
    }

    #[test]
    fn scores_clamp_at_the_i8_rails(
        deltas in proptest::collection::vec(-120i32..=120, 1..60),
        action in any::<i16>(),
    ) {
        let mut set: ScoredSet<i16, 4> = ScoredSet::new(Replacement::LowestScore);
        set.insert(action);
        let mut expected = 0i32;
        for d in deltas {
            set.reward(action, d);
            expected = (expected + d).clamp(i8::MIN as i32, i8::MAX as i32);
            prop_assert_eq!(set.score_of(action), Some(expected as i8));
        }
    }

    #[test]
    fn capped_reward_never_exceeds_cap_nor_lowers_a_score(
        start_rewards in proptest::collection::vec(1i32..=50, 0..10),
        cap in -20i8..=60,
        delta in 1i32..=50,
    ) {
        let mut set: ScoredSet<i16, 4> = ScoredSet::new(Replacement::LowestScore);
        set.insert(7);
        for r in start_rewards {
            set.reward(7, r);
        }
        let before = set.score_of(7).unwrap();
        set.reward_capped(7, delta, cap);
        let after = set.score_of(7).unwrap();
        // A positive capped reward stops at max(cap, previous score): it
        // respects the cap but never *reduces* an already-higher score.
        prop_assert!(after >= before, "capped positive reward lowered {before} -> {after}");
        prop_assert!(after <= before.max(cap), "cap exceeded: {before} -> {after} (cap {cap})");
    }

    #[test]
    fn negative_capped_reward_ignores_the_cap(
        penalty in -50i32..=-1,
        cap in -20i8..=60,
    ) {
        let mut set: ScoredSet<i16, 4> = ScoredSet::new(Replacement::LowestScore);
        set.insert(3);
        set.reward(3, 40);
        set.reward_capped(3, penalty, cap);
        prop_assert_eq!(
            set.score_of(3),
            Some((40 + penalty).clamp(i8::MIN as i32, i8::MAX as i32) as i8),
            "penalties apply in full regardless of the cap"
        );
    }
}

/// An arbitrary *valid* gaussian-penalty shape.
fn gaussian_from(raw: (u64, u64, u64)) -> GaussianPenaltyReward {
    let (a, b, c) = raw;
    let center = (a % 90) as u32;
    let sigma = 1 + (b % 24) as u32;
    let scale = 1 + (c % 40) as i32;
    let factor = (c >> 32 & 0x7) as i32;
    GaussianPenaltyReward::new(center, sigma, scale, factor, -1 - (a >> 32 & 0x7) as i32)
}

/// An arbitrary *valid* pythia-level shape.
fn levels_from(raw: (u64, u64, u64)) -> PythiaLevelReward {
    let (a, b, c) = raw;
    let lo = 1 + (a % 60) as u32;
    let hi = lo + 2 + (b % 100) as u32;
    let late = 1 + (c % 20) as i32;
    let timely = late + 1 + (c >> 16 & 0xf) as i32;
    let early = -((a >> 32 & 0xf) as i32);
    let expiry = early - 1 - (b >> 32 & 0xf) as i32;
    PythiaLevelReward::new(lo, hi, timely, late, early, expiry)
}

proptest! {
    #[test]
    fn gaussian_penalty_sign_tracks_the_window(raw in (any::<u64>(), any::<u64>(), any::<u64>())) {
        let g = gaussian_from(raw);
        let (lo, hi) = g.window();
        for d in lo..=hi {
            prop_assert!(g.reward(d) >= 0, "in-window reward must not be negative at {d}");
        }
        for d in (hi + 1)..(hi + 64) {
            prop_assert!(g.reward(d) <= 0, "out-of-window reward must not be positive at {d}");
        }
        prop_assert!(g.expiry() < 0);
    }

    #[test]
    fn gaussian_penalty_stable_depth_is_truly_stable(raw in (any::<u64>(), any::<u64>(), any::<u64>())) {
        let g = gaussian_from(raw);
        let stable = g.stable_depth();
        prop_assert!(stable > g.window().1);
        // The gaussian magnitude decays monotonically past the center, so
        // once it rounds to zero it stays zero forever.
        for d in stable..(stable + 64) {
            prop_assert_eq!(g.reward(d), 0, "depth {}", d);
        }
    }

    #[test]
    fn pythia_levels_partition_the_depth_axis(raw in (any::<u64>(), any::<u64>(), any::<u64>())) {
        let p = levels_from(raw);
        let (lo, hi) = p.window();
        for d in 0..(hi + 64) {
            let expected = if d < lo {
                p.late()
            } else if d <= hi {
                p.timely()
            } else {
                p.early()
            };
            prop_assert_eq!(p.reward(d), expected);
        }
        prop_assert!(p.expiry() <= p.early());
    }

    #[test]
    fn lut_tabulates_every_shape_exactly(
        raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        which in 0u8..4,
    ) {
        let shape: RewardShape = match which {
            0 => bell_from(raw).into(),
            1 => StepReward::paper_default().into(),
            2 => gaussian_from((raw.0, raw.1, raw.2)).into(),
            _ => levels_from((raw.0, raw.1, raw.2)).into(),
        };
        let lut = RewardLut::new(&shape);
        for d in 0..1024u32 {
            prop_assert_eq!(lut.reward(d), shape.reward(d), "{} depth {}", shape.label(), d);
        }
        prop_assert_eq!(lut.expiry(), shape.expiry());
    }

    #[test]
    fn reward_shape_snapshots_round_trip(
        raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        which in 0u8..4,
    ) {
        use semloc_trace::{SnapReader, SnapWriter, Snapshot};
        let shape: RewardShape = match which {
            0 => bell_from(raw).into(),
            1 => StepReward::paper_default().into(),
            2 => gaussian_from((raw.0, raw.1, raw.2)).into(),
            _ => levels_from((raw.0, raw.1, raw.2)).into(),
        };
        let mut w = SnapWriter::new();
        shape.save(&mut w);
        let bytes = w.into_bytes();
        let mut back = RewardShape::default();
        back.restore(&mut SnapReader::new(&bytes)).expect("round trip");
        prop_assert_eq!(back, shape);
    }
}

#[test]
fn expiry_is_negative_for_paper_default() {
    assert!(BellReward::paper_default().expiry() < 0);
}
