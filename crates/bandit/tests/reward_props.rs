//! Property tests over the reward machinery: the [`BellReward`] shape
//! (symmetry, monotone decay, strictly-negative expiry) under *arbitrary*
//! valid parameterizations, and the saturating-arithmetic invariants of
//! [`ScoredSet`] (clamping at the i8 rails, cap semantics that never lower
//! a score).

use proptest::prelude::*;

use semloc_bandit::scored::{Replacement, ScoredSet};
use semloc_bandit::{BellReward, RewardFunction};

/// An arbitrary *valid* bell: lo < hi, positive peak, non-positive
/// penalties.
fn bell_from(raw: (u64, u64, u64, u64)) -> BellReward {
    let (a, b, c, d) = raw;
    let lo = 1 + (a % 60) as u32;
    let hi = lo + 2 + (b % 100) as u32;
    let peak = 1 + (c % 40) as i32;
    let edge = -((d % 20) as i32);
    let expiry = -(1 + (d >> 32 & 0xf) as i32);
    BellReward::new(lo, hi, peak, edge, expiry)
}

proptest! {
    #[test]
    fn bell_symmetry_around_center(raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let bell = bell_from(raw);
        let (lo, hi) = bell.window();
        // exp(-x²) is even around the (possibly half-integer) center
        // (lo+hi)/2, so depths d and (lo+hi)−d mirror each other exactly
        // while both stay in the bell regime (≤ hi).
        let c2 = lo + hi;
        for d in lo..=(c2 / 2) {
            prop_assert_eq!(bell.reward(d), bell.reward(c2 - d));
        }
    }

    #[test]
    fn bell_monotone_decay_on_both_sides(raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let bell = bell_from(raw);
        let (lo, hi) = bell.window();
        let center = (lo + hi) / 2;
        for d in 1..=center {
            prop_assert!(bell.reward(d - 1) <= bell.reward(d));
        }
        for d in center..hi {
            prop_assert!(bell.reward(d + 1) <= bell.reward(d));
        }
        // Past the early edge the penalty decays toward zero and never
        // goes positive.
        let mut prev = bell.reward(hi + 1);
        prop_assert!(prev <= 0);
        for d in (hi + 2)..(hi + 64) {
            let r = bell.reward(d);
            prop_assert!(r <= 0 && r >= prev);
            prev = r;
        }
    }

    #[test]
    fn bell_peak_bounds_every_reward(raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let bell = bell_from(raw);
        let (_, hi) = bell.window();
        for d in 0..(hi + 64) {
            prop_assert!(bell.reward(d) <= bell.peak());
        }
        prop_assert!(bell.expiry() < 0, "expiry must always be a strict penalty");
    }

    #[test]
    fn scores_clamp_at_the_i8_rails(
        deltas in proptest::collection::vec(-120i32..=120, 1..60),
        action in any::<i16>(),
    ) {
        let mut set: ScoredSet<i16, 4> = ScoredSet::new(Replacement::LowestScore);
        set.insert(action);
        let mut expected = 0i32;
        for d in deltas {
            set.reward(action, d);
            expected = (expected + d).clamp(i8::MIN as i32, i8::MAX as i32);
            prop_assert_eq!(set.score_of(action), Some(expected as i8));
        }
    }

    #[test]
    fn capped_reward_never_exceeds_cap_nor_lowers_a_score(
        start_rewards in proptest::collection::vec(1i32..=50, 0..10),
        cap in -20i8..=60,
        delta in 1i32..=50,
    ) {
        let mut set: ScoredSet<i16, 4> = ScoredSet::new(Replacement::LowestScore);
        set.insert(7);
        for r in start_rewards {
            set.reward(7, r);
        }
        let before = set.score_of(7).unwrap();
        set.reward_capped(7, delta, cap);
        let after = set.score_of(7).unwrap();
        // A positive capped reward stops at max(cap, previous score): it
        // respects the cap but never *reduces* an already-higher score.
        prop_assert!(after >= before, "capped positive reward lowered {before} -> {after}");
        prop_assert!(after <= before.max(cap), "cap exceeded: {before} -> {after} (cap {cap})");
    }

    #[test]
    fn negative_capped_reward_ignores_the_cap(
        penalty in -50i32..=-1,
        cap in -20i8..=60,
    ) {
        let mut set: ScoredSet<i16, 4> = ScoredSet::new(Replacement::LowestScore);
        set.insert(3);
        set.reward(3, 40);
        set.reward_capped(3, penalty, cap);
        prop_assert_eq!(
            set.score_of(3),
            Some((40 + penalty).clamp(i8::MIN as i32, i8::MAX as i32) as i8),
            "penalties apply in full regardless of the cap"
        );
    }
}

#[test]
fn expiry_is_negative_for_paper_default() {
    assert!(BellReward::paper_default().expiry() < 0);
}
