//! Naive reference implementations of the prefetcher's tables.
//!
//! Each structure states the *intended* semantics of its optimized twin in
//! `semloc-context` / `semloc-bandit` as directly as possible: plain
//! vectors, linear scans, explicit tie-break rules spelled out in comments.
//! Observable behaviour (return values, eviction choices, counter updates)
//! must match the optimized implementations exactly — that equivalence is
//! what the lockstep differential runner checks.

use semloc_bandit::scored::Replacement;
use semloc_context::{Attr, ContextKey, FullHash};
use semloc_trace::{snap_err, SnapReader, SnapWriter, Snapshot};

/// One scored candidate link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SpecSlot {
    delta: i16,
    score: i8,
    inserted_at: u32,
}

/// Reference twin of `ScoredSet<i16, 4>`: up to four scored deltas.
#[derive(Clone, Debug)]
pub struct SpecScoredSet {
    slots: Vec<SpecSlot>,
    policy: Replacement,
    clock: u32,
}

/// Links per CST entry (Table 2: 4).
pub const SPEC_LINKS: usize = 4;

impl SpecScoredSet {
    fn new(policy: Replacement) -> Self {
        SpecScoredSet {
            slots: Vec::new(),
            policy,
            clock: 0,
        }
    }

    /// Insert with score 0; duplicate inserts are no-ops (but still tick
    /// the insertion clock, like the optimized set). A full set evicts the
    /// *first* slot holding the minimum score (LowestScore) or the first
    /// slot with the minimum insertion time (Fifo), replacing it in place
    /// so the slot order of survivors is preserved.
    fn insert(&mut self, delta: i16) -> Option<(i16, i8)> {
        self.clock = self.clock.wrapping_add(1);
        if self.slots.iter().any(|s| s.delta == delta) {
            return None;
        }
        let slot = SpecSlot {
            delta,
            score: 0,
            inserted_at: self.clock,
        };
        if self.slots.len() < SPEC_LINKS {
            self.slots.push(slot);
            return None;
        }
        let mut victim = 0;
        for i in 1..self.slots.len() {
            let better = match self.policy {
                // Strictly-less keeps the FIRST minimum on ties.
                Replacement::LowestScore => self.slots[i].score < self.slots[victim].score,
                Replacement::Fifo => self.slots[i].inserted_at < self.slots[victim].inserted_at,
            };
            if better {
                victim = i;
            }
        }
        let evicted = (self.slots[victim].delta, self.slots[victim].score);
        self.slots[victim] = slot;
        Some(evicted)
    }

    /// Saturating score update; positive deltas cannot raise the score
    /// above `max(cap, previous score)`.
    fn reward_capped(&mut self, delta_action: i16, reward: i32, cap: i8) -> bool {
        for s in &mut self.slots {
            if s.delta == delta_action {
                let mut new = (s.score as i32 + reward).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
                if reward > 0 {
                    new = new.min(cap.max(s.score));
                }
                s.score = new;
                return true;
            }
        }
        false
    }

    fn score_of(&self, delta: i16) -> Option<i8> {
        self.slots
            .iter()
            .find(|s| s.delta == delta)
            .map(|s| s.score)
    }

    /// Highest-scoring candidate; the LAST slot wins ties (matching the
    /// optimized set's `Iterator::max_by_key`).
    fn best(&self) -> Option<(i16, i8)> {
        let mut best: Option<(i16, i8)> = None;
        for s in &self.slots {
            if best.is_none_or(|(_, bs)| s.score >= bs) {
                best = Some((s.delta, s.score));
            }
        }
        best
    }

    /// Candidates in slot order, unsorted.
    fn slot_order(&self) -> Vec<(i16, i8)> {
        self.slots.iter().map(|s| (s.delta, s.score)).collect()
    }

    /// Candidates sorted by score descending, stable over slot order.
    fn ranked(&self) -> Vec<(i16, i8)> {
        let mut v = self.slot_order();
        v.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
        v
    }
}

/// Outcome of a candidate insertion, mirroring
/// [`semloc_context::cst::AddOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecAdd {
    /// Added to (or already present in) an entry with room.
    Stored,
    /// Displaced an existing link with the carried score.
    Evicted(i8),
    /// The direct-mapped entry was (re)allocated for this context.
    Allocated,
}

#[derive(Clone, Debug)]
struct SpecCstEntry {
    tag: u8,
    last_full: u16,
    links: SpecScoredSet,
}

/// Reference twin of the direct-mapped context-states table.
#[derive(Clone, Debug)]
pub struct SpecCst {
    entries: Vec<Option<SpecCstEntry>>,
    // semloc-lint: allow(snapshot-field-coverage): link replacement policy is construction-time config, not run state
    replacement: Replacement,
}

impl SpecCst {
    /// A table with `entries` slots (power of two).
    pub fn new(entries: usize, replacement: Replacement) -> Self {
        assert!(entries.is_power_of_two());
        SpecCst {
            entries: vec![None; entries],
            replacement,
        }
    }

    fn slot(&self, key: ContextKey) -> usize {
        key.cst_index(self.entries.len())
    }

    /// Insert a candidate delta, allocating the entry on a tag miss.
    #[allow(clippy::expect_used)]
    pub fn add_candidate(&mut self, key: ContextKey, delta: i16) -> SpecAdd {
        let idx = self.slot(key);
        let tag = key.cst_tag();
        match &mut self.entries[idx] {
            Some(e) if e.tag == tag => {
                if e.links.slots.len() == SPEC_LINKS && e.links.score_of(delta).is_none() {
                    // semloc-lint: allow(no-unwrap): insert into a full set without a matching slot always evicts
                    let (_, score) = e.links.insert(delta).expect("full entry evicts");
                    SpecAdd::Evicted(score)
                } else {
                    e.links.insert(delta);
                    SpecAdd::Stored
                }
            }
            slot => {
                let mut e = SpecCstEntry {
                    tag,
                    last_full: 0,
                    links: SpecScoredSet::new(self.replacement),
                };
                e.links.insert(delta);
                *slot = Some(e);
                SpecAdd::Allocated
            }
        }
    }

    /// Stored candidates in slot order, if the context is present.
    pub fn lookup_slots(&self, key: ContextKey) -> Option<Vec<(i16, i8)>> {
        let e = self.entries[self.slot(key)].as_ref()?;
        (e.tag == key.cst_tag()).then(|| e.links.slot_order())
    }

    /// Score of one stored `(context, delta)` link, if present.
    pub fn score_of(&self, key: ContextKey, delta: i16) -> Option<i8> {
        let e = self.entries[self.slot(key)].as_ref()?;
        if e.tag != key.cst_tag() {
            return None;
        }
        e.links.score_of(delta)
    }

    /// Apply a reward; `false` when the pair is no longer stored.
    pub fn reward(&mut self, key: ContextKey, delta: i16, reward: i32) -> bool {
        self.reward_capped(key, delta, reward, i8::MAX)
    }

    /// Apply a capped reward; `false` when the pair is no longer stored.
    pub fn reward_capped(&mut self, key: ContextKey, delta: i16, reward: i32, cap: i8) -> bool {
        let idx = self.slot(key);
        match &mut self.entries[idx] {
            Some(e) if e.tag == key.cst_tag() => e.links.reward_capped(delta, reward, cap),
            _ => false,
        }
    }

    /// Shared-and-weak observation: `true` when a *different* full context
    /// used this entry since the last observation while its best link
    /// scores below `strength_bar`.
    pub fn note_shared_weak(&mut self, key: ContextKey, full: u16, strength_bar: i8) -> bool {
        let idx = self.slot(key);
        match &mut self.entries[idx] {
            Some(e) if e.tag == key.cst_tag() => {
                let alternated = e.last_full != full;
                e.last_full = full;
                let weak = e.links.best().is_none_or(|(_, s)| s < strength_bar);
                alternated && weak
            }
            _ => false,
        }
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Valid entries as `(index, ranked (delta, score) list)`.
    pub fn dump(&self) -> Vec<(usize, Vec<(i16, i8)>)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e.links.ranked())))
            .collect()
    }
}

impl Snapshot for SpecCst {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"SCST", 1);
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_bool(e.is_some());
            let Some(e) = e else { continue };
            w.put_u8(e.tag);
            w.put_u16(e.last_full);
            w.put_u32(e.links.clock);
            w.put_u8(e.links.slots.len() as u8);
            for s in &e.links.slots {
                w.put_i16(s.delta);
                w.put_i8(s.score);
                w.put_u32(s.inserted_at);
            }
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"SCST", 1)?;
        let n = r.get_len()?;
        if n != self.entries.len() {
            return Err(snap_err(format!(
                "spec CST snapshot has {n} entries, table expects {}",
                self.entries.len()
            )));
        }
        for slot in &mut self.entries {
            if !r.get_bool()? {
                *slot = None;
                continue;
            }
            let tag = r.get_u8()?;
            let last_full = r.get_u16()?;
            let clock = r.get_u32()?;
            let links = r.get_u8()? as usize;
            if links > SPEC_LINKS {
                return Err(snap_err(format!("spec CST entry has {links} links")));
            }
            let mut set = SpecScoredSet::new(self.replacement);
            set.clock = clock;
            for _ in 0..links {
                set.slots.push(SpecSlot {
                    delta: r.get_i16()?,
                    score: r.get_i8()?,
                    inserted_at: r.get_u32()?,
                });
            }
            *slot = Some(SpecCstEntry {
                tag,
                last_full,
                links: set,
            });
        }
        Ok(())
    }
}

impl Snapshot for SpecReducer {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"SRED", 1);
        w.put_u64(self.activations);
        w.put_u64(self.deactivations);
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_bool(e.is_some());
            let Some(e) = e else { continue };
            w.put_u8(e.tag);
            w.put_u8(e.active);
            w.put_i8(e.pressure);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"SRED", 1)?;
        self.activations = r.get_u64()?;
        self.deactivations = r.get_u64()?;
        let n = r.get_len()?;
        if n != self.entries.len() {
            return Err(snap_err(format!(
                "spec reducer snapshot has {n} entries, table expects {}",
                self.entries.len()
            )));
        }
        for slot in &mut self.entries {
            if !r.get_bool()? {
                *slot = None;
                continue;
            }
            *slot = Some(SpecReducerEntry {
                tag: r.get_u8()?,
                active: r.get_u8()?,
                pressure: r.get_i8()?,
            });
        }
        Ok(())
    }
}

impl Snapshot for SpecHistory {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"SHIS", 1);
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u32(e.key.0);
            w.put_u16(e.full.0);
            w.put_u64(e.block);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"SHIS", 1)?;
        let n = r.get_len()?;
        if n > self.capacity {
            return Err(snap_err(format!(
                "spec history snapshot has {n} entries, capacity is {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push(SpecHistEntry {
                key: ContextKey(r.get_u32()?),
                full: FullHash(r.get_u16()?),
                block: r.get_u64()?,
            });
        }
        Ok(())
    }
}

impl Snapshot for SpecPfq {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"SPFQ", 1);
        w.put_u64(self.next_id);
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.id);
            w.put_u64(e.block);
            w.put_u32(e.key.0);
            w.put_u16(e.full.0);
            w.put_i16(e.delta);
            w.put_u64(e.issue_seq);
            w.put_bool(e.shadow);
            w.put_bool(e.hit);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"SPFQ", 1)?;
        self.next_id = r.get_u64()?;
        let n = r.get_len()?;
        if n > self.capacity {
            return Err(snap_err(format!(
                "spec prefetch-queue snapshot has {n} entries, capacity is {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push(SpecPfqEntry {
                id: r.get_u64()?,
                block: r.get_u64()?,
                key: ContextKey(r.get_u32()?),
                full: FullHash(r.get_u16()?),
                delta: r.get_i16()?,
                issue_seq: r.get_u64()?,
                shadow: r.get_bool()?,
                hit: r.get_bool()?,
            });
        }
        Ok(())
    }
}

#[derive(Clone, Copy, Debug)]
struct SpecReducerEntry {
    tag: u8,
    active: u8,
    pressure: i8,
}

/// Reference twin of the Reducer (online feature selection, §4.4).
#[derive(Clone, Debug)]
pub struct SpecReducer {
    entries: Vec<Option<SpecReducerEntry>>,
    // semloc-lint: allow(snapshot-field-coverage): construction-time config mirroring core's Reducer
    initial_active: u8,
    // semloc-lint: allow(snapshot-field-coverage): construction-time config mirroring core's Reducer
    overload_threshold: i8,
    // semloc-lint: allow(snapshot-field-coverage): construction-time config mirroring core's Reducer
    underload_threshold: i8,
    // semloc-lint: allow(snapshot-field-coverage): set once at construction, never mutated — mirrors core's Reducer
    frozen: bool,
    activations: u64,
    deactivations: u64,
}

impl SpecReducer {
    /// A reducer with `entries` slots (power of two).
    pub fn new(
        entries: usize,
        initial_active: u8,
        overload_threshold: i8,
        underload_threshold: i8,
        frozen: bool,
    ) -> Self {
        assert!(entries.is_power_of_two());
        assert!((1..=Attr::COUNT as u8).contains(&initial_active));
        SpecReducer {
            entries: vec![None; entries],
            initial_active,
            overload_threshold,
            underload_threshold,
            frozen,
            activations: 0,
            deactivations: 0,
        }
    }

    fn slot(&self, full: FullHash) -> usize {
        full.reducer_index() & (self.entries.len() - 1)
    }

    /// Active-attribute count for `full`, (re)allocating on tag mismatch.
    pub fn active_count(&mut self, full: FullHash) -> u8 {
        let idx = self.slot(full);
        let tag = full.reducer_tag();
        match &mut self.entries[idx] {
            Some(e) if e.tag == tag => e.active,
            slot => {
                *slot = Some(SpecReducerEntry {
                    tag,
                    active: self.initial_active,
                    pressure: 0,
                });
                self.initial_active
            }
        }
    }

    /// Overload report: +1 pressure; at the threshold, activate one more
    /// attribute (up to all 8) and reset pressure. Stale handles (tag
    /// mismatch) and frozen reducers ignore the report.
    pub fn report_overload(&mut self, full: FullHash) {
        if self.frozen {
            return;
        }
        let idx = self.slot(full);
        let threshold = self.overload_threshold;
        let Some(e) = &mut self.entries[idx] else {
            return;
        };
        if e.tag != full.reducer_tag() {
            return;
        }
        e.pressure = e.pressure.saturating_add(1);
        if e.pressure >= threshold && (e.active as usize) < Attr::COUNT {
            e.active += 1;
            e.pressure = 0;
            self.activations += 1;
        }
    }

    /// Underload report: −1 pressure; at the threshold, deactivate one
    /// attribute (at least one always stays active) and reset pressure.
    pub fn report_underload(&mut self, full: FullHash) {
        if self.frozen {
            return;
        }
        let idx = self.slot(full);
        let threshold = self.underload_threshold;
        let Some(e) = &mut self.entries[idx] else {
            return;
        };
        if e.tag != full.reducer_tag() {
            return;
        }
        e.pressure = e.pressure.saturating_sub(1);
        if e.pressure <= threshold && e.active > 1 {
            e.active -= 1;
            e.pressure = 0;
            self.deactivations += 1;
        }
    }

    /// Total attribute activations.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Total attribute deactivations.
    pub fn deactivations(&self) -> u64 {
        self.deactivations
    }

    /// `dist[k]` = valid entries with `k` active attributes.
    pub fn active_histogram(&self) -> [u64; Attr::COUNT + 1] {
        let mut h = [0u64; Attr::COUNT + 1];
        for e in self.entries.iter().flatten() {
            h[e.active as usize] += 1;
        }
        h
    }
}

/// One recorded context observation, mirroring
/// [`semloc_context::history::HistoryEntry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecHistEntry {
    /// Reduced-context key under which the context was observed.
    pub key: ContextKey,
    /// Full-context hash (reducer feedback routing).
    pub full: FullHash,
    /// Block address anchoring the context.
    pub block: u64,
}

/// Reference twin of the history queue: newest observation first.
#[derive(Clone, Debug)]
pub struct SpecHistory {
    entries: Vec<SpecHistEntry>,
    // semloc-lint: allow(snapshot-field-coverage): queue depth is construction-time config; restore validates the entry count against it
    capacity: usize,
}

impl SpecHistory {
    /// A queue holding the last `capacity` contexts.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        SpecHistory {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Record the current access's context (depth 1 for the next access).
    pub fn push(&mut self, e: SpecHistEntry) {
        self.entries.insert(0, e);
        self.entries.truncate(self.capacity);
    }

    /// The context observed `depth` accesses ago (1 = previous access).
    pub fn at_depth(&self, depth: u16) -> Option<SpecHistEntry> {
        if depth == 0 {
            return None;
        }
        self.entries.get(depth as usize - 1).copied()
    }

    /// Sample at each depth, in depth-list order, skipping depths not yet
    /// populated.
    pub fn sample(&self, depths: &[u16]) -> Vec<SpecHistEntry> {
        depths.iter().filter_map(|&d| self.at_depth(d)).collect()
    }
}

/// One outstanding prediction (reference twin of
/// [`semloc_context::pfq::PfqEntry`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecPfqEntry {
    /// Monotone identifier echoed through issue results.
    pub id: u64,
    /// Predicted block.
    pub block: u64,
    /// Producing reduced-context key.
    pub key: ContextKey,
    /// Producing full-context hash.
    pub full: FullHash,
    /// Predicted delta.
    pub delta: i16,
    /// Demand-access sequence number at prediction time.
    pub issue_seq: u64,
    /// Shadow (not dispatched).
    pub shadow: bool,
    /// Already matched by a demand access.
    pub hit: bool,
}

/// A matched prediction with its depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecPfqHit {
    /// The matched entry as of the hit.
    pub entry: SpecPfqEntry,
    /// Accesses elapsed between prediction and demand.
    pub depth: u32,
}

/// Reference twin of the prefetch queue: a plain FIFO with linear scans.
#[derive(Clone, Debug)]
pub struct SpecPfq {
    entries: Vec<SpecPfqEntry>,
    // semloc-lint: allow(snapshot-field-coverage): queue depth is construction-time config; restore validates the entry count against it
    capacity: usize,
    next_id: u64,
}

impl SpecPfq {
    /// A queue of `capacity` predictions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        SpecPfq {
            entries: Vec::new(),
            capacity,
            next_id: 0,
        }
    }

    /// Record a prediction; on overflow the oldest entry pops out.
    pub fn push(
        &mut self,
        block: u64,
        key: ContextKey,
        full: FullHash,
        delta: i16,
        issue_seq: u64,
        shadow: bool,
    ) -> (u64, Option<SpecPfqEntry>) {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push(SpecPfqEntry {
            id,
            block,
            key,
            full,
            delta,
            issue_seq,
            shadow,
            hit: false,
        });
        let expired = if self.entries.len() > self.capacity {
            Some(self.entries.remove(0))
        } else {
            None
        };
        (id, expired)
    }

    /// Mark every un-hit entry predicting `block` as hit, yielding hits in
    /// queue (oldest-first) order.
    pub fn record_access(&mut self, block: u64, seq: u64) -> Vec<SpecPfqHit> {
        let mut out = Vec::new();
        for e in &mut self.entries {
            if !e.hit && e.block == block {
                e.hit = true;
                out.push(SpecPfqHit {
                    entry: *e,
                    depth: seq.saturating_sub(e.issue_seq) as u32,
                });
            }
        }
        out
    }

    /// Any un-hit prediction covering `block`?
    pub fn predicts(&self, block: u64) -> bool {
        self.entries.iter().any(|e| !e.hit && e.block == block)
    }

    /// Any un-hit *real* prediction covering `block`?
    pub fn predicts_real(&self, block: u64) -> bool {
        self.entries
            .iter()
            .any(|e| !e.hit && !e.shadow && e.block == block)
    }

    /// Demote entry `id` to a shadow operation (no-op if gone).
    pub fn demote_to_shadow(&mut self, id: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.shadow = true;
        }
    }

    /// Remove and return every entry, oldest first.
    pub fn drain(&mut self) -> Vec<SpecPfqEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Outstanding predictions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
