//! Executable specification of the context-based prefetcher.
//!
//! [`SpecPrefetcher`] re-implements every state machine of the optimized
//! [`semloc_context::ContextPrefetcher`] — CST link scoring, Reducer
//! bitmap/pressure updates, history-queue sampling, prefetch-queue reward
//! assignment with the Fig 5 bell, adaptive-ε exploration — in the most
//! naive, obviously-correct form available: plain `Vec`s, linear scans,
//! no incremental hashing, no indices, no buffer reuse. It exists purely
//! as a *differential oracle*: the harness drives both implementations in
//! lockstep over identical access streams and reports the first access at
//! which any observable (emitted prefetches, counters, table contents)
//! diverges.
//!
//! Design rules:
//!
//! * **No shared logic with the optimized path.** The only items reused
//!   from `semloc-context` are plain data/config types and the documented
//!   *reference* hash functions [`semloc_context::attrs::FullHash::of`] /
//!   [`semloc_context::attrs::ContextKey::of`] (the hot path uses the
//!   single-pass `FeatureVec` instead, so the lockstep run continuously
//!   re-proves that equivalence over real workloads). The bell reward and
//!   adaptive-ε formulas are re-stated here from their published
//!   parameters rather than calling the `semloc-bandit` implementations.
//! * **Clarity over speed.** Everything is a linear scan; the spec is
//!   only expected to keep up with test-sized streams.

// Mirror of semloc-lint rule D3 (no-unwrap); D1/D2 are mirrored via clippy.toml.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod prefetcher;
pub mod tables;

pub use prefetcher::SpecPrefetcher;
pub use tables::{SpecAdd, SpecCst, SpecHistory, SpecPfq, SpecPfqEntry, SpecReducer};
