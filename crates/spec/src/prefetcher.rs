//! The lockstep reference prefetcher.
//!
//! [`SpecPrefetcher`] restates the per-access pipeline of the optimized
//! [`semloc_context::ContextPrefetcher`] — feedback, collection,
//! prediction, in that order — over the naive tables of [`crate::tables`],
//! with the bell reward and adaptive-ε formulas written out inline from
//! their published parameters. Given the same configuration (including the
//! RNG seed) and the same access stream, every observable — emitted
//! requests (addresses, shadow flags, tags), statistics counters, table
//! contents, exploration state — must match the optimized implementation
//! exactly; any difference is a bug in one of the two.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use semloc_bandit::{RewardFunction, RewardShape};
use semloc_mem::{MemPressure, PrefetchReq, Prefetcher, PrefetcherStats};
use semloc_trace::{snap_err, AccessContext, Addr, SnapReader, SnapWriter, Snapshot};

use semloc_context::{ContextConfig, ContextKey, ContextStats, FullHash};

use crate::tables::{
    SpecAdd, SpecCst, SpecHistEntry, SpecHistory, SpecPfq, SpecPfqEntry, SpecReducer,
};

/// The configured reward shape, restated from its published parameters —
/// one inline formula per [`RewardShape`] variant, never delegating to the
/// optimized implementation.
#[derive(Clone, Copy, Debug)]
enum SpecReward {
    /// The Fig 5 bell.
    Bell {
        lo: u32,
        hi: u32,
        peak: i32,
        edge_penalty: i32,
        expiry: i32,
    },
    /// Flat step (ablation A2).
    Step {
        lo: u32,
        hi: u32,
        peak: i32,
        penalty: i32,
    },
    /// Gaussian with a multiplicative out-of-window penalty.
    Gaussian {
        center: u32,
        sigma: u32,
        scale: i32,
        penalty_factor: i32,
        expiry: i32,
    },
    /// Pythia-style discrete levels.
    Levels {
        lo: u32,
        hi: u32,
        timely: i32,
        late: i32,
        early: i32,
        expiry: i32,
    },
}

impl SpecReward {
    fn of(shape: &RewardShape) -> Self {
        match shape {
            RewardShape::PaperBell(b) => {
                let (lo, hi) = b.window();
                SpecReward::Bell {
                    lo,
                    hi,
                    peak: b.peak(),
                    edge_penalty: b.edge_penalty(),
                    expiry: b.expiry(),
                }
            }
            RewardShape::Step(s) => {
                let (lo, hi) = s.window();
                SpecReward::Step {
                    lo,
                    hi,
                    peak: s.peak(),
                    penalty: s.penalty(),
                }
            }
            RewardShape::GaussianPenalty(g) => SpecReward::Gaussian {
                center: g.center(),
                sigma: g.sigma(),
                scale: g.scale(),
                penalty_factor: g.penalty_factor(),
                expiry: g.expiry(),
            },
            RewardShape::PythiaLevel(p) => {
                let (lo, hi) = p.window();
                SpecReward::Levels {
                    lo,
                    hi,
                    timely: p.timely(),
                    late: p.late(),
                    early: p.early(),
                    expiry: p.expiry(),
                }
            }
        }
    }

    /// The restated reward over hit depth. Each floating-point expression
    /// mirrors its optimized counterpart term for term, so rounding
    /// behaviour is identical.
    fn reward(&self, depth: u32) -> i32 {
        match *self {
            // Gaussian bell peaking at the window center; past the early
            // edge the reward dips to `edge_penalty` and decays to zero.
            SpecReward::Bell {
                lo,
                hi,
                peak,
                edge_penalty,
                ..
            } => {
                let (lo_f, hi_f) = (lo as f64, hi as f64);
                let d = depth as f64;
                let center = (lo_f + hi_f) / 2.0;
                let sigma = (hi_f - lo_f) / 2.0;
                if depth <= hi {
                    let x = (d - center) / sigma;
                    ((peak as f64) * (-x * x).exp()).round() as i32
                } else {
                    let dist = d - hi_f;
                    let decay = (-dist / 16.0).exp();
                    ((edge_penalty as f64) * decay).round() as i32
                }
            }
            // Flat peak inside the window, flat penalty outside.
            SpecReward::Step {
                lo,
                hi,
                peak,
                penalty,
            } => {
                if depth >= lo && depth <= hi {
                    peak
                } else {
                    penalty
                }
            }
            // `round(scale·exp(−(d−center)²/2σ²))` inside center ± 2σ; the
            // same magnitude negated and amplified by `penalty_factor`
            // outside.
            SpecReward::Gaussian {
                center,
                sigma,
                scale,
                penalty_factor,
                ..
            } => {
                let dc = depth as f64 - center as f64;
                let s = sigma as f64;
                let g = ((scale as f64) * (-(dc * dc) / (2.0 * s * s)).exp()).round() as i32;
                let lo = center.saturating_sub(2 * sigma).max(1);
                let hi = center + 2 * sigma;
                if depth < lo || depth > hi {
                    -g * penalty_factor
                } else {
                    g
                }
            }
            // One discrete level per region.
            SpecReward::Levels {
                lo,
                hi,
                timely,
                late,
                early,
                ..
            } => {
                if depth < lo {
                    late
                } else if depth <= hi {
                    timely
                } else {
                    early
                }
            }
        }
    }

    fn expiry(&self) -> i32 {
        match *self {
            SpecReward::Bell { expiry, .. } => expiry,
            // The step's expiry is half its flat penalty.
            SpecReward::Step { penalty, .. } => penalty / 2,
            SpecReward::Gaussian { expiry, .. } => expiry,
            SpecReward::Levels { expiry, .. } => expiry,
        }
    }

    fn window(&self) -> (u32, u32) {
        match *self {
            SpecReward::Bell { lo, hi, .. } => (lo, hi),
            SpecReward::Step { lo, hi, .. } => (lo, hi),
            SpecReward::Gaussian { center, sigma, .. } => {
                (center.saturating_sub(2 * sigma).max(1), center + 2 * sigma)
            }
            SpecReward::Levels { lo, hi, .. } => (lo, hi),
        }
    }
}

/// Accuracy-adaptive ε-greedy, restated:
/// `ε = eps_min + (eps_max − eps_min)·(1 − accuracy)` over an EWMA
/// accuracy estimate.
#[derive(Clone, Copy, Debug)]
struct SpecEpsilon {
    eps_min: f64,
    eps_max: f64,
    alpha: f64,
    accuracy: f64,
}

impl SpecEpsilon {
    fn epsilon(&self) -> f64 {
        self.eps_min + (self.eps_max - self.eps_min) * (1.0 - self.accuracy)
    }

    fn explore(&self, rng: &mut StdRng) -> bool {
        rng.random::<f64>() < self.epsilon()
    }

    fn observe(&mut self, hit: bool) {
        self.accuracy += self.alpha * ((hit as u8 as f64) - self.accuracy);
    }
}

/// The reference prefetcher. See the module docs for the equivalence
/// contract.
pub struct SpecPrefetcher {
    cfg: ContextConfig,
    bell: SpecReward,
    eps: SpecEpsilon,
    cst: SpecCst,
    reducer: SpecReducer,
    history: SpecHistory,
    pfq: SpecPfq,
    rng: StdRng,
    stats: ContextStats,
    mem_stats: PrefetcherStats,
}

impl SpecPrefetcher {
    /// Build the reference prefetcher for `cfg`. The bell and ε parameters
    /// are read out of the config's reward/exploration objects so both
    /// implementations run the same numbers.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ContextConfig::validate`].
    pub fn new(cfg: ContextConfig) -> Self {
        cfg.validate();
        let bell = SpecReward::of(&cfg.reward);
        let eps = SpecEpsilon {
            eps_min: cfg.exploration.eps_min(),
            eps_max: cfg.exploration.eps_max(),
            alpha: cfg.exploration.alpha(),
            accuracy: cfg.exploration.accuracy(),
        };
        SpecPrefetcher {
            bell,
            eps,
            cst: SpecCst::new(cfg.cst_entries, cfg.replacement),
            reducer: SpecReducer::new(
                cfg.reducer_entries,
                cfg.initial_active,
                cfg.overload_threshold,
                cfg.underload_threshold,
                cfg.freeze_reducer,
            ),
            history: SpecHistory::new(cfg.history_len),
            pfq: SpecPfq::new(cfg.pfq_len),
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: ContextStats::default(),
            mem_stats: PrefetcherStats::default(),
            cfg,
        }
    }

    /// Learning statistics (same structure as the optimized prefetcher's).
    pub fn learn_stats(&self) -> &ContextStats {
        &self.stats
    }

    /// Current EWMA accuracy estimate.
    pub fn accuracy(&self) -> f64 {
        self.eps.accuracy
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.eps.epsilon()
    }

    /// The spec's restated reward at `depth` (for fidelity tests that pin
    /// it against the optimized `RewardShape` bit for bit).
    pub fn bell_reward(&self, depth: u32) -> i32 {
        self.bell.reward(depth)
    }

    /// The spec's expiry penalty.
    pub fn expiry_reward(&self) -> i32 {
        self.bell.expiry()
    }

    /// CST contents as `(index, ranked links)`.
    pub fn cst_dump(&self) -> Vec<(usize, Vec<(i16, i8)>)> {
        self.cst.dump()
    }

    /// CST occupancy.
    pub fn cst_occupancy(&self) -> usize {
        self.cst.occupancy()
    }

    /// Reducer active-count histogram.
    pub fn reducer_histogram(&self) -> [u64; 9] {
        self.reducer.active_histogram()
    }

    /// Reducer activation count.
    pub fn reducer_activations(&self) -> u64 {
        self.reducer.activations()
    }

    /// Reducer deactivation count.
    pub fn reducer_deactivations(&self) -> u64 {
        self.reducer.deactivations()
    }

    /// Outstanding predictions.
    pub fn pfq_len(&self) -> usize {
        self.pfq.len()
    }

    /// Flush end-of-run feedback: every outstanding un-hit prediction
    /// expires with the penalty reward (without an accuracy observation —
    /// the run is over).
    pub fn drain_feedback(&mut self) {
        let expiry = self.bell.expiry();
        for e in self.pfq.drain() {
            if !e.hit {
                self.cst.reward(e.key, e.delta, expiry);
                self.stats.expired += 1;
            }
        }
    }

    /// Human-readable state dump for divergence reports.
    pub fn dump_state(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "spec state:");
        let _ = writeln!(
            s,
            "  accuracy={:.6} epsilon={:.6} pfq_len={}",
            self.eps.accuracy,
            self.eps.epsilon(),
            self.pfq.len()
        );
        let _ = writeln!(s, "  stats={:?}", self.stats);
        let _ = writeln!(s, "  mem_stats={:?}", self.mem_stats);
        let _ = writeln!(
            s,
            "  reducer: hist={:?} act={} deact={}",
            self.reducer.active_histogram(),
            self.reducer.activations(),
            self.reducer.deactivations()
        );
        let dump = self.cst.dump();
        let _ = writeln!(s, "  cst: occupancy={}", dump.len());
        for (i, links) in dump.iter().take(64) {
            let _ = writeln!(s, "    [{i}] {links:?}");
        }
        if dump.len() > 64 {
            let _ = writeln!(s, "    ... {} more entries", dump.len() - 64);
        }
        s
    }

    fn block_of(&self, addr: Addr) -> u64 {
        addr >> self.cfg.block_shift
    }

    /// Feedback: reward matching predictions, observe accuracy per hit.
    fn feedback(&mut self, block: u64, seq: u64) {
        let hits = self.pfq.record_access(block, seq);
        let (lo, hi) = self.bell.window();
        for h in &hits {
            let r = self.bell.reward(h.depth);
            if h.depth < lo {
                // Late hit: partial merge credit, capped at 32.
                self.cst.reward_capped(h.entry.key, h.entry.delta, r, 32);
            } else {
                self.cst.reward(h.entry.key, h.entry.delta, r);
            }
            self.stats.hits += 1;
            self.stats.depth_cdf.record(h.depth);
            if h.depth >= lo && h.depth <= hi {
                self.stats.timely_hits += 1;
            } else if h.depth < lo {
                self.stats.late_hits += 1;
            } else {
                self.stats.early_hits += 1;
            }
            if !h.entry.shadow {
                self.mem_stats.useful += 1;
            }
            self.eps.observe(true);
        }
    }

    /// Collection: bind the current block to up to 16 sampled contexts.
    fn collect(&mut self, block: u64) {
        let samples = self.history.sample(&self.cfg.sample_depths);
        let max_delta = self.cfg.max_delta();
        for e in samples.into_iter().take(16) {
            let delta64 = block as i64 - e.block as i64;
            if delta64 == 0 {
                continue;
            }
            if delta64.abs() > max_delta {
                self.stats.delta_overflow += 1;
                continue;
            }
            let delta = delta64 as i16;
            self.stats.collected += 1;
            match self.cst.add_candidate(e.key, delta) {
                SpecAdd::Evicted(victim_score) if victim_score > 0 => {
                    self.reducer.report_overload(e.full)
                }
                SpecAdd::Evicted(_) => {}
                SpecAdd::Allocated => self.reducer.report_underload(e.full),
                SpecAdd::Stored => {}
            }
        }
    }

    /// Prediction: issue high-score candidates, explore with shadows.
    fn predict(
        &mut self,
        block: u64,
        key: ContextKey,
        full: FullHash,
        seq: u64,
        pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        // A CST miss produces nothing — and consumes no RNG draw.
        let Some(mut ranked) = self.cst.lookup_slots(key) else {
            return;
        };
        // Score descending, ties toward the larger delta magnitude; one
        // stable sort over slot order, exactly like the optimized path.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| b.0.abs().cmp(&a.0.abs())));

        // RNG draw order is part of the contract: one f64 draw per
        // predicted access (unless shadows are disabled), one index draw
        // only when exploring.
        let explore_pick = if self.cfg.disable_shadow || !self.eps.explore(&mut self.rng) {
            None
        } else {
            Some(ranked[self.rng.random_range(0..ranked.len())].0)
        };

        let acc = self.eps.accuracy;
        let (step1, step2) = self.cfg.degree_accuracy_steps;
        let mut degree = 1 + (acc > step1) as u32 + (acc > step2) as u32;
        degree = degree.min(self.cfg.max_degree);
        let mshr_ok = pressure.l1_mshr_free > 1;

        let mut reals = 0u32;
        for &(delta, score) in &ranked {
            if reals >= degree {
                break;
            }
            if score < self.cfg.issue_score_threshold {
                break;
            }
            let target = block.wrapping_add(delta as i64 as u64);
            if self.pfq.predicts_real(target) {
                self.push_shadow(target, key, full, delta, seq);
                continue;
            }
            if mshr_ok {
                let (id, expired) = self.pfq.push(target, key, full, delta, seq, false);
                self.expire(expired);
                out.push(PrefetchReq::real(target << self.cfg.block_shift, id));
                self.mem_stats.issued += 1;
                self.stats.real_issued += 1;
                reals += 1;
            } else {
                self.push_shadow(target, key, full, delta, seq);
            }
        }

        if reals == 0 && !self.cfg.disable_shadow {
            if let Some(&(delta, _)) = ranked.first() {
                let target = block.wrapping_add(delta as i64 as u64);
                if !self.pfq.predicts(target) {
                    self.push_shadow(target, key, full, delta, seq);
                }
            }
        }

        if let Some(delta) = explore_pick {
            let target = block.wrapping_add(delta as i64 as u64);
            self.push_shadow(target, key, full, delta, seq);
        }
    }

    fn push_shadow(&mut self, target: u64, key: ContextKey, full: FullHash, delta: i16, seq: u64) {
        let (_, expired) = self.pfq.push(target, key, full, delta, seq, true);
        self.stats.shadow_issued += 1;
        self.mem_stats.shadow += 1;
        self.expire(expired);
    }

    fn expire(&mut self, expired: Option<SpecPfqEntry>) {
        if let Some(e) = expired {
            if !e.hit {
                self.cst.reward(e.key, e.delta, self.bell.expiry());
                self.stats.expired += 1;
                self.eps.observe(false);
            }
        }
    }
}

impl Prefetcher for SpecPrefetcher {
    fn name(&self) -> &'static str {
        "spec-context"
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let block = self.block_of(ctx.addr);

        // 1. Feedback.
        self.feedback(block, ctx.seq);

        // 2. Two-pass reference hashing over the configured feature set:
        // full hash routes the reducer, the active-prefix key routes the
        // CST. For the default Table-1 set these are exactly
        // `FullHash::of` / `ContextKey::of`.
        let full = self.cfg.features.full_hash_ref(ctx, self.cfg.block_shift);
        let active = self.reducer.active_count(full);
        let key = self
            .cfg
            .features
            .key_ref(ctx, active as usize, self.cfg.block_shift);

        // 2b. Shared-and-weak (ref-count) overload cue.
        if self
            .cst
            .note_shared_weak(key, full.0, self.cfg.split_strength_bar)
        {
            self.reducer.report_overload(full);
        }

        // 3. Data collection.
        self.collect(block);

        // 4. Prediction.
        self.predict(block, key, full, ctx.seq, pressure, out);

        // 5. History records the current context.
        self.history.push(SpecHistEntry { key, full, block });
    }

    fn on_issue_result(&mut self, tag: u64, issued: bool) {
        if !issued {
            self.pfq.demote_to_shadow(tag);
            self.stats.demoted += 1;
            self.mem_stats.rejected += 1;
        }
    }

    fn was_predicted(&self, addr: Addr) -> bool {
        self.pfq.predicts(self.block_of(addr))
    }

    fn storage_bytes(&self) -> usize {
        self.cfg.storage_bytes()
    }

    fn stats(&self) -> PrefetcherStats {
        self.mem_stats
    }

    fn finish(&mut self) {
        self.drain_feedback();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.section(*b"SPEC", 1);
        // Of the ε state only the EWMA accuracy is mutated at run time; the
        // bounds are construction config.
        w.put_f64(self.eps.accuracy);
        self.cst.save(w);
        self.reducer.save(w);
        self.history.save(w);
        self.pfq.save(w);
        for word in self.rng.state() {
            w.put_u64(word);
        }
        self.stats.save(w);
        self.mem_stats.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"SPEC", 1)?;
        let accuracy = r.get_f64()?;
        if !(0.0..=1.0).contains(&accuracy) {
            return Err(snap_err(format!("spec accuracy {accuracy} out of range")));
        }
        self.eps.accuracy = accuracy;
        self.cst.restore(r)?;
        self.reducer.restore(r)?;
        self.history.restore(r)?;
        self.pfq.restore(r)?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.get_u64()?;
        }
        self.rng = StdRng::from_state(s);
        self.stats.restore(r)?;
        self.mem_stats.restore(r)
    }
}

impl std::fmt::Debug for SpecPrefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecPrefetcher")
            .field("cst_occupancy", &self.cst.occupancy())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}
