//! In-crate lockstep checks: drive `ContextPrefetcher` (optimized) and
//! `SpecPrefetcher` (naive reference) side by side over synthetic access
//! streams and require every observable to match on every access. The
//! harness-level `DiffRunner` does the same over full replayed workloads;
//! these tests are the fast, self-contained version.

use semloc_context::{ContextConfig, ContextPrefetcher, ContextStats};
use semloc_mem::{MemPressure, PrefetchReq, Prefetcher};
use semloc_spec::SpecPrefetcher;
use semloc_trace::{AccessContext, RefForm, SemanticHints, RECENT_ADDRS};

/// SplitMix64 — deterministic stream entropy without depending on the
/// prefetchers' own RNG.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Flatten `ContextStats` to labelled counters so mismatches name the
/// field (the struct deliberately has no `PartialEq`).
fn stats_fields(s: &ContextStats) -> Vec<(&'static str, u64)> {
    vec![
        ("real_issued", s.real_issued),
        ("shadow_issued", s.shadow_issued),
        ("demoted", s.demoted),
        ("hits", s.hits),
        ("expired", s.expired),
        ("timely_hits", s.timely_hits),
        ("late_hits", s.late_hits),
        ("early_hits", s.early_hits),
        ("collected", s.collected),
        ("delta_overflow", s.delta_overflow),
    ]
}

struct StreamState {
    entropy: u64,
    recent: [u64; RECENT_ADDRS],
    branch_history: u16,
    last_loaded: u64,
}

impl StreamState {
    fn new(seed: u64) -> Self {
        StreamState {
            entropy: seed,
            recent: [0; RECENT_ADDRS],
            branch_history: 0,
            last_loaded: 0,
        }
    }

    /// Wrap a raw address into a full context, maintaining the rolling
    /// machine state (recent blocks, branch history, last loaded value).
    fn ctx(&mut self, seq: u64, pc: u64, addr: u64) -> AccessContext {
        let e = mix(&mut self.entropy);
        let ctx = AccessContext {
            seq,
            pc,
            addr,
            is_write: e & 7 == 0,
            branch_history: self.branch_history,
            recent_addrs: self.recent,
            reg1: addr ^ (e >> 8),
            reg2: e >> 24,
            last_loaded: self.last_loaded,
            hints: if e & 15 == 3 {
                Some(SemanticHints {
                    type_id: (e >> 32) as u16 & 0x3f,
                    link_offset: (e >> 40) as u16 & 0xff,
                    ref_form: match (e >> 48) & 3 {
                        0 => RefForm::Dot,
                        1 => RefForm::Arrow,
                        2 => RefForm::Deref,
                        _ => RefForm::Index,
                    },
                })
            } else {
                None
            },
        };
        self.recent.rotate_right(1);
        self.recent[0] = addr >> 5;
        self.branch_history = (self.branch_history << 1) | (e >> 16 & 1) as u16;
        self.last_loaded = e;
        ctx
    }
}

/// Drive both prefetchers over `accesses` and assert lockstep equality of
/// every per-access and end-of-run observable.
fn run_lockstep(cfg: ContextConfig, label: &str, accesses: &[AccessContext]) {
    let mut core = ContextPrefetcher::new(cfg.clone());
    let mut spec = SpecPrefetcher::new(cfg);

    let mut core_out: Vec<PrefetchReq> = Vec::new();
    let mut spec_out: Vec<PrefetchReq> = Vec::new();
    let mut entropy = 0x10c5u64 ^ accesses.len() as u64;

    for (i, ctx) in accesses.iter().enumerate() {
        let e = mix(&mut entropy);
        // Vary MSHR pressure so both the real-issue and forced-shadow
        // paths are exercised.
        let pressure = MemPressure {
            l1_mshr_free: (e % 5) as u32,
            l2_mshr_free: 8,
        };

        core_out.clear();
        spec_out.clear();
        core.on_access(ctx, pressure, &mut core_out);
        spec.on_access(ctx, pressure, &mut spec_out);

        assert_eq!(
            core_out.len(),
            spec_out.len(),
            "[{label}] access {i} (seq {}): request count diverged\n core: {core_out:?}\n spec: {spec_out:?}",
            ctx.seq
        );
        for (c, s) in core_out.iter().zip(spec_out.iter()) {
            assert_eq!(
                (c.addr, c.shadow, c.tag),
                (s.addr, s.shadow, s.tag),
                "[{label}] access {i} (seq {}): request diverged\n core: {core_out:?}\n spec: {spec_out:?}",
                ctx.seq
            );
        }

        // Occasionally bounce an issued request to exercise demotion.
        if !core_out.is_empty() && e & 31 == 7 {
            let tag = core_out[0].tag;
            core.on_issue_result(tag, false);
            spec.on_issue_result(tag, false);
        }

        // Probe was_predicted on both a just-seen block and a random one.
        let probe = if e & 1 == 0 { ctx.addr } else { e };
        assert_eq!(
            core.was_predicted(probe),
            spec.was_predicted(probe),
            "[{label}] access {i}: was_predicted({probe:#x}) diverged"
        );

        assert_eq!(
            core.config().exploration.accuracy().to_bits(),
            spec.accuracy().to_bits(),
            "[{label}] access {i}: accuracy diverged (core {}, spec {})",
            core.config().exploration.accuracy(),
            spec.accuracy()
        );
    }

    core.finish();
    spec.finish();

    let cs = stats_fields(core.learn_stats());
    let ss = stats_fields(spec.learn_stats());
    assert_eq!(cs, ss, "[{label}] final learning stats diverged");
    assert_eq!(
        core.learn_stats().depth_cdf.points(),
        spec.learn_stats().depth_cdf.points(),
        "[{label}] hit-depth CDF diverged"
    );

    let cm = core.stats();
    let sm = Prefetcher::stats(&spec);
    assert_eq!(
        (cm.issued, cm.rejected, cm.shadow, cm.useful),
        (sm.issued, sm.rejected, sm.shadow, sm.useful),
        "[{label}] memory-side stats diverged"
    );

    assert_eq!(
        core.cst().occupancy(),
        spec.cst_occupancy(),
        "[{label}] CST occupancy diverged"
    );
    let core_dump: Vec<_> = core.cst().dump().collect();
    assert_eq!(
        core_dump,
        spec.cst_dump(),
        "[{label}] CST contents diverged"
    );

    assert_eq!(
        core.reducer().active_histogram(),
        spec.reducer_histogram(),
        "[{label}] reducer histogram diverged"
    );
    assert_eq!(
        (core.reducer().activations(), core.reducer().deactivations()),
        (spec.reducer_activations(), spec.reducer_deactivations()),
        "[{label}] reducer activation counters diverged"
    );
}

fn stride_stream(n: usize, seed: u64) -> Vec<AccessContext> {
    let mut st = StreamState::new(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n as u64 {
        // Three interleaved strided arrays, different PCs.
        let (pc, addr) = match i % 3 {
            0 => (0x400100, 0x10_0000 + (i / 3) * 64),
            1 => (0x400140, 0x80_0000 + (i / 3) * 192),
            _ => (0x400180, 0x20_0000 + (i / 3) * 320),
        };
        out.push(st.ctx(i, pc, addr));
    }
    out
}

fn pointer_chain_stream(n: usize, seed: u64) -> Vec<AccessContext> {
    let mut st = StreamState::new(seed);
    // A shuffled ring of "nodes": each access loads the next pointer.
    let nodes = 256u64;
    let mut next = vec![0u64; nodes as usize];
    let mut e = seed | 1;
    for (i, slot) in next.iter_mut().enumerate() {
        *slot = (i as u64 + 1 + mix(&mut e) % 7) % nodes;
    }
    let mut cur = 0u64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let addr = 0x30_0000 + cur * 96;
        let ctx = st.ctx(i, 0x4002a0, addr);
        out.push(ctx);
        cur = next[cur as usize];
    }
    out
}

fn random_stream(n: usize, seed: u64) -> Vec<AccessContext> {
    let mut st = StreamState::new(seed);
    let mut e = seed ^ 0xdead_beef;
    let mut out = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let addr = mix(&mut e) % (1 << 24);
        let pc = 0x400000 + (mix(&mut e) % 16) * 4;
        out.push(st.ctx(i, pc, addr));
    }
    out
}

#[test]
fn lockstep_stride_default_config() {
    run_lockstep(
        ContextConfig::default(),
        "stride/default",
        &stride_stream(4000, 11),
    );
}

#[test]
fn lockstep_pointer_chain_default_config() {
    run_lockstep(
        ContextConfig::default(),
        "chain/default",
        &pointer_chain_stream(4000, 22),
    );
}

#[test]
fn lockstep_random_default_config() {
    run_lockstep(
        ContextConfig::default(),
        "random/default",
        &random_stream(3000, 33),
    );
}

#[test]
fn lockstep_variant_config() {
    // A deliberately different operating point: small tables, wide deltas,
    // different seed and exploration band.
    let cfg = ContextConfig {
        seed: 0xd1ff,
        cst_entries: 256,
        reducer_entries: 1024,
        initial_active: 3,
        delta_bits: 16,
        max_degree: 4,
        ..ContextConfig::default()
    };
    run_lockstep(cfg.clone(), "stride/variant", &stride_stream(3000, 44));
    run_lockstep(cfg, "chain/variant", &pointer_chain_stream(3000, 55));
}

#[test]
fn lockstep_shadow_disabled() {
    let cfg = ContextConfig {
        disable_shadow: true,
        ..ContextConfig::default()
    };
    run_lockstep(cfg, "stride/no-shadow", &stride_stream(2500, 66));
}
