//! Paper-fidelity suite: pins the behaviours the ISCA'15 paper actually
//! claims — the bell-shaped reward over the timeliness window (Fig 5),
//! attribute deactivation under CST underload (§4.3 reducer), exploration
//! rate falling as accuracy rises (§4.4 adaptive ε-greedy), and saturating
//! link scores in the CST — against both the spec tables and the optimized
//! implementations, so a regression in either breaks loudly.

use semloc_bandit::scored::Replacement;
use semloc_bandit::{AdaptiveEpsilon, BellReward, ExplorationPolicy, RewardFunction};
use semloc_context::{ContextConfig, ContextStatesTable, FullHash, Reducer};
use semloc_spec::{SpecCst, SpecPrefetcher, SpecReducer};

// ---------------------------------------------------------------------------
// Bell reward (Fig 5)
// ---------------------------------------------------------------------------

#[test]
fn bell_is_positive_inside_window_and_peaks_at_center() {
    let bell = BellReward::paper_default();
    let (lo, hi) = bell.window();
    let center = (lo + hi) / 2;
    let peak_val = bell.reward(center);
    assert_eq!(
        peak_val,
        bell.peak(),
        "reward at center must equal the peak"
    );
    for d in lo..=hi {
        let r = bell.reward(d);
        assert!(
            r > 0,
            "reward({d}) = {r} must be positive inside the window"
        );
        assert!(r <= peak_val, "reward({d}) = {r} must not exceed the peak");
    }
}

#[test]
fn bell_is_symmetric_around_the_window_center() {
    // The Gaussian part is even around the center, so equal offsets on
    // either side earn exactly the same reward (both sides stay in the
    // `depth <= hi` regime).
    let bell = BellReward::paper_default();
    let (lo, hi) = bell.window();
    let center = (lo + hi) / 2;
    for k in 0..=(hi - center) {
        assert_eq!(
            bell.reward(center - k),
            bell.reward(center + k),
            "bell must be symmetric at offset {k}"
        );
    }
}

#[test]
fn bell_decays_monotonically_away_from_center() {
    let bell = BellReward::paper_default();
    let (lo, hi) = bell.window();
    let center = (lo + hi) / 2;
    // Toward the late side (smaller depth): non-increasing reward.
    for d in 1..=center {
        assert!(
            bell.reward(d - 1) <= bell.reward(d),
            "late-side reward must not rise as depth falls ({d})"
        );
    }
    // Toward the early edge: non-increasing as depth grows.
    for d in center..hi {
        assert!(
            bell.reward(d + 1) <= bell.reward(d),
            "early-side reward must not rise as depth grows ({d})"
        );
    }
}

#[test]
fn bell_penalizes_past_the_early_edge_then_decays_to_zero() {
    let bell = BellReward::paper_default();
    let (_, hi) = bell.window();
    assert!(
        bell.reward(hi + 1) < 0,
        "just past the early edge must be penalized"
    );
    // The penalty decays toward zero (never positive) with distance.
    let mut prev = bell.reward(hi + 1);
    for d in (hi + 2)..(hi + 200) {
        let r = bell.reward(d);
        assert!(r <= 0, "past-edge reward must never be positive ({d})");
        assert!(
            r >= prev,
            "past-edge penalty must decay with distance ({d})"
        );
        prev = r;
    }
    assert_eq!(
        bell.reward(hi + 200),
        0,
        "far past the edge the penalty vanishes"
    );
    assert!(bell.expiry() < 0, "expiry must be a strict penalty");
}

#[test]
fn spec_bell_matches_optimized_bell_bit_for_bit() {
    for cfg in [
        ContextConfig::default(),
        ContextConfig {
            reward: BellReward::new(10, 64, 20, -6, -3).into(),
            ..ContextConfig::default()
        },
    ] {
        let bell = cfg.reward.clone();
        let spec = SpecPrefetcher::new(cfg);
        for depth in 0..=512 {
            assert_eq!(
                spec.bell_reward(depth),
                bell.reward(depth),
                "spec bell diverged from BellReward at depth {depth}"
            );
        }
        assert_eq!(spec.expiry_reward(), bell.expiry());
    }
}

// ---------------------------------------------------------------------------
// Adaptive ε (§4.4)
// ---------------------------------------------------------------------------

#[test]
fn epsilon_falls_as_accuracy_rises_and_is_bounded() {
    let mut eps = AdaptiveEpsilon::paper_default();
    let (emin, emax) = (eps.eps_min(), eps.eps_max());
    assert_eq!(
        eps.epsilon(),
        emax,
        "zero accuracy must explore at the maximum rate"
    );
    let mut prev = eps.epsilon();
    for _ in 0..1500 {
        eps.observe(true);
        let e = eps.epsilon();
        assert!(
            e <= prev,
            "epsilon must not rise while accuracy improves ({e} > {prev})"
        );
        assert!((emin..=emax).contains(&e), "epsilon out of bounds: {e}");
        prev = e;
    }
    assert!(
        eps.epsilon() - emin < 1e-3,
        "sustained hits must drive epsilon to its floor (got {})",
        eps.epsilon()
    );

    // Sustained misses recover exploration.
    for _ in 0..1500 {
        eps.observe(false);
    }
    assert!(
        emax - eps.epsilon() < 1e-3,
        "sustained misses must drive epsilon back to its ceiling (got {})",
        eps.epsilon()
    );
}

#[test]
fn epsilon_matches_its_closed_form_at_every_step() {
    // ε = eps_min + (eps_max − eps_min)·(1 − accuracy), bit for bit — the
    // same restatement the spec prefetcher uses internally.
    let mut eps = AdaptiveEpsilon::new(0.05, 0.4, 0.02);
    let (emin, emax) = (eps.eps_min(), eps.eps_max());
    let mut e = 0x5eedu64;
    for i in 0..1000 {
        e = e
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        eps.observe(e >> 33 & 1 == 0);
        let expected = emin + (emax - emin) * (1.0 - eps.accuracy());
        assert_eq!(
            eps.epsilon().to_bits(),
            expected.to_bits(),
            "closed form diverged at step {i}"
        );
    }
}

// ---------------------------------------------------------------------------
// Reducer: attribute deactivation under underload (§4.3)
// ---------------------------------------------------------------------------

#[test]
fn reducer_deactivates_attributes_under_sustained_underload() {
    let mut spec = SpecReducer::new(64, 4, 3, -8, false);
    let full = FullHash(0x1234);
    assert_eq!(spec.active_count(full), 4);

    // Underload pressure must cross the threshold before anything changes,
    // then shed one attribute at a time.
    let mut shrinks = 0;
    let mut prev = 4;
    for _ in 0..40 {
        spec.report_underload(full);
        let now = spec.active_count(full);
        assert!(now <= prev, "active count must not grow under underload");
        if now < prev {
            assert_eq!(prev - now, 1, "deactivation sheds one attribute at a time");
            shrinks += 1;
        }
        prev = now;
    }
    assert!(
        shrinks >= 2,
        "sustained underload must deactivate attributes"
    );
    assert!(
        spec.active_count(full) >= 1,
        "at least one attribute always stays active"
    );
    assert_eq!(spec.deactivations(), shrinks);
    assert_eq!(spec.activations(), 0);
}

#[test]
fn reducer_spec_and_core_agree_under_random_pressure() {
    let mut spec = SpecReducer::new(128, 4, 3, -8, false);
    let mut core = Reducer::new(128, 4, 3, -8, false);
    let mut e = 0xabcdu64;
    for i in 0..20_000 {
        e = e
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let full = FullHash((e >> 16) as u16 & 0x3ff);
        match (e >> 40) % 3 {
            0 => {
                spec.report_overload(full);
                core.report_overload(full);
            }
            1 => {
                spec.report_underload(full);
                core.report_underload(full);
            }
            _ => {
                assert_eq!(
                    spec.active_count(full),
                    core.active_count(full),
                    "active_count diverged at step {i}"
                );
            }
        }
    }
    assert_eq!(spec.active_histogram(), core.active_histogram());
    assert_eq!(spec.activations(), core.activations());
    assert_eq!(spec.deactivations(), core.deactivations());
    assert!(
        spec.activations() > 0 && spec.deactivations() > 0,
        "the random stream must exercise both directions"
    );
}

#[test]
fn frozen_reducer_never_moves() {
    let mut spec = SpecReducer::new(64, 4, 3, -8, true);
    let full = FullHash(0x42);
    for _ in 0..100 {
        spec.report_underload(full);
        spec.report_overload(full);
    }
    assert_eq!(spec.active_count(full), 4);
    assert_eq!(spec.activations() + spec.deactivations(), 0);
}

// ---------------------------------------------------------------------------
// CST: link-score saturation
// ---------------------------------------------------------------------------

#[test]
fn cst_scores_saturate_instead_of_wrapping() {
    let mut spec = SpecCst::new(64, Replacement::LowestScore);
    let mut core = ContextStatesTable::new(64, Replacement::LowestScore);
    let key = semloc_context::ContextKey(0x77);

    spec.add_candidate(key, 3);
    core.add_candidate(key, 3);

    // Hammer the link with large positive rewards: the score must pin at
    // i8::MAX and stay there.
    for _ in 0..100 {
        spec.reward(key, 3, 100);
        core.reward(key, 3, 100);
    }
    let spec_score = spec.score_of(key, 3).expect("link present");
    assert_eq!(
        spec_score,
        i8::MAX,
        "positive rewards must saturate at +127"
    );
    let core_score = core
        .lookup(key)
        .and_then(|s| s.score_of(3))
        .expect("link present");
    assert_eq!(core_score, i8::MAX);

    // And back down: large penalties pin at i8::MIN without wrapping.
    for _ in 0..200 {
        spec.reward(key, 3, -100);
        core.reward(key, 3, -100);
    }
    assert_eq!(spec.score_of(key, 3), Some(i8::MIN));
    assert_eq!(core.lookup(key).and_then(|s| s.score_of(3)), Some(i8::MIN));
}

#[test]
fn cst_capped_reward_respects_the_cap_but_never_lowers_a_score() {
    let mut spec = SpecCst::new(64, Replacement::LowestScore);
    let key = semloc_context::ContextKey(0x99);
    spec.add_candidate(key, -5);

    // Capped rewards stop at the cap...
    for _ in 0..50 {
        spec.reward_capped(key, -5, 10, 32);
    }
    assert_eq!(spec.score_of(key, -5), Some(32));

    // ...but a score already above the cap is left alone, not clipped down.
    spec.reward(key, -5, 60);
    let high = spec.score_of(key, -5).unwrap();
    assert!(high > 32);
    spec.reward_capped(key, -5, 10, 32);
    assert_eq!(
        spec.score_of(key, -5),
        Some(high),
        "a capped reward must never reduce an above-cap score"
    );
}
