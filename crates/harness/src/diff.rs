//! Differential oracle: drive the optimized [`ContextPrefetcher`] and the
//! naive [`SpecPrefetcher`] in lockstep over a replayed workload and report
//! the *first* access at which any observable diverges.
//!
//! Observables compared on **every** access: the emitted prefetch requests
//! (address, shadow flag, tag), every learning counter, the memory-side
//! counters, the exploration accuracy (bit-for-bit as f64), and
//! `was_predicted` probes issued by the cache hierarchy. Every
//! [`TeePrefetcher::DEEP_EVERY`] accesses — and once more at the end of the
//! run — the full table state is compared too: CST contents, reducer
//! histogram and activation counters, hit-depth CDF.
//!
//! On divergence the tee records a [`Divergence`] carrying both
//! implementations' full state dumps and lets the optimized side finish the
//! run alone (the simulation stays valid; the report is inspected
//! afterwards).

use std::cell::Cell;
use std::fmt;

use semloc_bandit::ExplorationPolicy;
use semloc_context::{ContextConfig, ContextPrefetcher, ContextStats};
use semloc_cpu::Cpu;
use semloc_mem::{Hierarchy, MemPressure, PrefetchReq, Prefetcher, PrefetcherStats};
use semloc_spec::SpecPrefetcher;
use semloc_trace::{AccessContext, Addr, SnapReader, SnapWriter};
use semloc_workloads::Kernel;

use crate::config::SimConfig;
use crate::store::TraceStore;

/// The first observable difference between the two implementations.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Demand-access ordinal (1-based) at which the divergence appeared.
    pub access: u64,
    /// Sequence number of the offending access.
    pub seq: u64,
    /// Which observable diverged (e.g. `request[0].addr`, `stats.hits`).
    pub field: String,
    /// The optimized implementation's value, rendered.
    pub core_value: String,
    /// The spec implementation's value, rendered.
    pub spec_value: String,
    /// The access context that triggered the divergence.
    pub context: String,
    /// Full state dump of the optimized prefetcher at the divergence.
    pub core_dump: String,
    /// Full state dump of the spec prefetcher at the divergence.
    pub spec_dump: String,
    /// Serialized snapshot of the optimized prefetcher, restorable into a
    /// fresh `ContextPrefetcher` of the same configuration via
    /// `Prefetcher::restore_state` for post-mortem single-stepping.
    pub core_snapshot: Vec<u8>,
    /// Serialized snapshot of the spec prefetcher (same contract).
    pub spec_snapshot: Vec<u8>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence at access {} (seq {}): {}",
            self.access, self.seq, self.field
        )?;
        writeln!(f, "  core: {}", self.core_value)?;
        writeln!(f, "  spec: {}", self.spec_value)?;
        writeln!(f, "  context: {}", self.context)?;
        writeln!(f, "--- core state ---")?;
        writeln!(f, "{}", self.core_dump)?;
        writeln!(f, "--- spec state ---")?;
        write!(f, "{}", self.spec_dump)
    }
}

/// Outcome of one lockstep run.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Workload name.
    pub kernel: &'static str,
    /// Configuration label (for the report line).
    pub label: String,
    /// Demand accesses compared in lockstep.
    pub accesses: u64,
    /// First divergence, if any.
    pub divergence: Option<Divergence>,
}

impl DiffReport {
    /// True when the whole run stayed in lockstep.
    pub fn clean(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Flatten `ContextStats` into labelled counters (it has no `PartialEq`,
/// by design — comparisons must name the field that moved).
fn stats_fields(s: &ContextStats) -> [(&'static str, u64); 10] {
    [
        ("real_issued", s.real_issued),
        ("shadow_issued", s.shadow_issued),
        ("demoted", s.demoted),
        ("hits", s.hits),
        ("expired", s.expired),
        ("timely_hits", s.timely_hits),
        ("late_hits", s.late_hits),
        ("early_hits", s.early_hits),
        ("collected", s.collected),
        ("delta_overflow", s.delta_overflow),
    ]
}

fn mem_fields(s: &PrefetcherStats) -> [(&'static str, u64); 4] {
    [
        ("issued", s.issued),
        ("rejected", s.rejected),
        ("shadow", s.shadow),
        ("useful", s.useful),
    ]
}

fn core_dump_state(core: &ContextPrefetcher) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "core state:");
    let _ = writeln!(
        s,
        "  accuracy={:.6} epsilon={:.6}",
        core.config().exploration.accuracy(),
        core.config().exploration.epsilon()
    );
    let _ = writeln!(s, "  stats={:?}", core.learn_stats());
    let _ = writeln!(s, "  mem_stats={:?}", core.stats());
    let _ = writeln!(
        s,
        "  reducer: hist={:?} act={} deact={}",
        core.reducer().active_histogram(),
        core.reducer().activations(),
        core.reducer().deactivations()
    );
    let dump: Vec<_> = core.cst().dump().collect();
    let _ = writeln!(s, "  cst: occupancy={}", dump.len());
    for (i, links) in dump.iter().take(64) {
        let _ = writeln!(s, "    [{i}] {links:?}");
    }
    if dump.len() > 64 {
        let _ = writeln!(s, "    ... {} more entries", dump.len() - 64);
    }
    s
}

/// A [`Prefetcher`] that drives the optimized and spec implementations in
/// lockstep, forwarding the optimized side's behaviour to the hierarchy.
pub struct TeePrefetcher {
    core: ContextPrefetcher,
    spec: SpecPrefetcher,
    accesses: u64,
    divergence: Option<Divergence>,
    spec_out: Vec<PrefetchReq>,
    // `was_predicted` takes `&self`; a mismatch is stashed here and
    // promoted to a divergence on the next `&mut self` entry point.
    was_pred_mismatch: Cell<Option<Addr>>,
}

impl TeePrefetcher {
    /// Accesses between full table-state comparisons.
    pub const DEEP_EVERY: u64 = 4096;

    /// Build both implementations from the same configuration.
    pub fn new(cfg: ContextConfig) -> Self {
        TeePrefetcher {
            core: ContextPrefetcher::new(cfg.clone()),
            spec: SpecPrefetcher::new(cfg),
            accesses: 0,
            divergence: None,
            spec_out: Vec::new(),
            was_pred_mismatch: Cell::new(None),
        }
    }

    /// Demand accesses processed in lockstep so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The first recorded divergence.
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    /// Consume the tee, yielding the first divergence.
    pub fn into_divergence(self) -> Option<Divergence> {
        self.divergence
    }

    fn diverge(
        &mut self,
        seq: u64,
        field: String,
        core_value: String,
        spec_value: String,
        context: String,
    ) {
        if self.divergence.is_some() {
            return;
        }
        let mut core_snap = SnapWriter::new();
        self.core.save_state(&mut core_snap);
        let mut spec_snap = SnapWriter::new();
        self.spec.save_state(&mut spec_snap);
        self.divergence = Some(Divergence {
            access: self.accesses,
            seq,
            field,
            core_value,
            spec_value,
            context,
            core_dump: core_dump_state(&self.core),
            spec_dump: self.spec.dump_state(),
            core_snapshot: core_snap.into_bytes(),
            spec_snapshot: spec_snap.into_bytes(),
        });
    }

    fn promote_was_pred_mismatch(&mut self, seq: u64) {
        if let Some(addr) = self.was_pred_mismatch.take() {
            let c = self.core.was_predicted(addr);
            let s = self.spec.was_predicted(addr);
            self.diverge(
                seq,
                format!("was_predicted({addr:#x})"),
                c.to_string(),
                s.to_string(),
                "probe from the cache hierarchy".into(),
            );
        }
    }

    /// Per-access shallow comparison: emitted requests + counters.
    fn compare_access(&mut self, ctx: &AccessContext, out: &[PrefetchReq]) {
        let seq = ctx.seq;
        if out.len() != self.spec_out.len() {
            self.diverge(
                seq,
                "request count".into(),
                format!("{:?}", out),
                format!("{:?}", self.spec_out),
                format!("{ctx:?}"),
            );
            return;
        }
        for (i, (c, s)) in out.iter().zip(self.spec_out.iter()).enumerate() {
            if (c.addr, c.shadow, c.tag) != (s.addr, s.shadow, s.tag) {
                self.diverge(
                    seq,
                    format!("request[{i}]"),
                    format!("{c:?}"),
                    format!("{s:?}"),
                    format!("{ctx:?}"),
                );
                return;
            }
        }
        let cs = stats_fields(self.core.learn_stats());
        let ss = stats_fields(self.spec.learn_stats());
        for (&(name, c), &(_, s)) in cs.iter().zip(ss.iter()) {
            if c != s {
                self.diverge(
                    seq,
                    format!("stats.{name}"),
                    c.to_string(),
                    s.to_string(),
                    format!("{ctx:?}"),
                );
                return;
            }
        }
        let cm = mem_fields(&self.core.stats());
        let sm = mem_fields(&Prefetcher::stats(&self.spec));
        for (&(name, c), &(_, s)) in cm.iter().zip(sm.iter()) {
            if c != s {
                self.diverge(
                    seq,
                    format!("mem_stats.{name}"),
                    c.to_string(),
                    s.to_string(),
                    format!("{ctx:?}"),
                );
                return;
            }
        }
        let ca = self.core.config().exploration.accuracy();
        let sa = self.spec.accuracy();
        if ca.to_bits() != sa.to_bits() {
            self.diverge(
                seq,
                "exploration.accuracy".into(),
                format!("{ca:?}"),
                format!("{sa:?}"),
                format!("{ctx:?}"),
            );
        }
    }

    /// Full table-state comparison (CST, reducer, hit-depth CDF).
    fn compare_deep(&mut self, seq: u64) {
        if self.divergence.is_some() {
            return;
        }
        let core_occ = self.core.cst().occupancy();
        let spec_occ = self.spec.cst_occupancy();
        if core_occ != spec_occ {
            self.diverge(
                seq,
                "cst.occupancy".into(),
                core_occ.to_string(),
                spec_occ.to_string(),
                "deep state comparison".into(),
            );
            return;
        }
        let core_dump: Vec<_> = self.core.cst().dump().collect();
        let spec_dump = self.spec.cst_dump();
        if core_dump != spec_dump {
            let (idx, (c, s)) = core_dump
                .iter()
                .zip(spec_dump.iter())
                .enumerate()
                .find(|(_, (c, s))| c != s)
                .expect("unequal dumps differ somewhere");
            self.diverge(
                seq,
                format!("cst.entry[{idx}]"),
                format!("{c:?}"),
                format!("{s:?}"),
                "deep state comparison".into(),
            );
            return;
        }
        let ch = self.core.reducer().active_histogram();
        let sh = self.spec.reducer_histogram();
        if ch != sh {
            self.diverge(
                seq,
                "reducer.active_histogram".into(),
                format!("{ch:?}"),
                format!("{sh:?}"),
                "deep state comparison".into(),
            );
            return;
        }
        let c = (
            self.core.reducer().activations(),
            self.core.reducer().deactivations(),
        );
        let s = (
            self.spec.reducer_activations(),
            self.spec.reducer_deactivations(),
        );
        if c != s {
            self.diverge(
                seq,
                "reducer.(activations, deactivations)".into(),
                format!("{c:?}"),
                format!("{s:?}"),
                "deep state comparison".into(),
            );
            return;
        }
        let cp = self.core.learn_stats().depth_cdf.points();
        let sp = self.spec.learn_stats().depth_cdf.points();
        if cp != sp {
            self.diverge(
                seq,
                "depth_cdf.points".into(),
                format!("{cp:?}"),
                format!("{sp:?}"),
                "deep state comparison".into(),
            );
        }
    }
}

impl Prefetcher for TeePrefetcher {
    fn name(&self) -> &'static str {
        "diff-tee"
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        if self.divergence.is_some() {
            // After a divergence only the optimized side keeps running;
            // comparing further accesses would just cascade.
            self.core.on_access(ctx, pressure, out);
            return;
        }
        self.accesses += 1;
        self.promote_was_pred_mismatch(ctx.seq);
        let start = out.len();
        self.spec_out.clear();
        self.core.on_access(ctx, pressure, out);
        self.spec.on_access(ctx, pressure, &mut self.spec_out);
        let core_out = out[start..].to_vec();
        self.compare_access(ctx, &core_out);
        if self.accesses.is_multiple_of(Self::DEEP_EVERY) {
            self.compare_deep(ctx.seq);
        }
    }

    fn on_issue_result(&mut self, tag: u64, issued: bool) {
        self.core.on_issue_result(tag, issued);
        if self.divergence.is_none() {
            self.spec.on_issue_result(tag, issued);
        }
    }

    fn was_predicted(&self, addr: Addr) -> bool {
        let c = self.core.was_predicted(addr);
        if self.divergence.is_none() {
            let s = self.spec.was_predicted(addr);
            if c != s && self.was_pred_mismatch.get().is_none() {
                self.was_pred_mismatch.set(Some(addr));
            }
        }
        c
    }

    fn storage_bytes(&self) -> usize {
        self.core.storage_bytes()
    }

    fn stats(&self) -> PrefetcherStats {
        self.core.stats()
    }

    fn finish(&mut self) {
        self.core.finish();
        if self.divergence.is_none() {
            self.spec.finish();
            let last_seq = u64::MAX;
            self.promote_was_pred_mismatch(last_seq);
            // End-of-run: final counters + full table state must agree.
            let cs = stats_fields(self.core.learn_stats());
            let ss = stats_fields(self.spec.learn_stats());
            for (&(name, c), &(_, s)) in cs.iter().zip(ss.iter()) {
                if c != s {
                    self.diverge(
                        last_seq,
                        format!("final stats.{name}"),
                        c.to_string(),
                        s.to_string(),
                        "end-of-run drain".into(),
                    );
                    return;
                }
            }
            self.compare_deep(last_seq);
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.section(*b"TEE0", 1);
        w.put_u64(self.accesses);
        self.core.save_state(w);
        self.spec.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"TEE0", 1)?;
        self.accesses = r.get_u64()?;
        self.core.restore_state(r)?;
        self.spec.restore_state(r)?;
        // A tee is only checkpointed while clean; transient probe state
        // does not survive a restore.
        self.divergence = None;
        self.was_pred_mismatch.set(None);
        self.spec_out.clear();
        Ok(())
    }
}

/// Run `kernel` through the store-replayed simulator with both prefetcher
/// implementations in lockstep; returns how far they agreed.
pub fn diff_kernel(
    store: &TraceStore,
    kernel: &dyn Kernel,
    label: &str,
    ctx_cfg: ContextConfig,
    sim: &SimConfig,
) -> DiffReport {
    let replay = store.replay(kernel, sim.instr_budget);
    let tee = TeePrefetcher::new(ctx_cfg);
    let hierarchy = Hierarchy::new(sim.mem.clone(), tee);
    let mut cpu = Cpu::new(sim.cpu.clone(), hierarchy, sim.instr_budget);
    replay.run(&mut cpu);
    let (_, mem) = cpu.finish();
    let tee = mem.prefetcher();
    DiffReport {
        kernel: kernel.name(),
        label: label.to_string(),
        accesses: tee.accesses(),
        divergence: tee.divergence().cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_workloads::kernel_by_name;

    #[test]
    fn diff_runner_stays_clean_on_real_workloads() {
        let store = TraceStore::new();
        let sim = SimConfig::default().with_budget(30_000);
        for name in ["array", "list"] {
            let k = kernel_by_name(name).unwrap();
            let report = diff_kernel(
                &store,
                k.as_ref(),
                "default",
                ContextConfig::default(),
                &sim,
            );
            assert!(report.accesses > 1_000, "{name}: too few accesses compared");
            if let Some(d) = &report.divergence {
                panic!("{name}: {d}");
            }
        }
    }

    #[test]
    fn diff_runner_covers_a_non_default_composition() {
        // The trait pipeline (PR 9) composes reward shapes the spec must
        // restate independently: a gaussian-with-penalty cell has to stay
        // clean through the tee, and — oracle sensitivity — a seeded
        // discrepancy inside that same composition must still be caught.
        let store = TraceStore::new();
        let sim = SimConfig::default().with_budget(30_000);
        let k = kernel_by_name("list").expect("registered kernel");
        let cfg = semloc_context::PipelineConfig {
            reward: semloc_bandit::GaussianPenaltyReward::snippet_default().into(),
            ..semloc_context::PipelineConfig::default()
        }
        .apply(ContextConfig::default());
        let report = diff_kernel(&store, k.as_ref(), "gauss-pen", cfg.clone(), &sim);
        assert!(report.accesses > 1_000, "too few accesses compared");
        if let Some(d) = &report.divergence {
            panic!("gauss-pen composition diverged: {d}");
        }

        let mut cfg_spec = cfg.clone();
        cfg_spec.seed ^= 1;
        let tee = TeePrefetcher {
            core: ContextPrefetcher::new(cfg),
            spec: SpecPrefetcher::new(cfg_spec),
            accesses: 0,
            divergence: None,
            spec_out: Vec::new(),
            was_pred_mismatch: Cell::new(None),
        };
        let replay = store.replay(k.as_ref(), sim.instr_budget);
        let hierarchy = Hierarchy::new(sim.mem.clone(), tee);
        let mut cpu = Cpu::new(sim.cpu.clone(), hierarchy, sim.instr_budget);
        replay.run(&mut cpu);
        let (_, mem) = cpu.finish();
        let d = mem
            .prefetcher()
            .divergence()
            .cloned()
            .expect("a seeded discrepancy under gauss-pen must be detected");
        assert!(d.access > 0);
    }

    #[test]
    fn diff_runner_catches_a_seeded_discrepancy() {
        // Oracle sensitivity: run the two implementations with *different*
        // seeds — the RNG streams part ways, so the tee must report a
        // divergence (if it stayed \"clean\" the oracle is blind).
        let store = TraceStore::new();
        let sim = SimConfig::default().with_budget(30_000);
        let k = kernel_by_name("list").unwrap();
        let replay = store.replay(k.as_ref(), sim.instr_budget);
        let mut cfg_spec = ContextConfig::default();
        cfg_spec.seed ^= 1;
        let tee = TeePrefetcher {
            core: ContextPrefetcher::new(ContextConfig::default()),
            spec: SpecPrefetcher::new(cfg_spec),
            accesses: 0,
            divergence: None,
            spec_out: Vec::new(),
            was_pred_mismatch: Cell::new(None),
        };
        let hierarchy = Hierarchy::new(sim.mem.clone(), tee);
        let mut cpu = Cpu::new(sim.cpu.clone(), hierarchy, sim.instr_budget);
        replay.run(&mut cpu);
        let (_, mem) = cpu.finish();
        let d = mem
            .prefetcher()
            .divergence()
            .cloned()
            .expect("mismatched seeds must be detected");
        assert!(d.access > 0);
        assert!(!d.core_dump.is_empty() && !d.spec_dump.is_empty());

        // Both sides' serialized snapshots restore into fresh instances of
        // the same configuration, bit-identically (save → restore → save).
        let mut core = ContextPrefetcher::new(ContextConfig::default());
        let mut r = SnapReader::new(&d.core_snapshot);
        core.restore_state(&mut r).expect("core snapshot restores");
        r.expect_end().expect("core snapshot fully consumed");
        let mut w = SnapWriter::new();
        core.save_state(&mut w);
        assert_eq!(d.core_snapshot, w.into_bytes());

        let mut cfg_spec = ContextConfig::default();
        cfg_spec.seed ^= 1;
        let mut spec = SpecPrefetcher::new(cfg_spec);
        let mut r = SnapReader::new(&d.spec_snapshot);
        spec.restore_state(&mut r).expect("spec snapshot restores");
        r.expect_end().expect("spec snapshot fully consumed");
        let mut w = SnapWriter::new();
        spec.save_state(&mut w);
        assert_eq!(d.spec_snapshot, w.into_bytes());
    }
}
