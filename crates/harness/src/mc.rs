//! `semloc-interfere`: the shared-L2 multi-core simulation mode.
//!
//! An [`McEngine`] steps N cores — each a private-L1 [`Cpu`] with its own
//! prefetcher instance over its own replayed schedule — against one
//! [`SharedL2`] (finite MSHRs + a DRAM bandwidth model), so co-running
//! workloads interfere through capacity, MSHR occupancy, and DRAM queueing.
//!
//! Determinism: cores are stepped **round-robin over a fixed cycle
//! quantum** — the horizon advances by [`McConfig::quantum`], then core 0,
//! 1, …, N−1 each run until their own clock reaches the horizon. The
//! interleaving of shared-L2 requests is therefore a pure function of the
//! schedules and configuration (never of wall-clock or thread timing), the
//! per-core clock skew is bounded by one quantum, and the golden-digest
//! discipline extends to multi-core runs: the same composed scenario pins
//! the same digest across `SEMLOC_POOL_THREADS` and every `SEMLOC_ACCEL`
//! tier. To keep that invariance trivial the multi-core engine always
//! streams the varint decode (the single-core decoded-block fast path is
//! quantum-oblivious, so it is not used here).
//!
//! Checkpointing follows the single-core engine's contract: an
//! [`McCheckpoint`] snapshots the shared level once plus every core, is
//! fingerprinted against the full engine identity, and restore/fork
//! round-trip bit-identically mid-schedule (pinned by `mc_snapshot.rs`).

use std::io;

use semloc_cpu::Cpu;
use semloc_mem::{DramConfig, Hierarchy, Prefetcher, SharedL2, SharedL2Handle, SharedL2Stats};
use semloc_trace::{snap_err, Cycle, SnapReader, SnapWriter, Snapshot, TraceSink};
use semloc_workloads::{Kernel, ReplayKernel};

use crate::config::SimConfig;
use crate::prefetchers::PrefetcherKind;
use crate::runner::{collect_result, Digest, RunResult};

/// Version of the [`McCheckpoint`] encoding (the `MCCK` section version).
pub const MC_CKPT_VERSION: u32 = 1;

/// Interference-mode parameters on top of a [`SimConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct McConfig {
    /// Round-robin cycle quantum: the bound on inter-core clock skew.
    pub quantum: Cycle,
    /// The shared level's DRAM bandwidth model.
    pub dram: DramConfig,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            quantum: 2_000,
            dram: DramConfig::default(),
        }
    }
}

impl McConfig {
    /// Defaults overridden by `SEMLOC_MC_QUANTUM`, `SEMLOC_MC_DRAM_CHANNELS`
    /// and `SEMLOC_MC_DRAM_INTERVAL`.
    pub fn from_env() -> Self {
        let var = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&v| v > 0)
        };
        let mut mc = McConfig::default();
        if let Some(q) = var("SEMLOC_MC_QUANTUM") {
            mc.quantum = q;
        }
        if let Some(c) = var("SEMLOC_MC_DRAM_CHANNELS") {
            mc.dram.channels = c as u32;
        }
        if let Some(i) = var("SEMLOC_MC_DRAM_INTERVAL") {
            mc.dram.service_interval = i;
        }
        mc
    }
}

/// One core of a multi-core engine: its schedule, prefetcher kind, and the
/// private-L1 [`Cpu`] wired to the shared level.
pub struct McCore {
    replay: ReplayKernel,
    kind: PrefetcherKind,
    cpu: Cpu<Box<dyn Prefetcher>>,
}

impl McCore {
    /// Instructions this core has consumed.
    pub fn cursor(&self) -> u64 {
        self.cpu.stats().instructions
    }

    /// This core's current clock (max retire cycle).
    pub fn cycles(&self) -> Cycle {
        self.cpu.stats().cycles
    }

    /// The schedule this core replays.
    pub fn replay(&self) -> &ReplayKernel {
        &self.replay
    }

    /// The prefetcher kind this core runs.
    pub fn kind(&self) -> &PrefetcherKind {
        &self.kind
    }

    fn done(&self, budget: u64) -> bool {
        let c = self.cursor();
        (budget != 0 && c >= budget) || c >= self.replay.trace().buf.len() as u64
    }
}

impl Snapshot for McCore {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"MCOR", 1);
        self.cpu.save(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> io::Result<()> {
        r.section(*b"MCOR", 1)?;
        self.cpu.restore(r)
    }
}

impl std::fmt::Debug for McCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McCore")
            .field("kernel", &self.replay.name())
            .field("kind", &self.kind)
            .field("cursor", &self.cursor())
            .finish_non_exhaustive()
    }
}

/// A complete, restorable snapshot of a paused [`McEngine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct McCheckpoint {
    /// Encoding version ([`MC_CKPT_VERSION`] when produced by this build).
    pub version: u32,
    /// Fingerprint of the engine identity: core count, every core's trace
    /// key + prefetcher kind, [`SimConfig`] and [`McConfig`].
    pub fingerprint: u64,
    /// The stepping horizon when the checkpoint was taken.
    pub horizon: Cycle,
    /// Per-core instruction cursors (resume positions).
    pub cursors: Vec<u64>,
    /// Serialized shared level + every core.
    pub payload: Vec<u8>,
}

impl McCheckpoint {
    /// Serialize to the flat `MCCK` byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.section(*b"MCCK", self.version);
        w.put_u64(self.fingerprint);
        w.put_u64(self.horizon);
        w.put_len(self.cursors.len());
        for &c in &self.cursors {
            w.put_u64(c);
        }
        w.put_len(self.payload.len());
        w.put_bytes(&self.payload);
        w.into_bytes()
    }

    /// Parse bytes produced by [`McCheckpoint::to_bytes`], rejecting foreign
    /// tags, versions, truncation and trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<McCheckpoint> {
        let mut r = SnapReader::new(bytes);
        r.section(*b"MCCK", MC_CKPT_VERSION)?;
        let fingerprint = r.get_u64()?;
        let horizon = r.get_u64()?;
        let n = r.get_len()?;
        let mut cursors = Vec::with_capacity(n);
        for _ in 0..n {
            cursors.push(r.get_u64()?);
        }
        let n = r.get_len()?;
        let payload = r.get_bytes(n)?.to_vec();
        r.expect_end()?;
        Ok(McCheckpoint {
            version: MC_CKPT_VERSION,
            fingerprint,
            horizon,
            cursors,
            payload,
        })
    }
}

/// The multi-core engine: N cores round-robin over a shared L2.
pub struct McEngine {
    shared: SharedL2Handle,
    cores: Vec<McCore>,
    config: SimConfig,
    mc: McConfig,
    horizon: Cycle,
}

impl McEngine {
    /// A fresh engine: one core per `(schedule, prefetcher)` spec, all
    /// contending for one shared L2 built from `config.mem.l2` + `mc.dram`.
    /// Kinds must be fully resolved (no [`PrefetcherKind::ContextCalibrated`]
    /// recipes), as with [`crate::Engine::new`].
    pub fn new(
        specs: Vec<(ReplayKernel, PrefetcherKind)>,
        config: &SimConfig,
        mc: &McConfig,
    ) -> McEngine {
        assert!(!specs.is_empty(), "a multi-core engine needs >= 1 core");
        let shared = SharedL2::handle(config.mem.l2.clone(), mc.dram.clone());
        let cores = specs
            .into_iter()
            .map(|(replay, kind)| {
                let hierarchy =
                    Hierarchy::new_shared(config.mem.clone(), kind.build(), shared.clone());
                let cpu = Cpu::new(config.cpu.clone(), hierarchy, config.instr_budget);
                McCore { replay, kind, cpu }
            })
            .collect();
        McEngine {
            shared,
            cores,
            config: config.clone(),
            mc: mc.clone(),
            horizon: 0,
        }
    }

    /// The cores, in stepping order.
    pub fn cores(&self) -> &[McCore] {
        &self.cores
    }

    /// The shared level's aggregate statistics so far.
    pub fn shared_stats(&self) -> SharedL2Stats {
        *self.shared.borrow().stats()
    }

    /// Identity fingerprint over core count, every core's trace key and
    /// prefetcher kind (in order), and both configurations.
    pub fn fingerprint(&self) -> u64 {
        let mut d = Digest::new();
        d.u64(self.cores.len() as u64);
        for core in &self.cores {
            d.str(&core.replay.trace_key());
            d.str(&format!("{:?}", core.kind));
        }
        d.str(&format!("{:?}", self.config));
        d.str(&format!("{:?}", self.mc));
        d.finish()
    }

    /// Whether every core has exhausted its budget or schedule.
    pub fn done(&self) -> bool {
        let budget = self.config.instr_budget;
        self.cores.iter().all(|c| c.done(budget))
    }

    /// Advance the horizon by one quantum and run each core (in index
    /// order) until its clock reaches the horizon. Streams the varint
    /// decode one instruction at a time — see the module docs for why the
    /// decoded-block path is deliberately not used here.
    pub fn step_quantum(&mut self) {
        self.horizon += self.mc.quantum;
        let budget = self.config.instr_budget;
        for core in &mut self.cores {
            if core.done(budget) {
                continue;
            }
            let start = core.cursor() as usize;
            for i in core.replay.trace().buf.iter_from(start) {
                let stats = core.cpu.stats();
                if stats.cycles >= self.horizon || (budget != 0 && stats.instructions >= budget) {
                    break;
                }
                core.cpu.instr(i);
            }
        }
    }

    /// Run to completion (every core's budget or schedule exhausted).
    pub fn run_to_end(&mut self) {
        while !self.done() {
            self.step_quantum();
        }
    }

    /// Snapshot the complete multi-core state (shared level once, then
    /// every core) at the current horizon.
    pub fn checkpoint(&self) -> McCheckpoint {
        let mut w = SnapWriter::new();
        self.shared.borrow().save(&mut w);
        for core in &self.cores {
            core.save(&mut w);
        }
        McCheckpoint {
            version: MC_CKPT_VERSION,
            fingerprint: self.fingerprint(),
            horizon: self.horizon,
            cursors: self.cores.iter().map(|c| c.cursor()).collect(),
            payload: w.into_bytes(),
        }
    }

    /// Restore to a previously captured checkpoint. The checkpoint must
    /// carry this engine's own fingerprint and a supported version; a
    /// payload whose restored per-core cursors disagree with the recorded
    /// ones is rejected too. On error the engine must be discarded.
    pub fn restore(&mut self, ckpt: &McCheckpoint) -> io::Result<()> {
        if ckpt.version != MC_CKPT_VERSION {
            return Err(snap_err(format!(
                "mc checkpoint version {} unsupported (engine speaks {MC_CKPT_VERSION})",
                ckpt.version
            )));
        }
        let own = self.fingerprint();
        if ckpt.fingerprint != own {
            return Err(snap_err(format!(
                "mc checkpoint fingerprint {:#018x} does not match engine {own:#018x}",
                ckpt.fingerprint
            )));
        }
        if ckpt.cursors.len() != self.cores.len() {
            return Err(snap_err(format!(
                "mc checkpoint has {} cores, engine has {}",
                ckpt.cursors.len(),
                self.cores.len()
            )));
        }
        let mut r = SnapReader::new(&ckpt.payload);
        self.shared.borrow_mut().restore(&mut r)?;
        for core in &mut self.cores {
            core.restore(&mut r)?;
        }
        r.expect_end()?;
        for (core, &cursor) in self.cores.iter().zip(&ckpt.cursors) {
            if core.cursor() != cursor {
                return Err(snap_err(format!(
                    "mc checkpoint cursor {} disagrees with restored count {}",
                    cursor,
                    core.cursor()
                )));
            }
        }
        self.horizon = ckpt.horizon;
        Ok(())
    }

    /// Fork: a new engine at exactly this warm state, free to run ahead
    /// independently. Goes through checkpoint/restore, so every fork is a
    /// standing round-trip test.
    pub fn fork(&self) -> McEngine {
        let specs = self
            .cores
            .iter()
            .map(|c| (c.replay.clone(), c.kind.clone()))
            .collect();
        let mut e = McEngine::new(specs, &self.config, &self.mc);
        #[allow(clippy::expect_used)]
        e.restore(&self.checkpoint())
            .expect("a fresh mc engine restores its own checkpoint");
        e
    }

    /// Finish the run: per-core end-of-run accounting (exactly as a
    /// single-core [`crate::Engine::finish`] would produce), plus the
    /// shared level's aggregate counters.
    pub fn finish(self) -> (Vec<RunResult>, SharedL2Stats) {
        let results = self
            .cores
            .into_iter()
            .map(|c| collect_result(c.replay.name(), c.kind.label(), c.cpu))
            .collect();
        let shared = *self.shared.borrow().stats();
        (results, shared)
    }
}

impl std::fmt::Debug for McEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McEngine")
            .field("cores", &self.cores)
            .field("horizon", &self.horizon)
            .finish_non_exhaustive()
    }
}

/// Digest of one finished multi-core run: every core's
/// [`RunResult::stats_digest`] (in core order) folded with every shared
/// counter. This is what the multi-core golden-digest leg pins.
pub fn mc_digest(results: &[RunResult], shared: &SharedL2Stats) -> u64 {
    let mut d = Digest::new();
    for r in results {
        d.u64(r.stats_digest());
    }
    for v in [
        shared.demand_lookups,
        shared.demand_hits,
        shared.demand_misses,
        shared.prefetch_fills,
        shared.writebacks,
        shared.dram_queue_cycles,
    ] {
        d.u64(v);
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_workloads::{capture_kernel, kernel_by_name};
    use std::sync::Arc;

    fn replay_of(name: &str, budget: u64) -> ReplayKernel {
        let k = kernel_by_name(name).expect("registry kernel");
        ReplayKernel::new(Arc::new(capture_kernel(k.as_ref(), budget)))
    }

    fn cfg() -> SimConfig {
        SimConfig::default().with_budget(30_000)
    }

    #[test]
    fn two_core_run_is_deterministic() {
        let run = || {
            let mut e = McEngine::new(
                vec![
                    (replay_of("list", 30_000), PrefetcherKind::context()),
                    (replay_of("array", 30_000), PrefetcherKind::Stride),
                ],
                &cfg(),
                &McConfig::default(),
            );
            e.run_to_end();
            let (results, shared) = e.finish();
            mc_digest(&results, &shared)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cores_interfere_through_the_shared_level() {
        // A streaming antagonist must visibly interfere with a pointer
        // chaser: the shared level sees both cores' traffic, DRAM queueing
        // exceeds what the victim generates alone, and the victim's own
        // statistics change. Directional asserts on victim cycles or L2
        // misses are deliberately avoided: a delayed fill can convert a
        // later fresh miss into a cheap MSHR merge, so neither metric is
        // monotone under added load. (Direct cross-core eviction is pinned
        // by the shared_l2 unit tests.)
        let mc = McConfig {
            dram: semloc_mem::DramConfig {
                channels: 1,
                service_interval: 64,
                ..semloc_mem::DramConfig::default()
            },
            ..McConfig::default()
        };
        let mut small_l2 = cfg();
        small_l2.mem.l2.size_bytes = 64 * 1024;
        let (solo, solo_shared) = {
            let mut e = McEngine::new(
                vec![(replay_of("list", 30_000), PrefetcherKind::None)],
                &small_l2,
                &mc,
            );
            e.run_to_end();
            let (mut results, shared) = e.finish();
            (results.remove(0), shared)
        };
        let (contended, shared) = {
            let mut e = McEngine::new(
                vec![
                    (replay_of("list", 30_000), PrefetcherKind::None),
                    (replay_of("array", 30_000), PrefetcherKind::Stride),
                ],
                &small_l2,
                &mc,
            );
            e.run_to_end();
            let (mut results, shared) = e.finish();
            (results.remove(0), shared)
        };
        assert_eq!(solo.cpu.instructions, contended.cpu.instructions);
        assert!(
            shared.dram_queue_cycles > solo_shared.dram_queue_cycles,
            "antagonist traffic must add DRAM queueing ({} vs {})",
            shared.dram_queue_cycles,
            solo_shared.dram_queue_cycles
        );
        assert!(
            shared.demand_lookups > solo_shared.demand_lookups,
            "the shared level must see the antagonist's traffic too ({} vs {})",
            shared.demand_lookups,
            solo_shared.demand_lookups
        );
        assert_ne!(
            contended.stats_digest(),
            solo.stats_digest(),
            "interference must be visible in the victim's statistics"
        );
    }

    #[test]
    fn clock_skew_is_bounded_by_one_quantum() {
        let mc = McConfig::default();
        let mut e = McEngine::new(
            vec![
                (replay_of("list", 30_000), PrefetcherKind::context()),
                (replay_of("mcf", 30_000), PrefetcherKind::Stride),
            ],
            &cfg(),
            &mc,
        );
        for _ in 0..40 {
            e.step_quantum();
            if e.done() {
                break;
            }
            for core in e.cores() {
                assert!(core.cycles() + mc.quantum >= e.horizon.saturating_sub(mc.quantum));
            }
        }
    }

    #[test]
    fn foreign_mc_checkpoints_are_rejected() {
        let mut a = McEngine::new(
            vec![(replay_of("list", 30_000), PrefetcherKind::Stride)],
            &cfg(),
            &McConfig::default(),
        );
        a.step_quantum();
        let ckpt = a.checkpoint();

        // Different core count.
        let mut b = McEngine::new(
            vec![
                (replay_of("list", 30_000), PrefetcherKind::Stride),
                (replay_of("array", 30_000), PrefetcherKind::Stride),
            ],
            &cfg(),
            &McConfig::default(),
        );
        assert!(b.restore(&ckpt).is_err());

        // Different quantum.
        let mut c = McEngine::new(
            vec![(replay_of("list", 30_000), PrefetcherKind::Stride)],
            &cfg(),
            &McConfig {
                quantum: 999,
                ..McConfig::default()
            },
        );
        assert!(c.restore(&ckpt).is_err());

        // Bad version.
        let mut bad = ckpt.clone();
        bad.version = 9;
        let mut d = McEngine::new(
            vec![(replay_of("list", 30_000), PrefetcherKind::Stride)],
            &cfg(),
            &McConfig::default(),
        );
        assert!(d.restore(&bad).is_err());
    }

    #[test]
    fn mc_checkpoint_bytes_roundtrip_and_reject_corruption() {
        let mut e = McEngine::new(
            vec![(replay_of("mcf", 30_000), PrefetcherKind::context())],
            &cfg(),
            &McConfig::default(),
        );
        for _ in 0..3 {
            e.step_quantum();
        }
        let ckpt = e.checkpoint();
        let bytes = ckpt.to_bytes();
        assert_eq!(McCheckpoint::from_bytes(&bytes).expect("clean bytes"), ckpt);
        assert!(McCheckpoint::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(McCheckpoint::from_bytes(&extra).is_err());
        let mut flipped = bytes;
        flipped[0] ^= 0xff;
        assert!(McCheckpoint::from_bytes(&flipped).is_err());
    }
}
