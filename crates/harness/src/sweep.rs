//! Parameter sweeps: the Fig 13 storage sweep and the DESIGN.md ablations.

use semloc_bandit::scored::Replacement;
use semloc_bandit::BellReward;
use semloc_context::ContextConfig;
use semloc_workloads::KernelBox;

use crate::config::SimConfig;
use crate::prefetchers::PrefetcherKind;
use crate::runner::{run_kernel_with_store, RunResult};
use crate::store::TraceStore;
use semloc_workloads::Kernel;

/// Simulate one kernel's (no-prefetch baseline, context) pair against the
/// store's result memo. The shared setup block of both storage sweeps and
/// the arena tournament: keeping the pair in one helper keeps the memo
/// keys — and therefore the cross-runner sharing — aligned.
pub(crate) fn baseline_context_pair(
    store: &TraceStore,
    kernel: &dyn Kernel,
    config: &SimConfig,
    ctx_cfg: &ContextConfig,
) -> (RunResult, RunResult) {
    let base = run_kernel_with_store(store, kernel, &PrefetcherKind::None, config);
    let ctx = run_kernel_with_store(
        store,
        kernel,
        &PrefetcherKind::Context(ctx_cfg.clone()),
        config,
    );
    (base, ctx)
}

/// One point of the Fig 13 storage sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// CST entries at this point.
    pub cst_entries: usize,
    /// Total prefetcher storage in bytes.
    pub storage_bytes: usize,
    /// Geometric-mean speedup over the Top-10 subset.
    pub top10: f64,
    /// Geometric-mean speedup over all kernels.
    pub all: f64,
}

/// Run the Fig 13 storage sweep: scale the CST (with the reducer at 8×)
/// over `sizes` and measure geomean speedups for all kernels and the
/// Top-10 subset (selected at the default size, as the paper does).
/// Uses the process-global [`TraceStore`].
pub fn storage_sweep(
    kernels: &[KernelBox],
    sizes: &[usize],
    config: &SimConfig,
    progress: impl FnMut(usize),
) -> Vec<SweepPoint> {
    storage_sweep_with_store(TraceStore::global(), kernels, sizes, config, progress)
}

/// [`storage_sweep`] against an explicit [`TraceStore`]. Each kernel's
/// no-prefetch baseline is simulated once and memoized in the store's
/// full-run result memo — every sweep size reuses it (and a matrix run
/// over the same store contributes its cells too, and vice versa).
pub fn storage_sweep_with_store(
    store: &TraceStore,
    kernels: &[KernelBox],
    sizes: &[usize],
    config: &SimConfig,
    mut progress: impl FnMut(usize),
) -> Vec<SweepPoint> {
    // Baselines and Top-10 selection from the default configuration.
    // Kernels with a degenerate speedup (zero/non-finite IPC) are dropped
    // from the ranking instead of poisoning the sort.
    let default_cfg = ContextConfig::default();
    let mut bases = Vec::new();
    let mut default_speedups = Vec::new();
    for k in kernels {
        let (base, ctx) = baseline_context_pair(store, k.as_ref(), config, &default_cfg);
        if let Ok(s) = ctx.speedup_over(&base) {
            default_speedups.push((k.name(), s));
        }
        bases.push(base);
    }
    let mut ranked = default_speedups;
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top10: Vec<&str> = ranked.iter().take(10).map(|&(n, _)| n).collect();

    let geomean = |vals: &[f64]| -> f64 {
        let n = vals.len();
        if n == 0 {
            return 0.0;
        }
        (vals.iter().map(|v| v.ln()).sum::<f64>() / n as f64).exp()
    };

    let mut points = Vec::new();
    for &size in sizes {
        let cfg = ContextConfig::default().with_cst_entries(size);
        let storage = cfg.storage_bytes();
        let mut all = Vec::new();
        let mut top = Vec::new();
        for (i, k) in kernels.iter().enumerate() {
            let ctx = run_kernel_with_store(
                store,
                k.as_ref(),
                &PrefetcherKind::Context(cfg.clone()),
                config,
            );
            let Ok(s) = ctx.speedup_over(&bases[i]) else {
                continue;
            };
            all.push(s);
            if top10.contains(&k.name()) {
                top.push(s);
            }
        }
        points.push(SweepPoint {
            cst_entries: size,
            storage_bytes: storage,
            top10: geomean(&top),
            all: geomean(&all),
        });
        progress(size);
    }
    points
}

/// [`storage_sweep`] fanned out over the work-stealing shard pool
/// (see [`crate::pool`]): every independent cell — per-kernel baseline +
/// default-context pair, then every (size, kernel) context run — becomes a
/// pool job. Bit-identical to the sequential sweep: cells are
/// deterministic and the aggregation below walks them in the same order.
pub fn storage_sweep_parallel(
    kernels: &[KernelBox],
    sizes: &[usize],
    config: &SimConfig,
    threads: usize,
    progress: impl Fn(usize) + Sync,
) -> Vec<SweepPoint> {
    storage_sweep_parallel_with_store(
        TraceStore::global(),
        kernels,
        sizes,
        config,
        threads,
        progress,
    )
}

/// [`storage_sweep_parallel`] against an explicit [`TraceStore`]; see
/// [`storage_sweep_with_store`] for the memoization contract (shared with
/// matrix runs over the same store).
pub fn storage_sweep_parallel_with_store(
    store: &TraceStore,
    kernels: &[KernelBox],
    sizes: &[usize],
    config: &SimConfig,
    threads: usize,
    progress: impl Fn(usize) + Sync,
) -> Vec<SweepPoint> {
    // Phase 1: per-kernel (baseline, default-context) pairs for the Top-10
    // selection. One job per kernel keeps the pair on one warm trace.
    let default_cfg = ContextConfig::default();
    let pairs = crate::pool::run_sharded(threads, (0..kernels.len()).collect(), |ki| {
        baseline_context_pair(store, kernels[ki].as_ref(), config, &default_cfg)
    });
    let mut bases = Vec::new();
    let mut ranked = Vec::new();
    for (k, (base, ctx)) in kernels.iter().zip(pairs) {
        if let Ok(s) = ctx.speedup_over(&base) {
            ranked.push((k.name(), s));
        }
        bases.push(base);
    }
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top10: Vec<&str> = ranked.iter().take(10).map(|&(n, _)| n).collect();

    // Phase 2: the full (size, kernel) grid, size-major so the aggregation
    // below can consume whole rows in job order.
    let grid: Vec<(usize, usize)> = (0..sizes.len())
        .flat_map(|si| (0..kernels.len()).map(move |ki| (si, ki)))
        .collect();
    let cells = crate::pool::run_sharded(threads, grid, |(si, ki)| {
        let cfg = ContextConfig::default().with_cst_entries(sizes[si]);
        run_kernel_with_store(
            store,
            kernels[ki].as_ref(),
            &PrefetcherKind::Context(cfg),
            config,
        )
    });

    let geomean = |vals: &[f64]| -> f64 {
        let n = vals.len();
        if n == 0 {
            return 0.0;
        }
        (vals.iter().map(|v| v.ln()).sum::<f64>() / n as f64).exp()
    };

    let mut points = Vec::new();
    for (si, &size) in sizes.iter().enumerate() {
        let storage = ContextConfig::default()
            .with_cst_entries(size)
            .storage_bytes();
        let mut all = Vec::new();
        let mut top = Vec::new();
        for (ki, k) in kernels.iter().enumerate() {
            let ctx = &cells[si * kernels.len() + ki];
            let Ok(s) = ctx.speedup_over(&bases[ki]) else {
                continue;
            };
            all.push(s);
            if top10.contains(&k.name()) {
                top.push(s);
            }
        }
        points.push(SweepPoint {
            cst_entries: size,
            storage_bytes: storage,
            top10: geomean(&top),
            all: geomean(&all),
        });
        progress(size);
    }
    points
}

/// A named ablation of the context prefetcher (the design decisions
/// DESIGN.md §6 calls out).
#[derive(Clone, Debug)]
pub struct AblationVariant {
    /// Variant name.
    pub name: &'static str,
    /// What the variant changes.
    pub description: &'static str,
    /// The modified configuration.
    pub config: ContextConfig,
}

/// The ablation lineup: baseline plus one modification each.
pub fn ablation_variants() -> Vec<AblationVariant> {
    let base = ContextConfig::default();
    // The flat-reward variant removes the bell's shaping: a uniform
    // positive window with no negative edges (approximating
    // [`StepReward`] while keeping one reward type in the config).
    let mut flat = base.clone();
    flat.reward = BellReward::new(1, 127, 16, 0, -4).into();

    let mut frozen = base.clone();
    frozen.freeze_reducer = true;

    let mut no_shadow = base.clone();
    no_shadow.disable_shadow = true;

    let mut sparse = base.clone();
    sparse.sample_depths = vec![30];

    let mut fifo = base.clone();
    fifo.replacement = Replacement::Fifo;

    let mut no_split = base.clone();
    no_split.split_strength_bar = i8::MIN; // nothing ever counts as weak

    let mut wide = base.clone();
    wide.delta_bits = 16;

    vec![
        AblationVariant {
            name: "baseline",
            description: "paper configuration",
            config: base,
        },
        AblationVariant {
            name: "flat-reward",
            description: "no bell shape: uniform positive window 1..127, no negative edges",
            config: flat,
        },
        AblationVariant {
            name: "frozen-reducer",
            description: "dynamic feature selection disabled (fixed 4-attribute contexts)",
            config: frozen,
        },
        AblationVariant {
            name: "no-shadow",
            description: "no deliberate shadow prefetches (exploration off)",
            config: no_shadow,
        },
        AblationVariant {
            name: "single-depth",
            description: "history sampled at one depth instead of twelve",
            config: sparse,
        },
        AblationVariant {
            name: "fifo-replacement",
            description: "CST links replaced FIFO instead of lowest-score",
            config: fifo,
        },
        AblationVariant {
            name: "no-split-signal",
            description:
                "shared-and-weak context splitting disabled (only proven-eviction overload)",
            config: no_split,
        },
        AblationVariant {
            name: "wide-delta",
            description:
                "EXTENSION: 16-bit deltas (+-1 MB reach) relaxing the paper's +-4 kB range limit",
            config: wide,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_workloads::kernel_by_name;

    #[test]
    fn sweep_produces_monotone_storage() {
        let kernels = vec![kernel_by_name("list").unwrap()];
        let cfg = SimConfig::quick();
        let pts = storage_sweep(&kernels, &[256, 1024], &cfg, |_| {});
        assert_eq!(pts.len(), 2);
        assert!(pts[1].storage_bytes > pts[0].storage_bytes);
        assert!(pts.iter().all(|p| p.all > 0.0 && p.top10 > 0.0));
    }

    #[test]
    fn sweep_reuses_memoized_results() {
        let kernels = vec![kernel_by_name("list").unwrap()];
        let cfg = SimConfig::quick();
        // Memo off: every run simulates.
        let off = TraceStore::without_result_memo();
        let pts_off = storage_sweep_with_store(&off, &kernels, &[256, 1024], &cfg, |_| {});
        // Memo on: identical points...
        let on = TraceStore::new();
        let pts_on = storage_sweep_with_store(&on, &kernels, &[256, 1024], &cfg, |_| {});
        for (a, b) in pts_off.iter().zip(&pts_on) {
            assert_eq!(
                a.all.to_bits(),
                b.all.to_bits(),
                "memoization changed results"
            );
            assert_eq!(a.top10.to_bits(), b.top10.to_bits());
        }
        // ...and a second sweep over the same store simulates nothing new.
        let (_, misses_before) = on.result_stats();
        storage_sweep_with_store(&on, &kernels, &[256, 1024], &cfg, |_| {});
        let (hits, misses_after) = on.result_stats();
        assert_eq!(
            misses_after, misses_before,
            "second sweep must be memo-only"
        );
        assert!(hits >= 4, "baseline + context runs must hit the memo");
    }

    #[test]
    fn parallel_sweep_matches_sequential_bitwise() {
        let kernels = vec![
            kernel_by_name("array").unwrap(),
            kernel_by_name("list").unwrap(),
        ];
        let cfg = SimConfig::quick();
        let seq_store = TraceStore::new();
        let seq = storage_sweep_with_store(&seq_store, &kernels, &[256, 1024], &cfg, |_| {});
        for threads in [1, 4] {
            let par_store = TraceStore::new();
            let par = storage_sweep_parallel_with_store(
                &par_store,
                &kernels,
                &[256, 1024],
                &cfg,
                threads,
                |_| {},
            );
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.cst_entries, b.cst_entries);
                assert_eq!(a.storage_bytes, b.storage_bytes);
                assert_eq!(
                    a.all.to_bits(),
                    b.all.to_bits(),
                    "shard pool changed the sweep ({threads} threads)"
                );
                assert_eq!(a.top10.to_bits(), b.top10.to_bits());
            }
        }
    }

    #[test]
    fn ablations_are_distinct_and_valid() {
        let variants = ablation_variants();
        assert!(variants.len() >= 6);
        let names: std::collections::BTreeSet<_> = variants.iter().map(|v| v.name).collect();
        assert_eq!(names.len(), variants.len());
        for v in &variants {
            v.config.validate();
        }
        assert!(variants.iter().any(|v| v.config.freeze_reducer));
        assert!(variants.iter().any(|v| v.config.disable_shadow));
    }
}
