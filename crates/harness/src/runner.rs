//! Single-run driver: workload × prefetcher × configuration → statistics.

use std::io;

use semloc_context::{ContextConfig, ContextPrefetcher, ContextStats};
use semloc_cpu::{Cpu, CpuStats};
use semloc_mem::{Hierarchy, MemStats, Prefetcher, PrefetcherStats};
use semloc_trace::{snap_err, SnapReader, SnapWriter, Snapshot};
use semloc_workloads::{Kernel, ReplayKernel};

use crate::ckpt::{CkptPayload, CkptStore};
use crate::config::SimConfig;
use crate::engine::{Engine, SimCheckpoint};
use crate::prefetchers::PrefetcherKind;
use crate::store::TraceStore;

/// Everything measured in one simulated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub kernel: &'static str,
    /// Prefetcher name.
    pub prefetcher: &'static str,
    /// Core statistics (IPC, CPI, instruction mix).
    pub cpu: CpuStats,
    /// Memory-system statistics (MPKI, access classes).
    pub mem: MemStats,
    /// Generic prefetcher counters.
    pub pf: PrefetcherStats,
    /// Context-prefetcher learning statistics (hit-depth CDF, convergence),
    /// when the context prefetcher ran.
    pub learn: Option<ContextStats>,
    /// Prefetcher storage budget in bytes.
    pub storage_bytes: usize,
}

/// Why a speedup could not be computed. Speedups are IPC ratios; a zero or
/// non-finite IPC would silently poison every aggregate built on top
/// (geomeans, Top-N rankings, CSV exports), so the accessors surface the
/// degenerate cases as typed errors instead of returning `0.0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpeedupError {
    /// The baseline run's IPC is zero — the ratio is undefined.
    ZeroBaselineIpc,
    /// An IPC involved is NaN, infinite, or zero, so no meaningful ratio
    /// exists (e.g. a run that retired no instructions).
    NonFiniteIpc,
    /// The matrix holds no result for the requested (kernel, prefetcher)
    /// cell.
    MissingCell,
}

impl std::fmt::Display for SpeedupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpeedupError::ZeroBaselineIpc => write!(f, "baseline IPC is zero"),
            SpeedupError::NonFiniteIpc => write!(f, "IPC is zero or non-finite"),
            SpeedupError::MissingCell => write!(f, "no result for the requested matrix cell"),
        }
    }
}

impl std::error::Error for SpeedupError {}

impl RunResult {
    /// Speedup of this run relative to `baseline` (same kernel, usually
    /// the no-prefetch run): ratio of IPCs. Degenerate IPCs (zero or
    /// non-finite on either side) are a typed [`SpeedupError`], never a
    /// silent `0.0`.
    pub fn speedup_over(&self, baseline: &RunResult) -> Result<f64, SpeedupError> {
        let b = baseline.cpu.ipc();
        let s = self.cpu.ipc();
        if !b.is_finite() || !s.is_finite() || s == 0.0 {
            return Err(SpeedupError::NonFiniteIpc);
        }
        if b == 0.0 {
            return Err(SpeedupError::ZeroBaselineIpc);
        }
        Ok(s / b)
    }

    /// L1 misses per kilo-instruction.
    pub fn l1_mpki(&self) -> f64 {
        self.mem.l1_mpki(self.cpu.instructions)
    }

    /// L2 misses per kilo-instruction.
    pub fn l2_mpki(&self) -> f64 {
        self.mem.l2_mpki(self.cpu.instructions)
    }

    /// Order-independent fingerprint of every observable counter of this
    /// run (`cpu` and `mem`, field by field). Two runs with the same digest
    /// produced bit-identical simulation results; the golden-digest tests
    /// pin these across runner variants and hot-path rewrites.
    pub fn stats_digest(&self) -> u64 {
        let mut d = Digest::new();
        d.str(self.kernel);
        d.str(self.prefetcher);
        let c = &self.cpu;
        for v in [
            c.instructions,
            c.cycles,
            c.loads,
            c.stores,
            c.branches,
            c.mispredicts,
        ] {
            d.u64(v);
        }
        let m = &self.mem;
        for v in [
            m.demand_accesses,
            m.l1_misses,
            m.l1_mshr_merges,
            m.l2_misses,
            m.prefetches_issued,
            m.prefetches_rejected,
            m.prefetches_filtered,
            m.writebacks,
        ] {
            d.u64(v);
        }
        let k = &m.classes;
        for v in [
            k.hit_prefetched,
            k.shorter_wait,
            k.non_timely,
            k.miss_not_prefetched,
            k.hit_older_demand,
            k.prefetch_never_hit,
        ] {
            d.u64(v);
        }
        d.finish()
    }

    /// Serialize this result as an `RRES` snapshot section (the payload of
    /// a *final* on-disk checkpoint — see [`crate::ckpt`]).
    pub(crate) fn save_snap(&self, w: &mut SnapWriter) {
        w.section(*b"RRES", 1);
        w.put_len(self.kernel.len());
        w.put_bytes(self.kernel.as_bytes());
        w.put_len(self.prefetcher.len());
        w.put_bytes(self.prefetcher.as_bytes());
        self.cpu.save(w);
        self.mem.save(w);
        self.pf.save(w);
        w.put_bool(self.learn.is_some());
        if let Some(l) = &self.learn {
            l.save(w);
        }
        w.put_u64(self.storage_bytes as u64);
    }

    /// Parse an `RRES` section written by [`RunResult::save_snap`]. The
    /// embedded kernel and prefetcher names must match the expected cell
    /// (names live in the registry as `&'static str`s, so the caller
    /// supplies the identities it is resuming and the snapshot merely
    /// confirms them).
    pub(crate) fn restore_snap(
        kernel: &'static str,
        prefetcher: &'static str,
        r: &mut SnapReader<'_>,
    ) -> io::Result<RunResult> {
        r.section(*b"RRES", 1)?;
        let n = r.get_len()?;
        if r.get_bytes(n)? != kernel.as_bytes() {
            return Err(snap_err(format!(
                "result snapshot is not for kernel {kernel}"
            )));
        }
        let n = r.get_len()?;
        if r.get_bytes(n)? != prefetcher.as_bytes() {
            return Err(snap_err(format!(
                "result snapshot is not for prefetcher {prefetcher}"
            )));
        }
        let mut cpu = CpuStats::default();
        cpu.restore(r)?;
        let mut mem = MemStats::default();
        mem.restore(r)?;
        let mut pf = PrefetcherStats::default();
        pf.restore(r)?;
        let learn = if r.get_bool()? {
            let mut l = ContextStats::default();
            l.restore(r)?;
            Some(l)
        } else {
            None
        };
        let storage_bytes = r.get_u64()? as usize;
        Ok(RunResult {
            kernel,
            prefetcher,
            cpu,
            mem,
            pf,
            learn,
            storage_bytes,
        })
    }
}

/// FNV-1a accumulator used for stats digests (stable across platforms —
/// no dependence on `Hash` implementations or struct layout).
pub(crate) struct Digest(u64);

impl Digest {
    pub(crate) fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        for b in s.bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = (self.0 ^ 0xff).wrapping_mul(0x100_0000_01b3);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Run `kernel` under `prefetcher` with `config`, through the process-global
/// [`TraceStore`](crate::TraceStore): the kernel's instruction stream is
/// captured on first use and replayed (bit-identically — see the
/// golden-digest test) for every subsequent run of the same configuration.
///
/// For [`PrefetcherKind::ContextCalibrated`] a short no-prefetch probe run
/// first measures the workload parameters of the §4.3 prefetch-distance
/// formula, then the context prefetcher runs with its reward window
/// calibrated to the measured target.
/// ```rust
/// use semloc_harness::{run_kernel, PrefetcherKind, SimConfig};
/// use semloc_workloads::kernel_by_name;
///
/// let cfg = SimConfig::default().with_budget(20_000);
/// let kernel = kernel_by_name("array").expect("registered");
/// let result = run_kernel(kernel.as_ref(), &PrefetcherKind::Stride, &cfg);
/// assert!(result.cpu.ipc() > 0.0);
/// ```
pub fn run_kernel(
    kernel: &dyn Kernel,
    prefetcher: &PrefetcherKind,
    config: &SimConfig,
) -> RunResult {
    run_kernel_with_store(TraceStore::global(), kernel, prefetcher, config)
}

/// [`run_kernel`] against an explicit [`TraceStore`] (the global store is
/// just a shared instance of this). Useful for benchmarks and tests that
/// need an isolated cache.
///
/// Identical (kernel, prefetcher, config) cells are served from the
/// store's full-run result memo — runs are deterministic, so the memoized
/// clone is bit-identical to recomputation. On a memo miss the cell runs
/// through the checkpointable [`Engine`], resuming from and periodically
/// writing on-disk checkpoints when the process-global
/// [`CkptStore`](crate::CkptStore) is enabled (`SEMLOC_CKPT_DIR`).
pub fn run_kernel_with_store(
    store: &TraceStore,
    kernel: &dyn Kernel,
    prefetcher: &PrefetcherKind,
    config: &SimConfig,
) -> RunResult {
    let key = result_key(kernel, prefetcher, config);
    if let Some(r) = store.result(&key) {
        return r;
    }
    let (replay, kind) = resolve(store, kernel, prefetcher, config);
    let r = run_resumable(CkptStore::global(), replay, &kind, config);
    store.memoize_result(&key, &r);
    r
}

/// The result-memo identity of one cell: the kernel's full configuration
/// (its trace key), the *requested* prefetcher kind, and the simulation
/// config. Debug renderings cover every field of both structs.
pub(crate) fn result_key(
    kernel: &dyn Kernel,
    prefetcher: &PrefetcherKind,
    config: &SimConfig,
) -> String {
    format!("{}|{:?}|{:?}", kernel.trace_key(), prefetcher, config)
}

/// The calibration probe's configuration: a no-prefetch run over a quarter
/// of the budget (clamped to a useful measurement window).
pub(crate) fn probe_config(config: &SimConfig) -> SimConfig {
    SimConfig {
        instr_budget: (config.instr_budget / 4).clamp(40_000, 150_000),
        ..config.clone()
    }
}

/// Memo key of a calibration-probe result (see [`TraceStore::probe_result`]).
pub(crate) fn probe_key(kernel: &dyn Kernel, probe_cfg: &SimConfig) -> String {
    format!("{}|{:?}", kernel.trace_key(), probe_cfg)
}

/// Retune `base` with the §4.3 prefetch-distance formula from a measured
/// no-prefetch probe.
fn calibrate(base: &ContextConfig, probe: &RunResult, config: &SimConfig) -> PrefetcherKind {
    let penalty = config.mem.l1_miss_penalty(probe.mem.l2_miss_rate());
    let target = penalty * probe.cpu.ipc() * probe.cpu.mem_fraction();
    PrefetcherKind::Context(base.clone().calibrated(target))
}

/// Resolve a requested prefetcher kind into the concrete kind an [`Engine`]
/// can run, capturing the kernel's stream along the way. For
/// [`PrefetcherKind::ContextCalibrated`] this runs (or recalls) the
/// no-prefetch calibration probe first.
pub(crate) fn resolve(
    store: &TraceStore,
    kernel: &dyn Kernel,
    prefetcher: &PrefetcherKind,
    config: &SimConfig,
) -> (ReplayKernel, PrefetcherKind) {
    if let PrefetcherKind::ContextCalibrated(base) = prefetcher {
        let probe_cfg = probe_config(config);
        // One capture covers both the probe and the main run: by the prefix
        // property, a trace recorded at the larger budget replays the exact
        // stream either budget would generate.
        let capture_budget = if config.instr_budget == 0 {
            0
        } else {
            config.instr_budget.max(probe_cfg.instr_budget)
        };
        let replay = store.replay(kernel, capture_budget);
        let probe = store.probe_result(&probe_key(kernel, &probe_cfg), || {
            simulate(&replay, &PrefetcherKind::None, &probe_cfg)
        });
        let kind = calibrate(base, &probe, config);
        (replay, kind)
    } else {
        (
            store.replay(kernel, config.instr_budget),
            prefetcher.clone(),
        )
    }
}

/// Run one resolved cell through the [`Engine`], with on-disk
/// checkpoint/resume when `ckpt` is enabled: a valid *final* checkpoint
/// short-circuits the run entirely; a valid *mid-run* checkpoint warm-starts
/// the engine at its cursor; corrupt or foreign checkpoints are counted as
/// rejects and the cell runs fresh. While running, a mid-run checkpoint is
/// written every [`CkptStore::interval`] instructions, and the finished
/// result is persisted as a final checkpoint.
pub fn run_resumable(
    ckpt: &CkptStore,
    replay: ReplayKernel,
    kind: &PrefetcherKind,
    config: &SimConfig,
) -> RunResult {
    let kernel_name = replay.name();
    if !ckpt.enabled() {
        let mut engine = Engine::new(replay, kind, config);
        engine.run_to_end();
        return engine.finish();
    }
    let mut engine = Engine::new(replay.clone(), kind, config);
    let fp = engine.fingerprint();
    match ckpt.load(kernel_name, fp) {
        Some(CkptPayload::Final(bytes)) => {
            let mut r = SnapReader::new(&bytes);
            let parsed = RunResult::restore_snap(kernel_name, kind.label(), &mut r)
                .and_then(|res| r.expect_end().map(|()| res));
            match parsed {
                Ok(res) => return res,
                Err(_) => ckpt.note_reject(),
            }
        }
        Some(CkptPayload::Mid(bytes)) => {
            let restored = SimCheckpoint::from_bytes(&bytes).and_then(|c| engine.restore(&c));
            if restored.is_err() {
                // A partially-restored engine is unusable; start cold.
                ckpt.note_reject();
                engine = Engine::new(replay, kind, config);
            }
        }
        None => {}
    }
    let interval = ckpt.interval().max(1);
    while !engine.done() {
        let before = engine.cursor();
        engine.run_to(before.saturating_add(interval));
        if engine.cursor() == before {
            break; // stream exhausted below the budget
        }
        if !engine.done() {
            ckpt.save(
                kernel_name,
                fp,
                &CkptPayload::Mid(engine.checkpoint().to_bytes()),
            );
        }
    }
    let result = engine.finish();
    let mut w = SnapWriter::new();
    result.save_snap(&mut w);
    ckpt.save(kernel_name, fp, &CkptPayload::Final(w.into_bytes()));
    result
}

/// Run the no-prefetch baseline for `kernel`, pausing at the calibration
/// probe's budget to fork the warmed engine into the probe result before
/// continuing to the full budget — so a later
/// [`PrefetcherKind::ContextCalibrated`] column finds its probe memoized
/// without ever simulating the probe prefix separately. The probe is a
/// strict prefix of this very run (same trace, same no-prefetch
/// configuration), so the forked result is bit-identical to a standalone
/// probe; the store-equivalence suite pins that.
///
/// Used by the matrix runners for the baseline column when the lineup
/// contains a calibrated context prefetcher.
pub(crate) fn run_baseline_priming_probe(
    store: &TraceStore,
    kernel: &dyn Kernel,
    config: &SimConfig,
) -> RunResult {
    let key = result_key(kernel, &PrefetcherKind::None, config);
    if let Some(r) = store.result(&key) {
        return r;
    }
    let probe_cfg = probe_config(config);
    // The pause point must lie inside this run's own budget; otherwise the
    // probe is not a prefix and the calibrated column computes it itself.
    if config.instr_budget != 0 && probe_cfg.instr_budget > config.instr_budget {
        return run_kernel_with_store(store, kernel, &PrefetcherKind::None, config);
    }
    let capture_budget = if config.instr_budget == 0 {
        0
    } else {
        config.instr_budget.max(probe_cfg.instr_budget)
    };
    let replay = store.replay(kernel, capture_budget);
    let mut engine = Engine::new(replay, &PrefetcherKind::None, config);
    engine.run_to(probe_cfg.instr_budget);
    store.probe_result(&probe_key(kernel, &probe_cfg), || engine.fork().finish());
    engine.run_to_end();
    let r = engine.finish();
    store.memoize_result(&key, &r);
    r
}

/// [`run_kernel`] without the trace store: re-runs the workload generator
/// for this cell (and for the calibration probe). This is the pre-store
/// behaviour, kept as the baseline side of `bench_compare`'s
/// replay-vs-regenerate rows and for store-equivalence tests.
pub fn run_kernel_uncached(
    kernel: &dyn Kernel,
    prefetcher: &PrefetcherKind,
    config: &SimConfig,
) -> RunResult {
    if let PrefetcherKind::ContextCalibrated(base) = prefetcher {
        let probe_cfg = SimConfig {
            instr_budget: (config.instr_budget / 4).clamp(40_000, 150_000),
            ..config.clone()
        };
        let probe = run_kernel_uncached(kernel, &PrefetcherKind::None, &probe_cfg);
        let penalty = config.mem.l1_miss_penalty(probe.mem.l2_miss_rate());
        let target = penalty * probe.cpu.ipc() * probe.cpu.mem_fraction();
        let calibrated = PrefetcherKind::Context(base.clone().calibrated(target));
        return run_kernel_uncached(kernel, &calibrated, config);
    }
    simulate(kernel, prefetcher, config)
}

/// Drive one kernel (generated or replayed — both are just [`Kernel`]s)
/// through the simulator and collect every statistic.
fn simulate(kernel: &dyn Kernel, prefetcher: &PrefetcherKind, config: &SimConfig) -> RunResult {
    let hierarchy = Hierarchy::new(config.mem.clone(), prefetcher.build());
    let mut cpu = Cpu::new(config.cpu.clone(), hierarchy, config.instr_budget);
    kernel.run(&mut cpu);
    collect_result(kernel.name(), prefetcher.label(), cpu)
}

/// Finalize a driven simulator into a [`RunResult`]: drain in-flight
/// prefetcher state, then harvest CPU, memory, prefetcher, and (for the
/// context prefetcher) learning statistics. Shared by [`simulate`] and
/// [`Engine::finish`] so both paths produce bit-identical results.
pub(crate) fn collect_result(
    kernel: &'static str,
    prefetcher: &'static str,
    cpu: Cpu<Box<dyn Prefetcher>>,
) -> RunResult {
    let (cpu_stats, mut mem) = cpu.finish();
    let learn = mem
        .prefetcher()
        .as_any()
        .and_then(|a| a.downcast_ref::<ContextPrefetcher>())
        .map(|p| p.learn_stats().clone());
    let pf = mem.prefetcher().stats();
    let storage = mem.prefetcher().storage_bytes();
    let mem_stats = *mem.stats();
    let _ = mem.prefetcher_mut();
    RunResult {
        kernel,
        prefetcher,
        cpu: cpu_stats,
        mem: mem_stats,
        pf,
        learn,
        storage_bytes: storage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_workloads::kernel_by_name;

    fn quick() -> SimConfig {
        SimConfig::quick()
    }

    #[test]
    fn baseline_run_produces_sane_stats() {
        let k = kernel_by_name("array").unwrap();
        let r = run_kernel(k.as_ref(), &PrefetcherKind::None, &quick());
        assert_eq!(r.kernel, "array");
        assert_eq!(r.prefetcher, "none");
        assert!(r.cpu.instructions >= quick().instr_budget);
        assert!(r.cpu.ipc() > 0.0);
        assert!(r.l1_mpki() > 0.0, "a cold array scan must miss");
        assert!(r.learn.is_none());
    }

    #[test]
    fn context_run_exposes_learning_stats() {
        let k = kernel_by_name("list").unwrap();
        let r = run_kernel(k.as_ref(), &PrefetcherKind::context(), &quick());
        let learn = r
            .learn
            .expect("context prefetcher must expose learning stats");
        assert!(learn.collected > 0, "collection unit never fired");
        assert!(r.storage_bytes > 0);
    }

    #[test]
    fn context_speeds_up_linked_list_traversal() {
        let k = kernel_by_name("list").unwrap();
        let cfg = SimConfig::default().with_budget(300_000);
        let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg);
        let ctx = run_kernel(k.as_ref(), &PrefetcherKind::context(), &cfg);
        let speedup = ctx.speedup_over(&base).expect("both IPCs are finite");
        assert!(
            speedup > 1.05,
            "context prefetcher should accelerate the scattered list (got {speedup:.3}x)"
        );
    }

    #[test]
    fn stride_covers_array_streaming_misses() {
        // The array scan is DRAM-bandwidth-bound in steady state, so IPC
        // barely moves for any prefetcher; what stride must do is convert
        // essentially every demand miss into a prefetch hit or an in-flight
        // merge.
        let k = kernel_by_name("array").unwrap();
        let cfg = SimConfig::default().with_budget(200_000);
        let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg);
        let stride = run_kernel(k.as_ref(), &PrefetcherKind::Stride, &cfg);
        assert!(
            stride.l1_mpki() < base.l1_mpki() / 5.0,
            "stride must eliminate stream misses ({} vs {})",
            stride.l1_mpki(),
            base.l1_mpki()
        );
        assert!(
            stride.speedup_over(&base).expect("finite IPCs") > 0.98,
            "and must not hurt"
        );
        let covered = stride.mem.classes.shorter_wait + stride.mem.classes.hit_prefetched;
        assert!(
            covered > 10_000,
            "stream accesses must ride prefetches (covered {covered})"
        );
    }

    #[test]
    fn store_backed_runs_match_uncached() {
        // The trace store must be invisible in the results: every prefetcher
        // kind (including the probe-driven calibrated variant) produces
        // bit-identical statistics with and without it.
        let k = kernel_by_name("list").unwrap();
        let cfg = SimConfig::default().with_budget(60_000);
        for pf in [
            PrefetcherKind::Stride,
            PrefetcherKind::context(),
            PrefetcherKind::context_calibrated(),
        ] {
            let store = TraceStore::new();
            let cached = run_kernel_with_store(&store, k.as_ref(), &pf, &cfg);
            let uncached = run_kernel_uncached(k.as_ref(), &pf, &cfg);
            assert_eq!(cached.cpu, uncached.cpu, "{} cpu stats differ", pf.label());
            assert_eq!(cached.mem, uncached.mem, "{} mem stats differ", pf.label());
            assert_eq!(cached.stats_digest(), uncached.stats_digest());
        }
    }

    #[test]
    fn calibrated_probe_is_memoized_per_store() {
        let k = kernel_by_name("list").unwrap();
        let cfg = SimConfig::default().with_budget(60_000);
        let store = TraceStore::new();
        let a = run_kernel_with_store(
            &store,
            k.as_ref(),
            &PrefetcherKind::context_calibrated(),
            &cfg,
        );
        let b = run_kernel_with_store(
            &store,
            k.as_ref(),
            &PrefetcherKind::context_calibrated(),
            &cfg,
        );
        assert_eq!(a.stats_digest(), b.stats_digest());
        // One capture serves the probe and the first main run; the second
        // run is a full-result memo hit and never touches the trace.
        let (_, misses) = store.stats();
        assert_eq!(misses, 1, "kernel must be captured exactly once");
        let (result_hits, result_misses) = store.result_stats();
        assert_eq!(result_misses, 1, "first run must simulate");
        assert!(result_hits >= 1, "second run must be a result-memo hit");
    }

    #[test]
    fn speedup_errors_are_typed() {
        let k = kernel_by_name("array").unwrap();
        let r = run_kernel(k.as_ref(), &PrefetcherKind::None, &quick());
        let mut idle = r.clone();
        idle.cpu.instructions = 0; // IPC becomes zero
        assert_eq!(r.speedup_over(&idle), Err(SpeedupError::ZeroBaselineIpc));
        assert_eq!(idle.speedup_over(&r), Err(SpeedupError::NonFiniteIpc));
        assert!(r.speedup_over(&r).is_ok());
    }

    #[test]
    fn runs_are_deterministic() {
        let k = kernel_by_name("mcf").unwrap();
        let a = run_kernel(k.as_ref(), &PrefetcherKind::context(), &quick());
        let b = run_kernel(k.as_ref(), &PrefetcherKind::context(), &quick());
        assert_eq!(a.cpu, b.cpu);
        assert_eq!(a.mem, b.mem);
    }
}
