//! Single-run driver: workload × prefetcher × configuration → statistics.

use semloc_context::{ContextPrefetcher, ContextStats};
use semloc_cpu::{Cpu, CpuStats};
use semloc_mem::{Hierarchy, MemStats, Prefetcher, PrefetcherStats};
use semloc_workloads::Kernel;

use crate::config::SimConfig;
use crate::prefetchers::PrefetcherKind;
use crate::store::TraceStore;

/// Everything measured in one simulated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub kernel: &'static str,
    /// Prefetcher name.
    pub prefetcher: &'static str,
    /// Core statistics (IPC, CPI, instruction mix).
    pub cpu: CpuStats,
    /// Memory-system statistics (MPKI, access classes).
    pub mem: MemStats,
    /// Generic prefetcher counters.
    pub pf: PrefetcherStats,
    /// Context-prefetcher learning statistics (hit-depth CDF, convergence),
    /// when the context prefetcher ran.
    pub learn: Option<ContextStats>,
    /// Prefetcher storage budget in bytes.
    pub storage_bytes: usize,
}

impl RunResult {
    /// Speedup of this run relative to `baseline` (same kernel, usually
    /// the no-prefetch run): ratio of IPCs.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        let b = baseline.cpu.ipc();
        if b == 0.0 {
            0.0
        } else {
            self.cpu.ipc() / b
        }
    }

    /// L1 misses per kilo-instruction.
    pub fn l1_mpki(&self) -> f64 {
        self.mem.l1_mpki(self.cpu.instructions)
    }

    /// L2 misses per kilo-instruction.
    pub fn l2_mpki(&self) -> f64 {
        self.mem.l2_mpki(self.cpu.instructions)
    }

    /// Order-independent fingerprint of every observable counter of this
    /// run (`cpu` and `mem`, field by field). Two runs with the same digest
    /// produced bit-identical simulation results; the golden-digest tests
    /// pin these across runner variants and hot-path rewrites.
    pub fn stats_digest(&self) -> u64 {
        let mut d = Digest::new();
        d.str(self.kernel);
        d.str(self.prefetcher);
        let c = &self.cpu;
        for v in [
            c.instructions,
            c.cycles,
            c.loads,
            c.stores,
            c.branches,
            c.mispredicts,
        ] {
            d.u64(v);
        }
        let m = &self.mem;
        for v in [
            m.demand_accesses,
            m.l1_misses,
            m.l1_mshr_merges,
            m.l2_misses,
            m.prefetches_issued,
            m.prefetches_rejected,
            m.prefetches_filtered,
            m.writebacks,
        ] {
            d.u64(v);
        }
        let k = &m.classes;
        for v in [
            k.hit_prefetched,
            k.shorter_wait,
            k.non_timely,
            k.miss_not_prefetched,
            k.hit_older_demand,
            k.prefetch_never_hit,
        ] {
            d.u64(v);
        }
        d.finish()
    }
}

/// FNV-1a accumulator used for stats digests (stable across platforms —
/// no dependence on `Hash` implementations or struct layout).
pub(crate) struct Digest(u64);

impl Digest {
    pub(crate) fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        for b in s.bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = (self.0 ^ 0xff).wrapping_mul(0x100_0000_01b3);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Run `kernel` under `prefetcher` with `config`, through the process-global
/// [`TraceStore`](crate::TraceStore): the kernel's instruction stream is
/// captured on first use and replayed (bit-identically — see the
/// golden-digest test) for every subsequent run of the same configuration.
///
/// For [`PrefetcherKind::ContextCalibrated`] a short no-prefetch probe run
/// first measures the workload parameters of the §4.3 prefetch-distance
/// formula, then the context prefetcher runs with its reward window
/// calibrated to the measured target.
/// ```rust
/// use semloc_harness::{run_kernel, PrefetcherKind, SimConfig};
/// use semloc_workloads::kernel_by_name;
///
/// let cfg = SimConfig::default().with_budget(20_000);
/// let kernel = kernel_by_name("array").expect("registered");
/// let result = run_kernel(kernel.as_ref(), &PrefetcherKind::Stride, &cfg);
/// assert!(result.cpu.ipc() > 0.0);
/// ```
pub fn run_kernel(
    kernel: &dyn Kernel,
    prefetcher: &PrefetcherKind,
    config: &SimConfig,
) -> RunResult {
    run_kernel_with_store(TraceStore::global(), kernel, prefetcher, config)
}

/// [`run_kernel`] against an explicit [`TraceStore`] (the global store is
/// just a shared instance of this). Useful for benchmarks and tests that
/// need an isolated cache.
pub fn run_kernel_with_store(
    store: &TraceStore,
    kernel: &dyn Kernel,
    prefetcher: &PrefetcherKind,
    config: &SimConfig,
) -> RunResult {
    if let PrefetcherKind::ContextCalibrated(base) = prefetcher {
        let probe_cfg = SimConfig {
            instr_budget: (config.instr_budget / 4).clamp(40_000, 150_000),
            ..config.clone()
        };
        // One capture covers both the probe and the main run: by the prefix
        // property, a trace recorded at the larger budget replays the exact
        // stream either budget would generate.
        let capture_budget = if config.instr_budget == 0 {
            0
        } else {
            config.instr_budget.max(probe_cfg.instr_budget)
        };
        let replay = store.replay(kernel, capture_budget);
        let probe_key = format!("{}|{:?}", kernel.trace_key(), probe_cfg);
        let probe = store.probe_result(&probe_key, || {
            simulate(&replay, &PrefetcherKind::None, &probe_cfg)
        });
        let penalty = config.mem.l1_miss_penalty(probe.mem.l2_miss_rate());
        let target = penalty * probe.cpu.ipc() * probe.cpu.mem_fraction();
        let calibrated = PrefetcherKind::Context(base.clone().calibrated(target));
        return simulate(&replay, &calibrated, config);
    }
    let replay = store.replay(kernel, config.instr_budget);
    simulate(&replay, prefetcher, config)
}

/// [`run_kernel`] without the trace store: re-runs the workload generator
/// for this cell (and for the calibration probe). This is the pre-store
/// behaviour, kept as the baseline side of `bench_compare`'s
/// replay-vs-regenerate rows and for store-equivalence tests.
pub fn run_kernel_uncached(
    kernel: &dyn Kernel,
    prefetcher: &PrefetcherKind,
    config: &SimConfig,
) -> RunResult {
    if let PrefetcherKind::ContextCalibrated(base) = prefetcher {
        let probe_cfg = SimConfig {
            instr_budget: (config.instr_budget / 4).clamp(40_000, 150_000),
            ..config.clone()
        };
        let probe = run_kernel_uncached(kernel, &PrefetcherKind::None, &probe_cfg);
        let penalty = config.mem.l1_miss_penalty(probe.mem.l2_miss_rate());
        let target = penalty * probe.cpu.ipc() * probe.cpu.mem_fraction();
        let calibrated = PrefetcherKind::Context(base.clone().calibrated(target));
        return run_kernel_uncached(kernel, &calibrated, config);
    }
    simulate(kernel, prefetcher, config)
}

/// Drive one kernel (generated or replayed — both are just [`Kernel`]s)
/// through the simulator and collect every statistic.
fn simulate(kernel: &dyn Kernel, prefetcher: &PrefetcherKind, config: &SimConfig) -> RunResult {
    let hierarchy = Hierarchy::new(config.mem.clone(), prefetcher.build());
    let mut cpu = Cpu::new(config.cpu.clone(), hierarchy, config.instr_budget);
    kernel.run(&mut cpu);
    let (cpu_stats, mut mem) = cpu.finish();
    let learn = mem
        .prefetcher()
        .as_any()
        .and_then(|a| a.downcast_ref::<ContextPrefetcher>())
        .map(|p| p.learn_stats().clone());
    let pf = mem.prefetcher().stats();
    let storage = mem.prefetcher().storage_bytes();
    let mem_stats = *mem.stats();
    let _ = mem.prefetcher_mut();
    RunResult {
        kernel: kernel.name(),
        prefetcher: prefetcher.build().name(),
        cpu: cpu_stats,
        mem: mem_stats,
        pf,
        learn,
        storage_bytes: storage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_workloads::kernel_by_name;

    fn quick() -> SimConfig {
        SimConfig::quick()
    }

    #[test]
    fn baseline_run_produces_sane_stats() {
        let k = kernel_by_name("array").unwrap();
        let r = run_kernel(k.as_ref(), &PrefetcherKind::None, &quick());
        assert_eq!(r.kernel, "array");
        assert_eq!(r.prefetcher, "none");
        assert!(r.cpu.instructions >= quick().instr_budget);
        assert!(r.cpu.ipc() > 0.0);
        assert!(r.l1_mpki() > 0.0, "a cold array scan must miss");
        assert!(r.learn.is_none());
    }

    #[test]
    fn context_run_exposes_learning_stats() {
        let k = kernel_by_name("list").unwrap();
        let r = run_kernel(k.as_ref(), &PrefetcherKind::context(), &quick());
        let learn = r
            .learn
            .expect("context prefetcher must expose learning stats");
        assert!(learn.collected > 0, "collection unit never fired");
        assert!(r.storage_bytes > 0);
    }

    #[test]
    fn context_speeds_up_linked_list_traversal() {
        let k = kernel_by_name("list").unwrap();
        let cfg = SimConfig::default().with_budget(300_000);
        let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg);
        let ctx = run_kernel(k.as_ref(), &PrefetcherKind::context(), &cfg);
        let speedup = ctx.speedup_over(&base);
        assert!(
            speedup > 1.05,
            "context prefetcher should accelerate the scattered list (got {speedup:.3}x)"
        );
    }

    #[test]
    fn stride_covers_array_streaming_misses() {
        // The array scan is DRAM-bandwidth-bound in steady state, so IPC
        // barely moves for any prefetcher; what stride must do is convert
        // essentially every demand miss into a prefetch hit or an in-flight
        // merge.
        let k = kernel_by_name("array").unwrap();
        let cfg = SimConfig::default().with_budget(200_000);
        let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg);
        let stride = run_kernel(k.as_ref(), &PrefetcherKind::Stride, &cfg);
        assert!(
            stride.l1_mpki() < base.l1_mpki() / 5.0,
            "stride must eliminate stream misses ({} vs {})",
            stride.l1_mpki(),
            base.l1_mpki()
        );
        assert!(stride.speedup_over(&base) > 0.98, "and must not hurt");
        let covered = stride.mem.classes.shorter_wait + stride.mem.classes.hit_prefetched;
        assert!(
            covered > 10_000,
            "stream accesses must ride prefetches (covered {covered})"
        );
    }

    #[test]
    fn store_backed_runs_match_uncached() {
        // The trace store must be invisible in the results: every prefetcher
        // kind (including the probe-driven calibrated variant) produces
        // bit-identical statistics with and without it.
        let k = kernel_by_name("list").unwrap();
        let cfg = SimConfig::default().with_budget(60_000);
        for pf in [
            PrefetcherKind::Stride,
            PrefetcherKind::context(),
            PrefetcherKind::context_calibrated(),
        ] {
            let store = TraceStore::new();
            let cached = run_kernel_with_store(&store, k.as_ref(), &pf, &cfg);
            let uncached = run_kernel_uncached(k.as_ref(), &pf, &cfg);
            assert_eq!(cached.cpu, uncached.cpu, "{} cpu stats differ", pf.label());
            assert_eq!(cached.mem, uncached.mem, "{} mem stats differ", pf.label());
            assert_eq!(cached.stats_digest(), uncached.stats_digest());
        }
    }

    #[test]
    fn calibrated_probe_is_memoized_per_store() {
        let k = kernel_by_name("list").unwrap();
        let cfg = SimConfig::default().with_budget(60_000);
        let store = TraceStore::new();
        let a = run_kernel_with_store(
            &store,
            k.as_ref(),
            &PrefetcherKind::context_calibrated(),
            &cfg,
        );
        let b = run_kernel_with_store(
            &store,
            k.as_ref(),
            &PrefetcherKind::context_calibrated(),
            &cfg,
        );
        assert_eq!(a.stats_digest(), b.stats_digest());
        // One capture serves the probe and both main runs.
        let (hits, misses) = store.stats();
        assert_eq!(misses, 1, "kernel must be captured exactly once");
        assert!(hits >= 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let k = kernel_by_name("mcf").unwrap();
        let a = run_kernel(k.as_ref(), &PrefetcherKind::context(), &quick());
        let b = run_kernel(k.as_ref(), &PrefetcherKind::context(), &quick());
        assert_eq!(a.cpu, b.cpu);
        assert_eq!(a.mem, b.mem);
    }
}
