//! Work-stealing shard pool for many-cell runs.
//!
//! The matrix and sweep runners fan independent simulation cells out over
//! worker threads. The original implementation was a single shared counter
//! over one flat job list — correct, but every pop contended on one atomic
//! and the assignment order was fixed. This module replaces it with a
//! sharded deque pool: jobs are dealt round-robin into per-worker deques,
//! each worker drains its own shard LIFO (newest first, so a worker keeps
//! cache-warm state from the cell it just finished), and an idle worker
//! steals FIFO from the front of a victim's deque (oldest first, so thief
//! and owner touch opposite ends and rarely collide).
//!
//! Cells never spawn new cells, so termination is simple: a worker that
//! finds every shard empty can exit — no new work can appear.
//!
//! Results are returned **in job order** regardless of which worker ran
//! which cell or in what sequence: every job carries its index and writes
//! its result into that slot. Combined with deterministic, isolated cells
//! this makes the pool bit-identical to a sequential `map` — the property
//! the randomized model test below and the golden-digest CI job pin.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Worker-thread count for the shard pool: the `SEMLOC_POOL_THREADS`
/// environment variable if set, else the host's available parallelism.
///
/// # Panics
///
/// Panics if `SEMLOC_POOL_THREADS` is set but is not a positive integer —
/// a typo'd knob should fail loudly, not silently serialise the run.
pub fn pool_threads() -> usize {
    match std::env::var("SEMLOC_POOL_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!(
                "SEMLOC_POOL_THREADS must be a positive integer, got {v:?} \
                 (unset it to size the pool to the host)"
            ),
        },
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Run every job through `run` on a pool of `threads` workers with
/// per-worker deques and work stealing. Returns the results in job order.
///
/// `run` must be safe to call concurrently from multiple threads; each job
/// is executed exactly once. With deterministic `run`, the output is
/// bit-identical to `jobs.into_iter().map(run).collect()`.
pub fn run_sharded<J, R, F>(threads: usize, jobs: Vec<J>, run: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let n_jobs = jobs.len();
    let threads = threads.max(1).min(n_jobs.max(1));
    if threads == 1 {
        // Degenerate pool: no workers to steal from, so skip the thread
        // machinery entirely (also keeps single-thread profiles clean).
        return jobs.into_iter().map(run).collect();
    }

    // Deal jobs round-robin into per-worker shards, each job tagged with
    // its slot in the output.
    let mut shards: Vec<VecDeque<(usize, J)>> = (0..threads)
        .map(|_| VecDeque::with_capacity(n_jobs / threads + 1))
        .collect();
    for (i, job) in jobs.into_iter().enumerate() {
        shards[i % threads].push_back((i, job));
    }
    let shards: Vec<Mutex<VecDeque<(usize, J)>>> = shards.into_iter().map(Mutex::new).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..threads {
            let shards = &shards;
            let slots = &slots;
            let run = &run;
            scope.spawn(move || loop {
                // Own shard first, newest job first (LIFO keeps the
                // worker on freshly dealt, cache-adjacent cells).
                let mut next = shards[me]
                    .lock()
                    .expect("no panics hold a shard lock")
                    .pop_back();
                if next.is_none() {
                    // Steal oldest-first from the other shards, starting
                    // just past our own so thieves spread out.
                    for k in 1..threads {
                        let victim = (me + k) % threads;
                        next = shards[victim]
                            .lock()
                            .expect("no panics hold a shard lock")
                            .pop_front();
                        if next.is_some() {
                            break;
                        }
                    }
                }
                let Some((idx, job)) = next else {
                    // Every shard was empty and cells never enqueue new
                    // cells, so there is nothing left to wait for.
                    break;
                };
                let r = run(job);
                *slots[idx].lock().expect("no panics hold a slot lock") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("workers finished")
                .expect("every job was dealt to exactly one shard and ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    #[test]
    fn empty_and_single_job_lists() {
        assert_eq!(run_sharded(4, Vec::<u64>::new(), splitmix), vec![]);
        assert_eq!(run_sharded(4, vec![7u64], splitmix), vec![splitmix(7)]);
    }

    #[test]
    fn results_stay_in_job_order() {
        let jobs: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = jobs.iter().map(|&j| splitmix(j)).collect();
        for threads in [1, 2, 3, 8, 300] {
            assert_eq!(run_sharded(threads, jobs.clone(), splitmix), expect);
        }
    }

    #[test]
    fn randomized_model_matches_sequential_map() {
        // Randomized shard-pool model test: arbitrary job lists and
        // thread counts must be bit-identical to a sequential map, even
        // with deliberately uneven per-job workloads forcing steals.
        let mut seed = 0xA11C_E5ED_u64;
        for round in 0..32 {
            seed = splitmix(seed);
            let n = (seed % 97) as usize;
            let threads = (splitmix(seed ^ round) % 9 + 1) as usize;
            let jobs: Vec<u64> = (0..n as u64).map(|i| splitmix(seed ^ i)).collect();
            let work = |j: u64| {
                // Uneven workload: some jobs iterate 1000x longer than
                // others, so fast workers run dry and must steal.
                let spins = j % 1024;
                let mut acc = j;
                for _ in 0..spins {
                    acc = splitmix(acc);
                }
                acc
            };
            let expect: Vec<u64> = jobs.iter().map(|&j| work(j)).collect();
            assert_eq!(
                run_sharded(threads, jobs, work),
                expect,
                "pool diverged from sequential map (round {round}, {n} jobs, {threads} threads)"
            );
        }
    }

    #[test]
    fn pool_threads_reads_the_env_knob() {
        // Env mutation is process-global: keep it inside one test and
        // restore the prior state before asserting the default path.
        let prior = std::env::var("SEMLOC_POOL_THREADS").ok();
        std::env::set_var("SEMLOC_POOL_THREADS", "3");
        assert_eq!(pool_threads(), 3);
        match prior {
            Some(v) => std::env::set_var("SEMLOC_POOL_THREADS", v),
            None => std::env::remove_var("SEMLOC_POOL_THREADS"),
        }
        assert!(pool_threads() >= 1);
    }
}
