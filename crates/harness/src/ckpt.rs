//! On-disk checkpoint store: the `SEMLOC-CKPT` format.
//!
//! Long experiment drivers (`all_experiments`, the figure binaries) can be
//! killed mid-run; with a checkpoint directory configured
//! (`SEMLOC_CKPT_DIR`) every simulation cell periodically persists its
//! complete engine state and, on completion, its final result. A restarted
//! process finds the newest valid checkpoint for each cell and resumes from
//! it — bit-identically, which the golden-digest checkpoint suite pins.
//!
//! # File format
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"SEMLOCKP"
//! 8       4     format version (u32 LE, currently 1)
//! 12      1     kind: 0 = mid-run engine snapshot, 1 = final result
//! 13      8     cell fingerprint (u64 LE, must match the engine's)
//! 21      n     payload (a `SIMC` or `RRES` snapshot section)
//! 21+n    1     trailer marker 0xFF
//! 22+n    8     payload length n (u64 LE)
//! 30+n    8     FNV-1a checksum (u64 LE) of bytes [0, 30+n)
//! ```
//!
//! The checksum covers everything before it, including the trailer marker
//! and length field, with the same per-byte FNV-1a fold the `SEMLOC02`
//! trace format uses. The fold is bijective per byte, so any single-bit
//! corruption anywhere in the file changes the checksum; the corruption
//! matrix test flips every bit of a real checkpoint and requires 100%
//! rejection. A rejected or foreign checkpoint is never an error — the
//! store counts it and the cell simply runs from scratch.
//!
//! Writes are atomic (temp file + rename) so a kill mid-save leaves the
//! previous checkpoint intact. The same fault-injection machinery the
//! trace store uses (`FaultPlan`, short writes) exercises these paths.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use semloc_trace::FaultPlan;

/// Magic bytes opening every checkpoint file.
pub const CKPT_MAGIC: [u8; 8] = *b"SEMLOCKP";

/// Current `SEMLOC-CKPT` format version.
pub const CKPT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// What a checkpoint file holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptPayload {
    /// A mid-run engine snapshot (a serialized
    /// [`SimCheckpoint`](crate::SimCheckpoint)): restore and continue.
    Mid(Vec<u8>),
    /// The finished cell's serialized
    /// [`RunResult`](crate::RunResult): no simulation needed at all.
    Final(Vec<u8>),
}

impl CkptPayload {
    fn kind_byte(&self) -> u8 {
        match self {
            CkptPayload::Mid(_) => 0,
            CkptPayload::Final(_) => 1,
        }
    }

    fn bytes(&self) -> &[u8] {
        match self {
            CkptPayload::Mid(b) | CkptPayload::Final(b) => b,
        }
    }
}

/// Encode one checkpoint as `SEMLOC-CKPT` bytes.
pub fn encode_ckpt(kind: &CkptPayload, fingerprint: u64) -> Vec<u8> {
    let payload = kind.bytes();
    let mut out = Vec::with_capacity(payload.len() + 38);
    out.extend_from_slice(&CKPT_MAGIC);
    out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    out.push(kind.kind_byte());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(payload);
    out.push(0xFF);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode and fully validate `SEMLOC-CKPT` bytes for the cell identified by
/// `fingerprint`. Returns `None` on *any* inconsistency — wrong magic or
/// version, foreign fingerprint, bad trailer, checksum mismatch, or a
/// length that disagrees with the file size.
pub fn decode_ckpt(bytes: &[u8], fingerprint: u64) -> Option<CkptPayload> {
    const HEADER: usize = 8 + 4 + 1 + 8;
    const TRAILER: usize = 1 + 8 + 8;
    if bytes.len() < HEADER + TRAILER {
        return None;
    }
    if bytes[..8] != CKPT_MAGIC {
        return None;
    }
    if u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != CKPT_VERSION {
        return None;
    }
    let kind = bytes[12];
    if u64::from_le_bytes(bytes[13..21].try_into().unwrap()) != fingerprint {
        return None;
    }
    let checksum_at = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[checksum_at..].try_into().unwrap());
    if fnv1a(&bytes[..checksum_at]) != stored {
        return None;
    }
    let len_at = checksum_at - 8;
    let payload_len = u64::from_le_bytes(bytes[len_at..checksum_at].try_into().unwrap());
    if payload_len != (bytes.len() - HEADER - TRAILER) as u64 {
        return None;
    }
    if bytes[len_at - 1] != 0xFF {
        return None;
    }
    let payload = bytes[HEADER..HEADER + payload_len as usize].to_vec();
    match kind {
        0 => Some(CkptPayload::Mid(payload)),
        1 => Some(CkptPayload::Final(payload)),
        _ => None,
    }
}

#[derive(Default)]
struct SaveFaults {
    /// Corrupt the next save's bytes with this plan before they reach
    /// disk (bit flips, truncation, garbage — the `SEMLOC02` vocabulary).
    plan: Option<FaultPlan>,
    /// Truncate the next save to this many bytes and *abandon* the temp
    /// file before the atomic rename, simulating a kill mid-write.
    short_write: Option<usize>,
}

/// Persistent checkpoint store for resumable simulation cells.
///
/// Disabled (in-memory no-op) unless constructed with a directory; the
/// process-global instance enables itself when `SEMLOC_CKPT_DIR` is set.
/// Checkpoint cadence (instructions between mid-run saves) comes from
/// `SEMLOC_CKPT_INTERVAL` (default 100 000).
pub struct CkptStore {
    dir: Option<PathBuf>,
    interval: u64,
    saves: AtomicU64,
    loads: AtomicU64,
    rejects: AtomicU64,
    faults: Mutex<SaveFaults>,
}

impl Default for CkptStore {
    fn default() -> Self {
        Self::new()
    }
}

impl CkptStore {
    /// A disabled store: checkpointing is a no-op, loads always miss.
    pub fn new() -> Self {
        CkptStore {
            dir: None,
            interval: 100_000,
            saves: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
            faults: Mutex::new(SaveFaults::default()),
        }
    }

    /// A store persisting checkpoints under `dir` (created on first save).
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        CkptStore {
            dir: Some(dir.into()),
            ..Self::new()
        }
    }

    /// Build from the environment: enabled iff `SEMLOC_CKPT_DIR` is set;
    /// `SEMLOC_CKPT_INTERVAL` overrides the mid-run save cadence.
    pub fn from_env() -> Self {
        let mut store = match std::env::var_os("SEMLOC_CKPT_DIR") {
            Some(dir) if !dir.is_empty() => Self::with_dir(PathBuf::from(dir)),
            _ => Self::new(),
        };
        if let Some(v) = std::env::var("SEMLOC_CKPT_INTERVAL")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            store.interval = v.max(1);
        }
        store
    }

    /// The process-global store used by [`run_kernel`](crate::run_kernel)
    /// and everything built on it. Environment-configured once.
    pub fn global() -> &'static CkptStore {
        static GLOBAL: OnceLock<CkptStore> = OnceLock::new();
        GLOBAL.get_or_init(CkptStore::from_env)
    }

    /// Whether checkpoints are persisted at all.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Instructions between mid-run checkpoint saves.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Override the save cadence (for tests and the smoke binary).
    pub fn set_interval(&mut self, interval: u64) {
        self.interval = interval.max(1);
    }

    /// (saves, loads, rejects) counters. A *reject* is a checkpoint that
    /// existed but failed validation at any level — file, envelope, or
    /// payload — and was discarded.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.saves.load(Ordering::Relaxed),
            self.loads.load(Ordering::Relaxed),
            self.rejects.load(Ordering::Relaxed),
        )
    }

    /// Record a payload-level rejection (the envelope validated but the
    /// snapshot inside did not parse). Called by the resumable runner.
    pub fn note_reject(&self) {
        self.rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Corrupt the next save's bytes with `plan` before they hit disk —
    /// the written checkpoint must then fail validation on load.
    pub fn inject_save_faults(&self, plan: FaultPlan) {
        self.faults.lock().unwrap().plan = Some(plan);
    }

    /// Truncate the next save's temp file to `bytes` before the rename,
    /// then drop it — simulating a kill mid-write.
    pub fn inject_short_write(&self, bytes: usize) {
        self.faults.lock().unwrap().short_write = Some(bytes);
    }

    fn path_for(&self, kernel: &str, fingerprint: u64) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let sane: String = kernel
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        Some(dir.join(format!("{sane}-{fingerprint:016x}.ckpt")))
    }

    /// Persist `payload` as the cell's current checkpoint, atomically
    /// replacing any previous one. Failures (injected or real I/O errors)
    /// are swallowed — a checkpoint that fails to save costs resumability,
    /// never correctness.
    pub fn save(&self, kernel: &str, fingerprint: u64, payload: &CkptPayload) {
        let Some(path) = self.path_for(kernel, fingerprint) else {
            return;
        };
        if self.try_save(&path, fingerprint, payload).is_some() {
            self.saves.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn try_save(&self, path: &Path, fingerprint: u64, payload: &CkptPayload) -> Option<()> {
        let dir = path.parent()?;
        fs::create_dir_all(dir).ok()?;
        let mut bytes = encode_ckpt(payload, fingerprint);
        let mut drop_tmp = false;
        {
            let mut faults = self.faults.lock().unwrap();
            if let Some(plan) = faults.plan.take() {
                plan.corrupt(&mut bytes);
            }
            if let Some(n) = faults.short_write.take() {
                bytes.truncate(n);
                drop_tmp = true;
            }
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let mut f = fs::File::create(&tmp).ok()?;
        let wrote = f.write_all(&bytes).and_then(|()| f.sync_all());
        drop(f);
        if wrote.is_err() || drop_tmp {
            let _ = fs::remove_file(&tmp);
            return None;
        }
        if fs::rename(&tmp, path).is_err() {
            let _ = fs::remove_file(&tmp);
            return None;
        }
        Some(())
    }

    /// Load and validate the cell's checkpoint, if one exists. Any
    /// validation failure counts as a reject and behaves like a miss.
    pub fn load(&self, kernel: &str, fingerprint: u64) -> Option<CkptPayload> {
        let path = self.path_for(kernel, fingerprint)?;
        let bytes = fs::read(&path).ok()?;
        match decode_ckpt(&bytes, fingerprint) {
            Some(p) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Delete the cell's checkpoint (e.g. after its result is consumed by
    /// a completed experiment).
    pub fn clear(&self, kernel: &str, fingerprint: u64) {
        if let Some(path) = self.path_for(kernel, fingerprint) {
            let _ = fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("semloc-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disabled_store_is_a_no_op() {
        let store = CkptStore::new();
        assert!(!store.enabled());
        store.save("k", 7, &CkptPayload::Mid(vec![1, 2, 3]));
        assert_eq!(store.load("k", 7), None);
        assert_eq!(store.stats(), (0, 0, 0));
    }

    #[test]
    fn save_load_round_trips_both_kinds() {
        let dir = temp_dir("roundtrip");
        let store = CkptStore::with_dir(&dir);
        for payload in [
            CkptPayload::Mid(vec![0xAB; 64]),
            CkptPayload::Final(vec![0x17; 9]),
            CkptPayload::Mid(Vec::new()),
        ] {
            store.save("mcf-spec", 0xDEAD_BEEF, &payload);
            assert_eq!(store.load("mcf-spec", 0xDEAD_BEEF), Some(payload));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_fingerprint_is_rejected() {
        let dir = temp_dir("foreign");
        let store = CkptStore::with_dir(&dir);
        store.save("k", 1, &CkptPayload::Final(vec![5]));
        assert_eq!(store.load("k", 1), Some(CkptPayload::Final(vec![5])));
        // Same file contents presented under a different fingerprint: the
        // file name differs so this is a plain miss...
        assert_eq!(store.load("k", 2), None);
        // ...but even a renamed file fails envelope validation.
        let from = store.path_for("k", 1).unwrap();
        let to = store.path_for("k", 2).unwrap();
        fs::copy(&from, &to).unwrap();
        let rejects_before = store.stats().2;
        assert_eq!(store.load("k", 2), None);
        assert_eq!(store.stats().2, rejects_before + 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_save_is_rejected_on_load() {
        use semloc_trace::Fault;
        let dir = temp_dir("faults");
        let store = CkptStore::with_dir(&dir);
        let faults = [
            Fault::BitFlip { offset: 15, bit: 2 },
            Fault::Truncate { keep: 12 },
            Fault::BadMagic,
            Fault::Garbage { len: 80 },
        ];
        for fault in faults {
            store.inject_save_faults(FaultPlan::with(fault.clone()));
            store.save("k", 3, &CkptPayload::Mid(vec![7; 48]));
            let rejects_before = store.stats().2;
            assert_eq!(store.load("k", 3), None, "{fault:?} was accepted");
            assert_eq!(store.stats().2, rejects_before + 1);
        }
        // A clean save afterwards works (injection is one-shot).
        store.save("k", 3, &CkptPayload::Mid(vec![2]));
        assert_eq!(store.load("k", 3), Some(CkptPayload::Mid(vec![2])));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_is_dropped_not_renamed() {
        let dir = temp_dir("short");
        let store = CkptStore::with_dir(&dir);
        store.save("k", 4, &CkptPayload::Final(vec![9; 32]));
        store.inject_short_write(10);
        store.save("k", 4, &CkptPayload::Final(vec![8; 32]));
        assert_eq!(store.load("k", 4), Some(CkptPayload::Final(vec![9; 32])));
        // No stray temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x != "ckpt"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be cleaned up");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = temp_dir("trunc");
        let store = CkptStore::with_dir(&dir);
        store.save("k", 5, &CkptPayload::Mid(vec![3; 40]));
        let path = store.path_for("k", 5).unwrap();
        let bytes = fs::read(&path).unwrap();
        for keep in [0, 7, 20, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert_eq!(store.load("k", 5), None, "truncation to {keep} accepted");
        }
        fs::write(&path, &bytes).unwrap();
        assert!(store.load("k", 5).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        // The decode-level corruption matrix; the harness integration test
        // repeats this against a real engine checkpoint on disk.
        let payload = CkptPayload::Mid((0u8..=47).collect());
        let good = encode_ckpt(&payload, 0x1234_5678_9ABC_DEF0);
        assert_eq!(
            decode_ckpt(&good, 0x1234_5678_9ABC_DEF0),
            Some(payload),
            "canonical bytes must decode"
        );
        for bit in 0..good.len() * 8 {
            let mut bad = good.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                decode_ckpt(&bad, 0x1234_5678_9ABC_DEF0),
                None,
                "flip of bit {bit} was accepted"
            );
        }
    }
}
