//! Adversarial workload search: hill-climbing over composed schedules for
//! parameter points where the learned context prefetcher's accuracy
//! collapses while a table baseline (GHB/SMS) stays healthy.
//!
//! The driver leans on two primitives built in this PR:
//!
//! * the workload composer — every candidate is a two-phase schedule: a
//!   fixed `mcf` warmup prefix (so the learner arrives *trained*, the way
//!   it would mid-run) followed by an adversarial tail drawn from one of
//!   the [`semloc_workloads::adversarial`] families; and
//! * [`Engine::fork_onto`] — the warmup is simulated **once per prefetcher
//!   kind**, then every candidate forks that warm state onto its own
//!   composed stream, so an N-candidate search pays for one warmup, not N.
//!
//! The score a candidate hill-climbs is the *resilience gap*
//! `max(baseline tail coverage) − learned tail coverage`, computed over
//! the adversarial tail only (counter deltas from the warmup point;
//! coverage is classified by the memory system, so it compares fairly
//! across prefetcher kinds, unlike the self-reported `useful`). Search
//! is a pure function of its seed (the RNG is the in-tree `StdRng`, every
//! simulator layer is deterministic), so the parameter points it discovers
//! are reproducible — the best point per family is pinned as a named
//! regression kernel in `tests/adversarial_regressions.rs`.

use std::io;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semloc_mem::AccessClass;
use semloc_workloads::{
    capture_kernel, kernel_by_name, AliasChains, CapturedTrace, ComposedKernel, KernelBox, Phase,
    PhaseFlip, ReplayKernel, RewardStraddle,
};

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::prefetchers::PrefetcherKind;
use crate::runner::RunResult;

/// Search budget and schedule shape.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Warmup-prefix length (instructions of `mcf` replayed first).
    pub warmup: u64,
    /// Adversarial-tail length (instructions).
    pub tail: u64,
    /// Hill-climbing proposals per family (on top of the default point).
    pub iters: u32,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            warmup: 40_000,
            tail: 80_000,
            iters: 12,
        }
    }
}

/// A point in one adversarial family's parameter space.
#[derive(Clone, Debug)]
pub enum AdvParams {
    /// [`RewardStraddle`] parameters.
    Straddle(RewardStraddle),
    /// [`AliasChains`] parameters.
    Alias(AliasChains),
    /// [`PhaseFlip`] parameters.
    Flip(PhaseFlip),
}

impl AdvParams {
    /// The default (seed) point of every family, in search order.
    pub fn defaults() -> Vec<AdvParams> {
        vec![
            AdvParams::Straddle(RewardStraddle::default()),
            AdvParams::Alias(AliasChains::default()),
            AdvParams::Flip(PhaseFlip::default()),
        ]
    }

    /// Family label (the underlying kernel name).
    pub fn family(&self) -> &'static str {
        match self {
            AdvParams::Straddle(_) => "adv-straddle",
            AdvParams::Alias(_) => "adv-alias",
            AdvParams::Flip(_) => "adv-phaseflip",
        }
    }

    /// Instantiate the kernel at this parameter point.
    pub fn kernel(&self) -> KernelBox {
        match self {
            AdvParams::Straddle(p) => Box::new(p.clone()),
            AdvParams::Alias(p) => Box::new(p.clone()),
            AdvParams::Flip(p) => Box::new(p.clone()),
        }
    }

    /// Propose a neighbour: re-draw one parameter within its search range.
    /// Ranges keep every point adversarially *shaped* (e.g. straddle work
    /// amounts stay on opposite sides of the 18–50 cycle reward window)
    /// while leaving room for the climb to sharpen the collapse.
    pub fn mutate(&self, rng: &mut StdRng) -> AdvParams {
        match self {
            AdvParams::Straddle(p) => {
                let mut q = p.clone();
                match rng.random_range(0..4u32) {
                    0 => q.period = rng.random_range(1..13),
                    1 => q.cold_work = rng.random_range(8..49) as u32,
                    2 => q.hot_work = rng.random_range(0..5) as u32,
                    _ => q.stride = rng.random_range(1..5),
                }
                AdvParams::Straddle(q)
            }
            AdvParams::Alias(p) => {
                let mut q = p.clone();
                match rng.random_range(0..3u32) {
                    0 => q.chains = rng.random_range(2..9) as usize,
                    1 => q.nodes = rng.random_range(128..1025) as usize,
                    _ => q.work = rng.random_range(0..7) as u32,
                }
                AdvParams::Alias(q)
            }
            AdvParams::Flip(p) => {
                let mut q = p.clone();
                match rng.random_range(0..3u32) {
                    0 => q.flip_every = rng.random_range(16..257),
                    1 => q.stride_b = rng.random_range(3..32),
                    _ => q.work = rng.random_range(0..7) as u32,
                }
                AdvParams::Flip(q)
            }
        }
    }
}

/// One surviving search result: a parameter point where the learned
/// prefetcher's tail coverage collapses relative to the best table
/// baseline.
#[derive(Clone, Debug)]
pub struct AdvFinding {
    /// Family label (`adv-straddle` / `adv-alias` / `adv-phaseflip`).
    pub family: &'static str,
    /// Full parameter point (the kernel's `Debug`/trace-key rendering).
    pub params: String,
    /// Context self-reported accuracy over the adversarial tail.
    pub learned_accuracy: f64,
    /// Learned tail coverage (memory-system classified).
    pub learned_coverage: f64,
    /// Label of the baseline with the best tail coverage.
    pub best_baseline: &'static str,
    /// That baseline's tail coverage.
    pub best_baseline_coverage: f64,
    /// The hill-climbed score: `best_baseline_coverage − learned_coverage`.
    pub gap: f64,
    /// Candidate evaluations spent on this family (default + accepted +
    /// rejected proposals).
    pub evals: u32,
}

/// Prefetch coverage: the fraction of demands a prefetch fully or partially
/// hid (Fig 9's two beneficial classes). Unlike `pf.accuracy()` — whose
/// `useful` counter only the context prefetcher self-reports — coverage is
/// classified by the memory system, so it compares fairly across kinds.
pub fn coverage(r: &RunResult) -> f64 {
    r.mem.classes.fraction(AccessClass::HitPrefetchedLine)
        + r.mem.classes.fraction(AccessClass::ShorterWait)
}

/// Coverage over only the instructions simulated *after* `warm` (the
/// adversarial tail): deltas of the per-demand class counters, which are
/// monotone, so the shared warmup prefix cancels out exactly.
fn tail_coverage(warm: &RunResult, done: &RunResult) -> f64 {
    let demands = done.mem.classes.demands() - warm.mem.classes.demands();
    if demands == 0 {
        return 0.0;
    }
    let covered = (done.mem.classes.hit_prefetched - warm.mem.classes.hit_prefetched)
        + (done.mem.classes.shorter_wait - warm.mem.classes.shorter_wait);
    covered as f64 / demands as f64
}

/// Context-prefetcher self-reported accuracy over only the tail.
fn tail_accuracy(warm: &RunResult, done: &RunResult) -> f64 {
    let issued = done.pf.issued - warm.pf.issued;
    if issued == 0 {
        return 0.0;
    }
    (done.pf.useful - warm.pf.useful) as f64 / issued as f64
}

/// The fixed evaluation bench: one warmed engine per prefetcher kind over
/// the shared `mcf` warmup prefix. Building the bench simulates the warmup
/// once per kind; every subsequent [`AdvBench::eval`] only pays for its
/// own tail (via [`Engine::fork_onto`]). Shared by the search driver, the
/// pinned regression suite, and `bench_interfere`.
pub struct AdvBench {
    warmup_capture: Arc<CapturedTrace>,
    search: SearchConfig,
    /// Learned engine first, then the table baselines; each with its
    /// statistics snapshot at the warmup point, so candidate metrics can be
    /// computed over the tail alone.
    warm: Vec<(PrefetcherKind, Engine, RunResult)>,
}

/// The table baselines the learned prefetcher is scored against.
pub const BASELINES: [PrefetcherKind; 2] = [PrefetcherKind::GhbGdc, PrefetcherKind::Sms];

impl AdvBench {
    /// Warm one engine per kind (context + [`BASELINES`]) over the first
    /// `search.warmup` instructions of `mcf`.
    pub fn new(search: &SearchConfig, sim: &SimConfig) -> AdvBench {
        #[allow(clippy::expect_used)]
        let mcf = kernel_by_name("mcf").expect("mcf is a registry kernel");
        let warmup_capture = Arc::new(capture_kernel(mcf.as_ref(), search.warmup));
        let cfg = sim.clone().with_budget(search.warmup + search.tail);
        let mut kinds = vec![PrefetcherKind::context()];
        kinds.extend(BASELINES.iter().cloned());
        let warm = kinds
            .into_iter()
            .map(|kind| {
                let mut e = Engine::new(ReplayKernel::new(warmup_capture.clone()), &kind, &cfg);
                e.run_to(search.warmup);
                // A throwaway fork's result = the statistics at the warmup
                // point (the paused engine itself stays unconsumed).
                let at_warmup = e.fork().finish();
                (kind, e, at_warmup)
            })
            .collect();
        AdvBench {
            warmup_capture: warmup_capture.clone(),
            search: search.clone(),
            warm,
        }
    }

    /// Evaluate one candidate: compose warmup + tail, fork every warmed
    /// engine onto the composed stream, run out, and score the gap.
    pub fn eval(&self, params: &AdvParams) -> io::Result<AdvScore> {
        let tail = Arc::new(capture_kernel(params.kernel().as_ref(), self.search.tail));
        let composed = ComposedKernel::new(
            "adv-candidate",
            vec![
                Phase::new(self.warmup_capture.clone(), self.search.warmup),
                Phase::new(tail.clone(), self.search.tail.min(tail.buf.len() as u64)),
            ],
        );
        let capture = Arc::new(capture_kernel(
            &composed,
            self.search.warmup + self.search.tail,
        ));
        let mut learned = None;
        let mut best_base: Option<(&'static str, f64)> = None;
        for (kind, warm, at_warmup) in &self.warm {
            let mut e = warm.fork_onto(ReplayKernel::new(capture.clone()))?;
            e.run_to_end();
            let r = e.finish();
            let cov = tail_coverage(at_warmup, &r);
            if matches!(kind, PrefetcherKind::Context(_)) {
                learned = Some((tail_accuracy(at_warmup, &r), cov));
            } else {
                let better = match best_base {
                    None => true,
                    Some((_, b)) => cov > b,
                };
                if better {
                    best_base = Some((kind.label(), cov));
                }
            }
        }
        #[allow(clippy::expect_used)]
        let (learned_accuracy, learned_coverage) = learned.expect("context engine in bench");
        #[allow(clippy::expect_used)]
        let (best_baseline, best_baseline_coverage) = best_base.expect("baselines in bench");
        Ok(AdvScore {
            learned_accuracy,
            learned_coverage,
            best_baseline,
            best_baseline_coverage,
            gap: best_baseline_coverage - learned_coverage,
        })
    }
}

/// One candidate's evaluation on the bench.
#[derive(Clone, Copy, Debug)]
pub struct AdvScore {
    /// Context prefetcher self-reported accuracy over the adversarial tail.
    pub learned_accuracy: f64,
    /// Learned tail coverage (hit-prefetched + shorter-wait fraction of
    /// tail demands, classified by the memory system).
    pub learned_coverage: f64,
    /// Label of the baseline with the best tail coverage on this candidate.
    pub best_baseline: &'static str,
    /// That baseline's tail coverage.
    pub best_baseline_coverage: f64,
    /// `best_baseline_coverage − learned_coverage`: how far the learned
    /// prefetcher collapses below the best table baseline on this pattern.
    pub gap: f64,
}

/// Run the seeded adversarial search: for each family, evaluate the default
/// point, then hill-climb `search.iters` mutation proposals, keeping any
/// strict improvement of the resilience gap. Returns one finding per family
/// (≥3 distinct collapse patterns), in family order. Deterministic for a
/// fixed `(seed, search, sim)`.
pub fn adversarial_search(
    seed: u64,
    search: &SearchConfig,
    sim: &SimConfig,
) -> io::Result<Vec<AdvFinding>> {
    let bench = AdvBench::new(search, sim);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xad5e_a5c4);
    let mut findings = Vec::new();
    for start in AdvParams::defaults() {
        let mut best = start;
        let mut best_score = bench.eval(&best)?;
        let mut evals = 1u32;
        for _ in 0..search.iters {
            let cand = best.mutate(&mut rng);
            let score = bench.eval(&cand)?;
            evals += 1;
            if score.gap > best_score.gap {
                best = cand;
                best_score = score;
            }
        }
        findings.push(AdvFinding {
            family: best.family(),
            params: format!("{:?}", best.kernel()),
            learned_accuracy: best_score.learned_accuracy,
            learned_coverage: best_score.learned_coverage,
            best_baseline: best_score.best_baseline,
            best_baseline_coverage: best_score.best_baseline_coverage,
            gap: best_score.gap,
            evals,
        });
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SearchConfig {
        SearchConfig {
            warmup: 8_000,
            tail: 16_000,
            iters: 2,
        }
    }

    #[test]
    fn search_is_deterministic_under_seed() {
        let sim = SimConfig::default();
        let a = adversarial_search(7, &tiny(), &sim).expect("search runs");
        let b = adversarial_search(7, &tiny(), &sim).expect("search runs");
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.params, y.params);
            assert_eq!(x.gap.to_bits(), y.gap.to_bits());
            assert_eq!(x.evals, y.evals);
        }
    }

    #[test]
    fn search_covers_every_family_distinctly() {
        let sim = SimConfig::default();
        let f = adversarial_search(7, &tiny(), &sim).expect("search runs");
        let families: std::collections::BTreeSet<_> = f.iter().map(|x| x.family).collect();
        assert_eq!(families.len(), 3, "one finding per family");
        let params: std::collections::BTreeSet<_> = f.iter().map(|x| x.params.clone()).collect();
        assert_eq!(params.len(), 3, "three distinct parameter points");
        for x in &f {
            assert!(!x.params.is_empty());
            assert!((0.0..=1.0).contains(&x.learned_accuracy));
            assert!((0.0..=1.0).contains(&x.best_baseline_coverage));
        }
    }

    #[test]
    fn mutate_stays_in_family() {
        let mut rng = StdRng::seed_from_u64(3);
        for p in AdvParams::defaults() {
            for _ in 0..20 {
                assert_eq!(p.mutate(&mut rng).family(), p.family());
            }
        }
    }
}
