//! Top-level simulation configuration (Table 2).

use semloc_cpu::CpuConfig;
use semloc_mem::MemConfig;

/// Everything needed to reproduce one simulated run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Core parameters (Table 2: OoO, 4-wide fetch, 192 ROB, ...).
    pub cpu: CpuConfig,
    /// Memory-system parameters (Table 2: 64 kB L1 / 2 MB L2 / 300-cycle
    /// DRAM).
    pub mem: MemConfig,
    /// Dynamic-instruction budget per run. The paper simulates 50–100M
    /// instruction phases and validates that longer phases change nothing;
    /// we default to a scaled-down steady-state phase (override with the
    /// `SEMLOC_BUDGET` environment variable).
    pub instr_budget: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        let instr_budget = std::env::var("SEMLOC_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(400_000);
        SimConfig {
            cpu: CpuConfig::default(),
            mem: MemConfig::default(),
            instr_budget,
        }
    }
}

impl SimConfig {
    /// A fast configuration for tests (small instruction budget).
    pub fn quick() -> Self {
        SimConfig {
            instr_budget: 120_000,
            ..SimConfig::default()
        }
    }

    /// Set the instruction budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.instr_budget = budget;
        self
    }

    /// Render the Table 2 parameter block as text.
    pub fn table2(&self) -> String {
        let c = &self.cpu;
        let m = &self.mem;
        format!(
            "Simulation mode   trace-driven OoO timing model\n\
             Core type         OoO, {fw}-wide fetch\n\
             Queue sizes       {rob} ROB, {iq} IQ, {prf} PRF, {lq} LQ/SQ\n\
             MSHRs             L1: {m1}, L2: {m2}\n\
             L1 cache          {l1}kB Data, {l1w} ways, {l1l} cycles access, private\n\
             L2 cache          {l2}MB, {l2w} ways, {l2l} cycles access, shared\n\
             Main memory       {dram} cycles access",
            fw = c.fetch_width,
            rob = c.rob_size,
            iq = c.iq_size,
            prf = c.prf_size,
            lq = c.lq_size,
            m1 = m.l1.mshrs,
            m2 = m.l2.mshrs,
            l1 = m.l1.size_bytes / 1024,
            l1w = m.l1.ways,
            l1l = m.l1.latency,
            l2 = m.l2.size_bytes / (1024 * 1024),
            l2w = m.l2.ways,
            l2l = m.l2.latency,
            dram = m.dram_latency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = SimConfig::default();
        let t = c.table2();
        assert!(t.contains("4-wide fetch"));
        assert!(t.contains("192 ROB, 64 IQ, 256 PRF, 32 LQ/SQ"));
        assert!(t.contains("L1: 4, L2: 20"));
        assert!(t.contains("64kB Data, 8 ways, 2 cycles"));
        assert!(t.contains("2MB, 16 ways, 20 cycles"));
        assert!(t.contains("300 cycles"));
    }

    #[test]
    fn quick_is_smaller() {
        assert!(
            SimConfig::quick().instr_budget
                < SimConfig::default().with_budget(400_000).instr_budget
        );
    }
}
