//! The evaluation matrix: workloads × prefetchers, with the derived
//! aggregates the paper reports (geometric-mean speedups, Top-10 subsets,
//! memory-intensive filters).

use std::collections::BTreeMap;

use semloc_workloads::KernelBox;

use crate::config::SimConfig;
use crate::prefetchers::PrefetcherKind;
use crate::runner::{run_baseline_priming_probe, run_kernel_with_store, RunResult, SpeedupError};
use crate::store::TraceStore;

/// Results of a full run matrix. Always includes a `none` column as the
/// speedup baseline.
#[derive(Clone, Debug, Default)]
pub struct Matrix {
    /// `results[kernel][prefetcher]`.
    results: BTreeMap<&'static str, BTreeMap<&'static str, RunResult>>,
    kernel_order: Vec<&'static str>,
    pf_order: Vec<&'static str>,
}

impl Matrix {
    /// Shared setup for both runners: an empty matrix with the kernel and
    /// prefetcher display orders filled in, plus the full lineup (baseline
    /// `none` prepended to the requested prefetchers).
    ///
    /// # Panics
    ///
    /// Panics if two entries in the lineup share a display
    /// [`label`](PrefetcherKind::label) (e.g. `Context` and
    /// `ContextCalibrated`, which both render as `context`). Cells are
    /// keyed by label, so a duplicate would silently overwrite the earlier
    /// column's results — a hard error beats a wrong figure.
    fn prepare(
        kernels: &[KernelBox],
        prefetchers: &[PrefetcherKind],
    ) -> (Self, Vec<PrefetcherKind>) {
        let mut m = Matrix::default();
        let mut lineup = vec![PrefetcherKind::None];
        lineup.extend(prefetchers.iter().cloned());
        for pf in &lineup {
            assert!(
                !m.pf_order.contains(&pf.label()),
                "duplicate prefetcher label {:?} in matrix lineup ({:?} collides with an \
                 earlier entry); cells are keyed by label, so one column would silently \
                 overwrite the other",
                pf.label(),
                pf,
            );
            m.pf_order.push(pf.label());
        }
        for k in kernels {
            m.kernel_order.push(k.name());
        }
        (m, lineup)
    }

    /// Whether a `none` cell should pause at the calibration-probe budget
    /// and fork the warmed engine into the probe memo (the lineup contains
    /// a calibrated context column that will want that exact probe).
    fn run_cell(
        store: &TraceStore,
        kernel: &dyn semloc_workloads::Kernel,
        pf: &PrefetcherKind,
        wants_probe: bool,
        config: &SimConfig,
    ) -> RunResult {
        if wants_probe && matches!(pf, PrefetcherKind::None) {
            run_baseline_priming_probe(store, kernel, config)
        } else {
            run_kernel_with_store(store, kernel, pf, config)
        }
    }

    /// Run every kernel under the baseline plus each given prefetcher.
    /// `progress` is invoked after each run completes (for CLI feedback).
    /// See [`Matrix::prepare`]'s panic contract for lineup constraints.
    pub fn run(
        kernels: &[KernelBox],
        prefetchers: &[PrefetcherKind],
        config: &SimConfig,
        progress: impl FnMut(&RunResult),
    ) -> Self {
        Self::run_with_store(TraceStore::global(), kernels, prefetchers, config, progress)
    }

    /// [`Matrix::run`] against an explicit [`TraceStore`]. When the lineup
    /// contains [`PrefetcherKind::ContextCalibrated`], the baseline column
    /// doubles as the calibration probe: each kernel's no-prefetch run
    /// pauses at the probe budget, forks its warmed engine state into the
    /// probe memo, and continues — so the probe prefix is simulated once
    /// per kernel instead of once per column.
    pub fn run_with_store(
        store: &TraceStore,
        kernels: &[KernelBox],
        prefetchers: &[PrefetcherKind],
        config: &SimConfig,
        mut progress: impl FnMut(&RunResult),
    ) -> Self {
        let (mut m, lineup) = Self::prepare(kernels, prefetchers);
        let wants_probe = lineup
            .iter()
            .any(|pf| matches!(pf, PrefetcherKind::ContextCalibrated(_)));
        for k in kernels {
            for pf in &lineup {
                let r = Self::run_cell(store, k.as_ref(), pf, wants_probe, config);
                progress(&r);
                m.results
                    .entry(k.name())
                    .or_default()
                    .insert(r.prefetcher, r);
            }
        }
        m
    }

    /// Like [`Matrix::run`], but fans the independent (kernel, prefetcher)
    /// simulations out over a work-stealing shard pool of `threads`
    /// workers (see [`crate::pool`]). Results are bit-identical to the
    /// sequential runner (every run is deterministic and isolated); only
    /// completion order differs. Workers share the process-global
    /// [`TraceStore`](crate::TraceStore), so each kernel's stream is
    /// generated once no matter how many columns consume it.
    pub fn run_parallel(
        kernels: &[KernelBox],
        prefetchers: &[PrefetcherKind],
        config: &SimConfig,
        threads: usize,
        progress: impl Fn(&RunResult) + Sync,
    ) -> Self {
        Self::run_parallel_with_store(
            TraceStore::global(),
            kernels,
            prefetchers,
            config,
            threads,
            progress,
        )
    }

    /// [`Matrix::run_parallel`] against an explicit [`TraceStore`]; see
    /// [`Matrix::run_with_store`] for the baseline-as-probe behaviour.
    pub fn run_parallel_with_store(
        store: &TraceStore,
        kernels: &[KernelBox],
        prefetchers: &[PrefetcherKind],
        config: &SimConfig,
        threads: usize,
        progress: impl Fn(&RunResult) + Sync,
    ) -> Self {
        let (mut m, lineup) = Self::prepare(kernels, prefetchers);
        let wants_probe = lineup
            .iter()
            .any(|pf| matches!(pf, PrefetcherKind::ContextCalibrated(_)));
        // One job per (kernel, prefetcher) cell, kernel-major so a worker's
        // own LIFO shard keeps it on one kernel's columns (and one warm
        // trace) for as long as possible.
        let jobs: Vec<(usize, usize)> = (0..kernels.len())
            .flat_map(|ki| (0..lineup.len()).map(move |pi| (ki, pi)))
            .collect();
        let results = crate::pool::run_sharded(threads, jobs, |(ki, pi)| {
            let r = Self::run_cell(
                store,
                kernels[ki].as_ref(),
                &lineup[pi],
                wants_probe,
                config,
            );
            progress(&r);
            r
        });
        for r in results {
            m.results
                .entry(r.kernel)
                .or_default()
                .insert(r.prefetcher, r);
        }
        m
    }

    /// Kernels in run order.
    pub fn kernels(&self) -> &[&'static str] {
        &self.kernel_order
    }

    /// Prefetchers in run order (baseline `none` first).
    pub fn prefetchers(&self) -> &[&'static str] {
        &self.pf_order
    }

    /// The result of (kernel, prefetcher), if present.
    pub fn get(&self, kernel: &str, prefetcher: &str) -> Option<&RunResult> {
        self.results.get(kernel)?.get(prefetcher)
    }

    /// Speedup of `prefetcher` on `kernel` over the no-prefetch baseline.
    /// Missing cells and degenerate IPCs are typed [`SpeedupError`]s.
    pub fn speedup(&self, kernel: &str, prefetcher: &str) -> Result<f64, SpeedupError> {
        let base = self.get(kernel, "none").ok_or(SpeedupError::MissingCell)?;
        self.get(kernel, prefetcher)
            .ok_or(SpeedupError::MissingCell)?
            .speedup_over(base)
    }

    /// Geometric-mean speedup of `prefetcher` across `kernels`. Every cell
    /// must yield a valid speedup; the first failure propagates (an empty
    /// kernel set is a [`SpeedupError::MissingCell`]). Valid speedups are
    /// always finite and positive, so the log-mean is well defined.
    pub fn geomean_speedup(&self, prefetcher: &str, kernels: &[&str]) -> Result<f64, SpeedupError> {
        if kernels.is_empty() {
            return Err(SpeedupError::MissingCell);
        }
        let mut log_sum = 0.0;
        for k in kernels {
            log_sum += self.speedup(k, prefetcher)?.ln();
        }
        Ok((log_sum / kernels.len() as f64).exp())
    }

    /// The `n` kernels that benefit most from `prefetcher` (the paper's
    /// "Top10" selection in Fig 13). Kernels without a valid speedup are
    /// excluded from the ranking.
    pub fn top_n(&self, prefetcher: &str, n: usize) -> Vec<&'static str> {
        let mut pairs: Vec<(&'static str, f64)> = self
            .kernel_order
            .iter()
            .filter_map(|&k| self.speedup(k, prefetcher).ok().map(|s| (k, s)))
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
        pairs.into_iter().take(n).map(|(k, _)| k).collect()
    }

    /// Kernels whose baseline L1 MPKI exceeds `threshold` (Figs 10/11
    /// filter to the memory-intensive subset).
    pub fn memory_intensive(&self, threshold: f64, l2: bool) -> Vec<&'static str> {
        self.kernel_order
            .iter()
            .filter(|&&k| {
                self.get(k, "none")
                    .map(|r| if l2 { r.l2_mpki() } else { r.l1_mpki() } > threshold)
                    .unwrap_or(false)
            })
            .copied()
            .collect()
    }

    /// Fold every cell's [`RunResult::stats_digest`] (kernel order, then
    /// prefetcher order) into one fingerprint of the whole matrix. Equal
    /// digests mean bit-identical simulation statistics; the golden-digest
    /// test pins this value across runner variants and hot-path rewrites.
    pub fn stats_digest(&self) -> u64 {
        let mut d = crate::runner::Digest::new();
        for r in self.iter() {
            d.u64(r.stats_digest());
        }
        d.finish()
    }

    /// All results, flattened (kernel order, then prefetcher order).
    pub fn iter(&self) -> impl Iterator<Item = &RunResult> {
        self.kernel_order
            .iter()
            .flat_map(move |k| self.pf_order.iter().filter_map(move |p| self.get(k, p)))
    }

    /// Export the full matrix as CSV (one row per kernel × prefetcher)
    /// with the metrics every figure draws on — suitable for external
    /// plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "kernel,prefetcher,instructions,cycles,ipc,speedup,l1_mpki,l2_mpki,prefetches_issued,prefetches_rejected,hit_prefetched,shorter_wait,non_timely,miss_not_prefetched,hit_older_demand,prefetch_never_hit\n",
        );
        for r in self.iter() {
            // NaN marks an uncomputable speedup in the export (never a
            // silent 0.0, which would plot as a plausible slowdown).
            let speedup = self.speedup(r.kernel, r.prefetcher).map_or(f64::NAN, |s| s);
            let c = &r.mem.classes;
            out.push_str(&format!(
                "{},{},{},{},{:.4},{:.4},{:.3},{:.3},{},{},{},{},{},{},{},{}
",
                r.kernel,
                r.prefetcher,
                r.cpu.instructions,
                r.cpu.cycles,
                r.cpu.ipc(),
                speedup,
                r.l1_mpki(),
                r.l2_mpki(),
                r.mem.prefetches_issued,
                r.mem.prefetches_rejected,
                c.hit_prefetched,
                c.shorter_wait,
                c.non_timely,
                c.miss_not_prefetched,
                c.hit_older_demand,
                c.prefetch_never_hit,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_workloads::kernel_by_name;

    fn tiny_matrix() -> Matrix {
        let kernels = vec![
            kernel_by_name("array").unwrap(),
            kernel_by_name("list").unwrap(),
        ];
        Matrix::run(
            &kernels,
            &[PrefetcherKind::Stride],
            &SimConfig::quick(),
            |_| {},
        )
    }

    #[test]
    fn matrix_contains_baseline_and_lineup() {
        let m = tiny_matrix();
        assert_eq!(m.prefetchers(), &["none", "stride"]);
        assert_eq!(m.kernels(), &["array", "list"]);
        assert!(m.get("array", "none").is_some());
        assert!(m.get("array", "stride").is_some());
        assert_eq!(m.iter().count(), 4);
    }

    #[test]
    fn speedups_and_geomean() {
        let m = tiny_matrix();
        let s = m.speedup("array", "stride").unwrap();
        assert!(s > 0.5);
        let g = m.geomean_speedup("stride", &["array", "list"]).unwrap();
        assert!(g > 0.0);
        // Geomean of baseline against itself is exactly 1.
        let g_none = m.geomean_speedup("none", &["array", "list"]).unwrap();
        assert!((g_none - 1.0).abs() < 1e-12);
        // Missing cells surface as typed errors, never silent zeros.
        assert_eq!(
            m.speedup("array", "ghb-gdc"),
            Err(SpeedupError::MissingCell)
        );
        assert_eq!(
            m.geomean_speedup("stride", &["array", "no-such-kernel"]),
            Err(SpeedupError::MissingCell)
        );
        assert_eq!(
            m.geomean_speedup("stride", &[]),
            Err(SpeedupError::MissingCell)
        );
    }

    #[test]
    #[should_panic(expected = "duplicate prefetcher label")]
    fn duplicate_labels_are_a_hard_error() {
        let kernels = vec![kernel_by_name("array").unwrap()];
        // Context and ContextCalibrated both display as "context": the
        // second column would silently overwrite the first.
        Matrix::run(
            &kernels,
            &[
                PrefetcherKind::context(),
                PrefetcherKind::context_calibrated(),
            ],
            &SimConfig::quick(),
            |_| {},
        );
    }

    #[test]
    fn top_n_ranks_by_speedup() {
        let m = tiny_matrix();
        let top = m.top_n("stride", 1);
        assert_eq!(top.len(), 1);
        // Stride must help the array more than the scattered list.
        assert_eq!(top[0], "array");
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let m = tiny_matrix();
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * 2, "header + kernels x prefetchers");
        assert!(lines[0].starts_with("kernel,prefetcher"));
        assert!(lines.iter().skip(1).all(|l| l.split(',').count() == 16));
    }

    #[test]
    fn parallel_matches_sequential() {
        let kernels = vec![
            kernel_by_name("array").unwrap(),
            kernel_by_name("list").unwrap(),
        ];
        let cfg = SimConfig::quick();
        let seq = Matrix::run(&kernels, &[PrefetcherKind::Stride], &cfg, |_| {});
        let par = Matrix::run_parallel(&kernels, &[PrefetcherKind::Stride], &cfg, 4, |_| {});
        for k in seq.kernels() {
            for p in seq.prefetchers() {
                let a = seq.get(k, p).unwrap();
                let b = par.get(k, p).unwrap();
                assert_eq!(a.cpu, b.cpu, "{k}/{p} differs between runners");
                assert_eq!(a.mem, b.mem);
            }
        }
    }

    #[test]
    fn calibrated_matrix_matches_standalone_runs() {
        // The baseline column doubles as the calibration probe (pause,
        // fork, continue) — which must be invisible in the results: every
        // cell is bit-identical to a standalone store-less run.
        let kernels = vec![kernel_by_name("list").unwrap()];
        let cfg = SimConfig::quick();
        let store = TraceStore::new();
        let m = Matrix::run_with_store(
            &store,
            &kernels,
            &[PrefetcherKind::context_calibrated()],
            &cfg,
            |_| {},
        );
        for pf in [PrefetcherKind::None, PrefetcherKind::context_calibrated()] {
            let standalone = crate::runner::run_kernel_uncached(kernels[0].as_ref(), &pf, &cfg);
            let cell = m.get("list", pf.label()).unwrap();
            assert_eq!(cell.cpu, standalone.cpu, "{} cpu stats differ", pf.label());
            assert_eq!(cell.mem, standalone.mem, "{} mem stats differ", pf.label());
            assert_eq!(cell.stats_digest(), standalone.stats_digest());
        }
    }

    #[test]
    fn memory_intensive_filter() {
        let m = tiny_matrix();
        let heavy = m.memory_intensive(1.0, false);
        assert!(
            heavy.contains(&"list"),
            "scattered list is memory intensive"
        );
    }
}
