//! The evaluation matrix: workloads × prefetchers, with the derived
//! aggregates the paper reports (geometric-mean speedups, Top-10 subsets,
//! memory-intensive filters).

use std::collections::BTreeMap;
use std::sync::Mutex;

use semloc_workloads::KernelBox;

use crate::config::SimConfig;
use crate::prefetchers::PrefetcherKind;
use crate::runner::{run_kernel, RunResult};

/// Results of a full run matrix. Always includes a `none` column as the
/// speedup baseline.
#[derive(Clone, Debug, Default)]
pub struct Matrix {
    /// `results[kernel][prefetcher]`.
    results: BTreeMap<&'static str, BTreeMap<&'static str, RunResult>>,
    kernel_order: Vec<&'static str>,
    pf_order: Vec<&'static str>,
}

impl Matrix {
    /// Shared setup for both runners: an empty matrix with the kernel and
    /// prefetcher display orders filled in, plus the full lineup (baseline
    /// `none` prepended to the requested prefetchers).
    fn prepare(
        kernels: &[KernelBox],
        prefetchers: &[PrefetcherKind],
    ) -> (Self, Vec<PrefetcherKind>) {
        let mut m = Matrix::default();
        let mut lineup = vec![PrefetcherKind::None];
        lineup.extend(prefetchers.iter().cloned());
        for pf in &lineup {
            if !m.pf_order.contains(&pf.label()) {
                m.pf_order.push(pf.label());
            }
        }
        for k in kernels {
            m.kernel_order.push(k.name());
        }
        (m, lineup)
    }

    /// Run every kernel under the baseline plus each given prefetcher.
    /// `progress` is invoked after each run completes (for CLI feedback).
    pub fn run(
        kernels: &[KernelBox],
        prefetchers: &[PrefetcherKind],
        config: &SimConfig,
        mut progress: impl FnMut(&RunResult),
    ) -> Self {
        let (mut m, lineup) = Self::prepare(kernels, prefetchers);
        for k in kernels {
            for pf in &lineup {
                let r = run_kernel(k.as_ref(), pf, config);
                progress(&r);
                m.results
                    .entry(k.name())
                    .or_default()
                    .insert(r.prefetcher, r);
            }
        }
        m
    }

    /// Like [`Matrix::run`], but fans the independent (kernel, prefetcher)
    /// simulations out over `threads` worker threads. Results are
    /// bit-identical to the sequential runner (every run is deterministic
    /// and isolated); only completion order differs. Workers share the
    /// process-global [`TraceStore`](crate::TraceStore), so each kernel's
    /// stream is generated once no matter how many columns consume it.
    pub fn run_parallel(
        kernels: &[KernelBox],
        prefetchers: &[PrefetcherKind],
        config: &SimConfig,
        threads: usize,
        progress: impl Fn(&RunResult) + Sync,
    ) -> Self {
        let (mut m, lineup) = Self::prepare(kernels, prefetchers);
        // Work queue of (kernel index, prefetcher index) pairs.
        let jobs: Vec<(usize, usize)> = (0..kernels.len())
            .flat_map(|ki| (0..lineup.len()).map(move |pi| (ki, pi)))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Mutex<Vec<RunResult>> = Mutex::new(Vec::with_capacity(jobs.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&(ki, pi)) = jobs.get(i) else { break };
                    let r = run_kernel(kernels[ki].as_ref(), &lineup[pi], config);
                    progress(&r);
                    results.lock().expect("no panics hold the lock").push(r);
                });
            }
        });
        for r in results.into_inner().expect("workers finished") {
            m.results
                .entry(r.kernel)
                .or_default()
                .insert(r.prefetcher, r);
        }
        m
    }

    /// Kernels in run order.
    pub fn kernels(&self) -> &[&'static str] {
        &self.kernel_order
    }

    /// Prefetchers in run order (baseline `none` first).
    pub fn prefetchers(&self) -> &[&'static str] {
        &self.pf_order
    }

    /// The result of (kernel, prefetcher), if present.
    pub fn get(&self, kernel: &str, prefetcher: &str) -> Option<&RunResult> {
        self.results.get(kernel)?.get(prefetcher)
    }

    /// Speedup of `prefetcher` on `kernel` over the no-prefetch baseline.
    pub fn speedup(&self, kernel: &str, prefetcher: &str) -> Option<f64> {
        let base = self.get(kernel, "none")?;
        Some(self.get(kernel, prefetcher)?.speedup_over(base))
    }

    /// Geometric-mean speedup of `prefetcher` across `kernels`.
    pub fn geomean_speedup(&self, prefetcher: &str, kernels: &[&str]) -> f64 {
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for k in kernels {
            if let Some(s) = self.speedup(k, prefetcher) {
                if s > 0.0 {
                    log_sum += s.ln();
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            (log_sum / n as f64).exp()
        }
    }

    /// The `n` kernels that benefit most from `prefetcher` (the paper's
    /// "Top10" selection in Fig 13).
    pub fn top_n(&self, prefetcher: &str, n: usize) -> Vec<&'static str> {
        let mut pairs: Vec<(&'static str, f64)> = self
            .kernel_order
            .iter()
            .filter_map(|&k| self.speedup(k, prefetcher).map(|s| (k, s)))
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite speedups"));
        pairs.into_iter().take(n).map(|(k, _)| k).collect()
    }

    /// Kernels whose baseline L1 MPKI exceeds `threshold` (Figs 10/11
    /// filter to the memory-intensive subset).
    pub fn memory_intensive(&self, threshold: f64, l2: bool) -> Vec<&'static str> {
        self.kernel_order
            .iter()
            .filter(|&&k| {
                self.get(k, "none")
                    .map(|r| if l2 { r.l2_mpki() } else { r.l1_mpki() } > threshold)
                    .unwrap_or(false)
            })
            .copied()
            .collect()
    }

    /// Fold every cell's [`RunResult::stats_digest`] (kernel order, then
    /// prefetcher order) into one fingerprint of the whole matrix. Equal
    /// digests mean bit-identical simulation statistics; the golden-digest
    /// test pins this value across runner variants and hot-path rewrites.
    pub fn stats_digest(&self) -> u64 {
        let mut d = crate::runner::Digest::new();
        for r in self.iter() {
            d.u64(r.stats_digest());
        }
        d.finish()
    }

    /// All results, flattened (kernel order, then prefetcher order).
    pub fn iter(&self) -> impl Iterator<Item = &RunResult> {
        self.kernel_order
            .iter()
            .flat_map(move |k| self.pf_order.iter().filter_map(move |p| self.get(k, p)))
    }

    /// Export the full matrix as CSV (one row per kernel × prefetcher)
    /// with the metrics every figure draws on — suitable for external
    /// plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "kernel,prefetcher,instructions,cycles,ipc,speedup,l1_mpki,l2_mpki,prefetches_issued,prefetches_rejected,hit_prefetched,shorter_wait,non_timely,miss_not_prefetched,hit_older_demand,prefetch_never_hit\n",
        );
        for r in self.iter() {
            let speedup = self.speedup(r.kernel, r.prefetcher).unwrap_or(0.0);
            let c = &r.mem.classes;
            out.push_str(&format!(
                "{},{},{},{},{:.4},{:.4},{:.3},{:.3},{},{},{},{},{},{},{},{}
",
                r.kernel,
                r.prefetcher,
                r.cpu.instructions,
                r.cpu.cycles,
                r.cpu.ipc(),
                speedup,
                r.l1_mpki(),
                r.l2_mpki(),
                r.mem.prefetches_issued,
                r.mem.prefetches_rejected,
                c.hit_prefetched,
                c.shorter_wait,
                c.non_timely,
                c.miss_not_prefetched,
                c.hit_older_demand,
                c.prefetch_never_hit,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_workloads::kernel_by_name;

    fn tiny_matrix() -> Matrix {
        let kernels = vec![
            kernel_by_name("array").unwrap(),
            kernel_by_name("list").unwrap(),
        ];
        Matrix::run(
            &kernels,
            &[PrefetcherKind::Stride],
            &SimConfig::quick(),
            |_| {},
        )
    }

    #[test]
    fn matrix_contains_baseline_and_lineup() {
        let m = tiny_matrix();
        assert_eq!(m.prefetchers(), &["none", "stride"]);
        assert_eq!(m.kernels(), &["array", "list"]);
        assert!(m.get("array", "none").is_some());
        assert!(m.get("array", "stride").is_some());
        assert_eq!(m.iter().count(), 4);
    }

    #[test]
    fn speedups_and_geomean() {
        let m = tiny_matrix();
        let s = m.speedup("array", "stride").unwrap();
        assert!(s > 0.5);
        let g = m.geomean_speedup("stride", &["array", "list"]);
        assert!(g > 0.0);
        // Geomean of baseline against itself is exactly 1.
        assert!((m.geomean_speedup("none", &["array", "list"]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_n_ranks_by_speedup() {
        let m = tiny_matrix();
        let top = m.top_n("stride", 1);
        assert_eq!(top.len(), 1);
        // Stride must help the array more than the scattered list.
        assert_eq!(top[0], "array");
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let m = tiny_matrix();
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * 2, "header + kernels x prefetchers");
        assert!(lines[0].starts_with("kernel,prefetcher"));
        assert!(lines.iter().skip(1).all(|l| l.split(',').count() == 16));
    }

    #[test]
    fn parallel_matches_sequential() {
        let kernels = vec![
            kernel_by_name("array").unwrap(),
            kernel_by_name("list").unwrap(),
        ];
        let cfg = SimConfig::quick();
        let seq = Matrix::run(&kernels, &[PrefetcherKind::Stride], &cfg, |_| {});
        let par = Matrix::run_parallel(&kernels, &[PrefetcherKind::Stride], &cfg, 4, |_| {});
        for k in seq.kernels() {
            for p in seq.prefetchers() {
                let a = seq.get(k, p).unwrap();
                let b = par.get(k, p).unwrap();
                assert_eq!(a.cpu, b.cpu, "{k}/{p} differs between runners");
                assert_eq!(a.mem, b.mem);
            }
        }
    }

    #[test]
    fn memory_intensive_filter() {
        let m = tiny_matrix();
        let heavy = m.memory_intensive(1.0, false);
        assert!(
            heavy.contains(&"list"),
            "scattered list is memory intensive"
        );
    }
}
