//! Plain-text table and chart rendering for the figure/table binaries.

/// A fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = self.headers.iter().map(esc).collect::<Vec<_>>().join(",");
        for row in &self.rows {
            out.push('\n');
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// A horizontal ASCII bar scaled to `max` over `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Format a ratio as `1.23x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Format a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// One-line text summary of the decoded-trace cache counters, e.g.
/// `12 hits / 3 misses / 1 eviction (80.0% hit rate)`.
pub fn decode_cache_line(s: &crate::store::DecodeCacheStats) -> String {
    let count = |n: u64, one: &str, many: &str| format!("{n} {}", if n == 1 { one } else { many });
    format!(
        "{} / {} / {} ({} hit rate)",
        count(s.hits, "hit", "hits"),
        count(s.misses, "miss", "misses"),
        count(s.evictions, "eviction", "evictions"),
        pct(s.hit_rate()),
    )
}

/// The decoded-trace cache counters as a JSON object fragment — the
/// `"decode_cache"` value in the CLI's `--json` report shape:
/// `{"hits":12,"misses":3,"evictions":1}`.
pub fn decode_cache_json(s: &crate::store::DecodeCacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
        s.hits, s.misses, s.evictions
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Both value cells start at the same column.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].rfind("123456").unwrap(), col);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "plain"]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",plain");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped at width");
        assert_eq!(bar(0.0, 10.0, 10), "");
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(1.234), "1.23x");
        assert_eq!(pct(0.2), "20.0%");
    }

    #[test]
    fn decode_cache_text_line() {
        let s = crate::store::DecodeCacheStats {
            hits: 12,
            misses: 3,
            evictions: 1,
        };
        assert_eq!(
            decode_cache_line(&s),
            "12 hits / 3 misses / 1 eviction (80.0% hit rate)"
        );
        let cold = crate::store::DecodeCacheStats::default();
        assert_eq!(
            decode_cache_line(&cold),
            "0 hits / 0 misses / 0 evictions (0.0% hit rate)",
            "no lookups must not divide by zero"
        );
    }

    #[test]
    fn decode_cache_json_shape() {
        let s = crate::store::DecodeCacheStats {
            hits: 12,
            misses: 3,
            evictions: 1,
        };
        assert_eq!(
            decode_cache_json(&s),
            r#"{"hits":12,"misses":3,"evictions":1}"#
        );
    }
}
