//! `semloc-arena` — a tournament over pipeline compositions.
//!
//! The trait layers in `crates/core` (feature sets, reward shapes, policy
//! backends, table geometry) open a design space the paper only samples.
//! The arena sweeps a grid of [`PipelineConfig`] cells over a shared
//! [`TraceStore`] capture set, ranks them by geometric-mean speedup over
//! the no-prefetch baseline and reports IPC, prediction accuracy and
//! coverage per kernel.
//!
//! Two harness primitives carry the run:
//!
//! * every (cell, kernel) simulation **warm-starts**: an engine warms over
//!   the shared trace prefix, then [`Engine::fork_onto`] moves the trained
//!   state onto a fresh replay handle of the same capture. The fork goes
//!   through checkpoint/restore, so every composition's CTXP v2 snapshot
//!   round-trips on every arena run — and the verification subset
//!   (`VerifyMode`) digest-asserts the forked run against a cold run
//!   before anything is ranked;
//! * the independent cells fan out over the work-stealing shard pool
//!   ([`crate::pool`]), kernel-major so a worker stays on one kernel's
//!   warm trace; results are bit-identical to a sequential sweep.

use std::fmt::Write as _;

use semloc_context::{ContextConfig, FeatureSet, PipelineConfig};
use semloc_workloads::KernelBox;

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::interfere::coverage;
use crate::prefetchers::PrefetcherKind;
use crate::report::Table;
use crate::runner::{run_kernel_with_store, RunResult};
use crate::store::TraceStore;

/// Which (cell, kernel) runs are digest-asserted against a cold
/// (non-forked) run before ranking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyMode {
    /// No equivalence checks (fastest; the engine's own fork tests still
    /// cover the default composition).
    Off,
    /// The first cell of every kernel (default: one warm-vs-cold proof per
    /// trace at the cost of one extra run per kernel).
    #[default]
    First,
    /// Every cell (the exhaustive snapshot-equivalence sweep; roughly
    /// doubles the arena's work).
    All,
}

impl VerifyMode {
    /// Parse the `SEMLOC_ARENA_VERIFY` knob. Unknown values are a hard
    /// error — a typo'd knob should fail loudly, not silently skip the
    /// equivalence proof.
    pub fn parse(s: &str) -> Option<VerifyMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Some(VerifyMode::Off),
            "first" => Some(VerifyMode::First),
            "all" => Some(VerifyMode::All),
            _ => None,
        }
    }
}

/// Tournament parameters.
#[derive(Clone, Debug)]
pub struct ArenaOpts {
    /// Instruction budget per run.
    pub budget: u64,
    /// Warm-prefix length: each engine warms to this cursor before
    /// [`Engine::fork_onto`] moves its state onto the scored continuation.
    /// Clamped to half the budget so the fork always has a tail to run.
    pub warm: u64,
    /// Shard-pool width (see [`crate::pool::pool_threads`]).
    pub threads: usize,
    /// Warm-vs-cold digest verification subset.
    pub verify: VerifyMode,
}

impl Default for ArenaOpts {
    fn default() -> Self {
        ArenaOpts {
            budget: 120_000,
            warm: 20_000,
            threads: crate::pool::pool_threads(),
            verify: VerifyMode::default(),
        }
    }
}

/// One kernel's metrics under one cell.
#[derive(Clone, Debug)]
pub struct KernelScore {
    /// Workload name.
    pub kernel: &'static str,
    /// Speedup over the no-prefetch baseline.
    pub speedup: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Context-prefetcher prediction accuracy (0 when the cell kept no
    /// learning stats).
    pub accuracy: f64,
    /// Miss coverage vs. the baseline miss count.
    pub coverage: f64,
}

/// One cell's ranked tournament entry.
#[derive(Clone, Debug)]
pub struct CellScore {
    /// Cell label, e.g. `table1+bell+cst2048`.
    pub label: String,
    /// Geometric-mean speedup across all kernels.
    pub geomean: f64,
    /// Per-kernel metrics, in kernel order.
    pub kernels: Vec<KernelScore>,
}

/// The full tournament outcome, ranked best-first.
#[derive(Clone, Debug)]
pub struct ArenaReport {
    /// Cells sorted by descending geomean (ties broken by label, so the
    /// ranking is deterministic).
    pub cells: Vec<CellScore>,
    /// Kernel display order.
    pub kernels: Vec<&'static str>,
    /// Instruction budget per run.
    pub budget: u64,
    /// Warm-prefix length actually used (post-clamp).
    pub warm: u64,
    /// How many (cell, kernel) runs were digest-asserted against a cold
    /// run.
    pub verified: usize,
}

/// The default tournament grid: every feature set crossed with the three
/// qualitatively distinct reward shapes at the paper's Table-2 geometry,
/// plus the default composition at halved and doubled CST capacity. 14
/// cells; the first is exactly [`PipelineConfig::default`], so rank tables
/// always carry the paper's own pipeline as the reference row.
pub fn default_cells() -> Vec<PipelineConfig> {
    use semloc_bandit::{BellReward, GaussianPenaltyReward, PythiaLevelReward, RewardShape};
    let features = [
        FeatureSet::FullTable1,
        FeatureSet::PcOnly,
        FeatureSet::PcDeltas,
        FeatureSet::PythiaProgram,
    ];
    let rewards: [RewardShape; 3] = [
        BellReward::paper_default().into(),
        GaussianPenaltyReward::snippet_default().into(),
        PythiaLevelReward::pythia_default().into(),
    ];
    let mut cells = Vec::new();
    for f in features {
        for r in &rewards {
            cells.push(PipelineConfig {
                features: f,
                reward: r.clone(),
                ..PipelineConfig::default()
            });
        }
    }
    for entries in [1024usize, 4096] {
        cells.push(PipelineConfig {
            cst_entries: Some(entries),
            ..PipelineConfig::default()
        });
    }
    cells
}

/// Run the tournament: every cell × kernel, warm-start forked, ranked by
/// geomean speedup over the shared no-prefetch baselines.
///
/// # Panics
///
/// Panics if a verified cell's warm-forked run diverges from its cold run
/// (a snapshot-equivalence violation — never rank on top of it), or if a
/// run produces a degenerate IPC that admits no speedup.
pub fn arena_run(
    store: &TraceStore,
    kernels: &[KernelBox],
    cells: &[PipelineConfig],
    opts: &ArenaOpts,
) -> ArenaReport {
    let cfg = SimConfig::default().with_budget(opts.budget);
    let warm = opts.warm.min(opts.budget / 2).max(1);

    // Shared baselines: one no-prefetch run per kernel (also primes the
    // store's capture for every cell of that kernel).
    let baselines: Vec<RunResult> = kernels
        .iter()
        .map(|k| run_kernel_with_store(store, k.as_ref(), &PrefetcherKind::None, &cfg))
        .collect();

    // Kernel-major job order keeps a worker's LIFO shard on one kernel's
    // trace for as long as possible (same layout as the matrix runner).
    let jobs: Vec<(usize, usize)> = (0..kernels.len())
        .flat_map(|ki| (0..cells.len()).map(move |ci| (ci, ki)))
        .collect();
    let runs = crate::pool::run_sharded(opts.threads, jobs.clone(), |(ci, ki)| {
        let kernel = kernels[ki].as_ref();
        let kind = PrefetcherKind::Context(cells[ci].apply(ContextConfig::default()));
        let mut warm_engine = Engine::new(store.replay(kernel, cfg.instr_budget), &kind, &cfg);
        warm_engine.run_to(warm);
        let mut forked = warm_engine
            .fork_onto(store.replay(kernel, cfg.instr_budget))
            .expect("the fork target replays the same capture, so the prefix matches");
        forked.run_to_end();
        let r = forked.finish();
        let verify = match opts.verify {
            VerifyMode::Off => false,
            VerifyMode::First => ci == 0,
            VerifyMode::All => true,
        };
        if verify {
            let cold = run_kernel_with_store(store, kernel, &kind, &cfg);
            assert_eq!(
                r.stats_digest(),
                cold.stats_digest(),
                "warm-forked run of {}/{} diverged from the cold run — the \
                 composition's snapshot does not round-trip",
                cells[ci].label(),
                kernel.name(),
            );
        }
        (r, verify)
    });

    let verified = runs.iter().filter(|(_, v)| *v).count();
    let mut by_cell: Vec<Vec<Option<RunResult>>> = vec![vec![None; kernels.len()]; cells.len()];
    for (&(ci, ki), (r, _)) in jobs.iter().zip(runs) {
        by_cell[ci][ki] = Some(r);
    }

    let mut scored: Vec<CellScore> = cells
        .iter()
        .zip(by_cell)
        .map(|(cell, row)| {
            let kernels: Vec<KernelScore> = row
                .into_iter()
                .zip(&baselines)
                .map(|(r, base)| {
                    let r = r.expect("every (cell, kernel) job ran exactly once");
                    let speedup = r
                        .speedup_over(base)
                        .expect("arena runs retire instructions, so IPCs are finite");
                    KernelScore {
                        kernel: r.kernel,
                        speedup,
                        ipc: r.cpu.ipc(),
                        accuracy: r.learn.as_ref().map_or(0.0, |s| s.prediction_accuracy()),
                        coverage: coverage(&r),
                    }
                })
                .collect();
            let log_sum: f64 = kernels.iter().map(|k| k.speedup.ln()).sum();
            CellScore {
                label: cell.label(),
                geomean: (log_sum / kernels.len().max(1) as f64).exp(),
                kernels,
            }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.geomean
            .total_cmp(&a.geomean)
            .then_with(|| a.label.cmp(&b.label))
    });

    ArenaReport {
        cells: scored,
        kernels: kernels.iter().map(|k| k.name()).collect(),
        budget: opts.budget,
        warm,
        verified,
    }
}

impl ArenaReport {
    /// Render the leaderboard as a text table: one row per cell, best
    /// first, with per-kernel speedup / IPC / accuracy / coverage.
    pub fn render(&self) -> String {
        let mut headers = vec!["#".to_string(), "cell".to_string(), "geomean".to_string()];
        headers.extend(self.kernels.iter().map(|k| k.to_string()));
        let mut t = Table::new(headers);
        for (rank, c) in self.cells.iter().enumerate() {
            let mut row = vec![
                format!("{}", rank + 1),
                c.label.clone(),
                format!("{:.4}", c.geomean),
            ];
            row.extend(c.kernels.iter().map(|k| {
                format!(
                    "{:.3}x i{:.2} a{:.0}% c{:.0}%",
                    k.speedup,
                    k.ipc,
                    k.accuracy * 100.0,
                    k.coverage * 100.0
                )
            }));
            t.row(row);
        }
        t.render()
    }

    /// Serialize the report (`BENCH_arena.json` layout): a ranked
    /// leaderboard array plus one object per cell with per-kernel metrics.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"leaderboard\": [\n");
        for (rank, c) in self.cells.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"rank\": {}, \"cell\": \"{}\", \"geomean\": {:.4}}}{}",
                rank + 1,
                c.label,
                c.geomean,
                if rank + 1 == self.cells.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        out.push_str("  ],\n  \"cells\": {\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(out, "    \"{}\": {{\"geomean\": {:.4}", c.label, c.geomean);
            for k in &c.kernels {
                let _ = write!(
                    out,
                    ", \"{}\": {{\"speedup\": {:.4}, \"ipc\": {:.4}, \"accuracy\": {:.4}, \
                     \"coverage\": {:.4}}}",
                    k.kernel, k.speedup, k.ipc, k.accuracy, k.coverage
                );
            }
            let _ = writeln!(
                out,
                "}}{}",
                if i + 1 == self.cells.len() { "" } else { "," }
            );
        }
        let _ = writeln!(
            out,
            "  }},\n  \"meta\": {{\"instr_budget\": {}, \"warm_prefix\": {}, \"cells\": {}, \
             \"kernels\": {}, \"verified_runs\": {}, \
             \"note\": \"cells ranked by geomean speedup over the shared no-prefetch baseline; \
             every run warm-starts via Engine::fork_onto and the verified subset is \
             digest-asserted equal to cold runs\"}}\n}}",
            self.budget,
            self.warm,
            self.cells.len(),
            self.kernels.len(),
            self.verified
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_workloads::kernel_by_name;

    #[test]
    fn default_cells_cover_the_design_space() {
        let cells = default_cells();
        assert!(cells.len() >= 12, "tournament needs at least 12 cells");
        let labels: Vec<String> = cells.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "cell labels must be unique");
        assert_eq!(
            labels[0],
            PipelineConfig::default().label(),
            "the first cell is the paper's own composition"
        );
    }

    #[test]
    fn verify_mode_parses_its_knob() {
        assert_eq!(VerifyMode::parse(" ALL "), Some(VerifyMode::All));
        assert_eq!(VerifyMode::parse("first"), Some(VerifyMode::First));
        assert_eq!(VerifyMode::parse("off"), Some(VerifyMode::Off));
        assert_eq!(VerifyMode::parse("sometimes"), None);
    }

    #[test]
    fn arena_is_deterministic_and_warm_equals_cold() {
        // A reduced grid with exhaustive verification: every warm-forked
        // run is digest-asserted against its cold twin inside arena_run,
        // and two independent tournaments must render identically.
        let cells = vec![
            PipelineConfig::default(),
            PipelineConfig {
                reward: semloc_bandit::GaussianPenaltyReward::snippet_default().into(),
                features: FeatureSet::PcDeltas,
                ..PipelineConfig::default()
            },
        ];
        let kernels = vec![kernel_by_name("array").expect("registered")];
        let opts = ArenaOpts {
            budget: 40_000,
            warm: 10_000,
            threads: 2,
            verify: VerifyMode::All,
        };
        let a = arena_run(&TraceStore::new(), &kernels, &cells, &opts);
        let b = arena_run(&TraceStore::new(), &kernels, &cells, &opts);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "tournaments must be deterministic"
        );
        assert_eq!(a.verified, cells.len() * kernels.len());
        for w in a.cells.windows(2) {
            assert!(
                w[0].geomean >= w[1].geomean,
                "leaderboard must be sorted best-first"
            );
        }
        assert!(a
            .cells
            .iter()
            .any(|c| c.label == PipelineConfig::default().label()));
        assert!(a.render().contains("geomean"));
    }
}
