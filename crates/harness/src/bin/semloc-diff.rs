//! Differential-oracle smoke runner for CI: drives the optimized and spec
//! prefetchers in lockstep over several kernels × configurations and fails
//! (exit 1) on the first divergence, writing both state dumps to
//! `$DIFF_DUMP_DIR` (default `./diff-dumps`) for the artifact upload.
//!
//! Usage: `semloc-diff [instr_budget]` (default 60 000 per cell).

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use semloc_context::ContextConfig;
use semloc_harness::{diff_kernel, SimConfig, TraceStore};
use semloc_workloads::kernel_by_name;

fn variant_config() -> ContextConfig {
    // A second operating point: different seed (different exploration
    // stream), smaller active prefix, wide deltas.
    ContextConfig {
        seed: 0xd1ff,
        initial_active: 3,
        delta_bits: 16,
        ..ContextConfig::default()
    }
}

fn main() -> ExitCode {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);
    let dump_dir =
        PathBuf::from(std::env::var("DIFF_DUMP_DIR").unwrap_or_else(|_| "diff-dumps".into()));

    let store = TraceStore::new();
    let sim = SimConfig::default().with_budget(budget);
    let kernels = ["array", "list", "mcf"];
    let configs: [(&str, ContextConfig); 2] = [
        ("default", ContextConfig::default()),
        ("variant", variant_config()),
    ];

    let mut total_accesses = 0u64;
    let mut failures = 0u32;
    println!("differential oracle: optimized core vs spec, {budget} instructions per cell");
    for name in kernels {
        let kernel = kernel_by_name(name).expect("kernel registered");
        for (label, cfg) in &configs {
            let report = diff_kernel(&store, kernel.as_ref(), label, cfg.clone(), &sim);
            total_accesses += report.accesses;
            match &report.divergence {
                None => println!(
                    "  {name:>8} × {label:<8} {:>8} accesses in lockstep — clean",
                    report.accesses
                ),
                Some(d) => {
                    failures += 1;
                    println!(
                        "  {name:>8} × {label:<8} DIVERGED at access {} ({})",
                        d.access, d.field
                    );
                    let _ = fs::create_dir_all(&dump_dir);
                    let path = dump_dir.join(format!("{name}-{label}.txt"));
                    if let Err(e) = fs::write(&path, format!("{d}")) {
                        eprintln!("  (failed to write dump {}: {e})", path.display());
                    } else {
                        println!("  dump written to {}", path.display());
                    }
                }
            }
        }
    }

    println!("total: {total_accesses} lockstep accesses, {failures} divergences");
    if total_accesses < 50_000 {
        eprintln!("FAIL: expected at least 50 000 lockstep accesses");
        return ExitCode::FAILURE;
    }
    if failures > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
