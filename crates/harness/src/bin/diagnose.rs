//! Per-workload diagnostic tool: run the named workloads under the main
//! prefetcher lineup and print one dense line of memory-system counters per
//! run, plus the context prefetcher's learning counters.
//!
//! ```sh
//! cargo run --release -p semloc-harness --bin diagnose -- mcf list bst
//! ```

use semloc_harness::{run_kernel, PrefetcherKind, SimConfig};
use semloc_workloads::kernel_by_name;

fn main() {
    let cfg = SimConfig::default();
    let names: Vec<String> = std::env::args().skip(1).collect();
    let names = if names.is_empty() {
        vec!["graph500-list".to_string()]
    } else {
        names
    };
    for kname in &names {
        let k = kernel_by_name(kname).expect("kernel");
        let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg);
        for pf in [
            PrefetcherKind::None,
            PrefetcherKind::Stride,
            PrefetcherKind::GhbPcdc,
            PrefetcherKind::Sms,
            PrefetcherKind::context(),
        ] {
            let r = run_kernel(k.as_ref(), &pf, &cfg);
            println!(
                "{kname:14} {:10} speedup={:.2} ipc={:.3} l1mpki={:6.2} l2mpki={:5.2} issued={:7} filt={:6} rej={:6} hitpf={:7} shorter={:6} nontimely={:6} neverhit={:6}",
                r.prefetcher, r.speedup_over(&base).unwrap_or(f64::NAN), r.cpu.ipc(), r.l1_mpki(), r.l2_mpki(),
                r.mem.prefetches_issued, r.mem.prefetches_filtered, r.mem.prefetches_rejected,
                r.mem.classes.hit_prefetched, r.mem.classes.shorter_wait, r.mem.classes.non_timely, r.mem.classes.prefetch_never_hit
            );
            if let Some(l) = &r.learn {
                println!("   learn: hits={} expired={} timely={} late={} early={} collected={} overflow={} real={} shadow={} acc={:.2}",
                    l.hits, l.expired, l.timely_hits, l.late_hits, l.early_hits, l.collected, l.delta_overflow, l.real_issued, l.shadow_issued, l.prediction_accuracy());
            }
        }
    }
}
