//! The checkpointable simulation engine.
//!
//! [`Engine`] owns one composed simulator — a replayed kernel stream, the
//! prefetcher under test, and the [`Cpu`] (which itself owns the cache
//! hierarchy and prefetcher state) — and can pause it at any instruction
//! boundary. A paused engine yields a [`SimCheckpoint`]: a versioned,
//! fingerprinted byte snapshot of *every* stateful layer (core, branch
//! predictor, caches, MSHRs, prefetcher tables, RNG streams, statistics)
//! built on the [`Snapshot`] trait.
//!
//! The contract, pinned by the golden-digest suite, is **bit identity**:
//!
//! * checkpoint → restore → continue produces exactly the statistics of an
//!   uninterrupted run, and
//! * re-saving a restored engine yields byte-identical checkpoint payloads.
//!
//! That makes checkpoints safe for three distinct uses: resuming a killed
//! experiment sweep from disk (see `crate::ckpt`), forking one warmed
//! engine into many continuations ([`Engine::fork`] — e.g. the calibration
//! probe riding the baseline column's prefix), and post-mortem state
//! inspection at a divergence.
//!
//! Engines replay [`ReplayKernel`] streams rather than live generators:
//! the cursor (= instructions consumed) identifies the exact resume point
//! in the captured stream, which the prefix property of
//! [`semloc_workloads::replay`] guarantees is the same stream an
//! uninterrupted run would have seen.

use std::io;

use semloc_cpu::Cpu;
use semloc_mem::{Hierarchy, Prefetcher};
use semloc_trace::{snap_err, SnapReader, SnapWriter, Snapshot, TraceSink};
use semloc_workloads::{Kernel, ReplayKernel};

use crate::config::SimConfig;
use crate::prefetchers::PrefetcherKind;
use crate::runner::{collect_result, Digest, RunResult};

/// Version of the [`SimCheckpoint`] encoding (the `SIMC` section version).
/// Bump it whenever any layer's snapshot layout changes; readers reject
/// every other version with a typed error.
pub const SIM_CKPT_VERSION: u32 = 2;

/// A complete, restorable snapshot of a paused [`Engine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimCheckpoint {
    /// Encoding version ([`SIM_CKPT_VERSION`] when produced by this build).
    pub version: u32,
    /// Fingerprint of the engine's identity — trace key, prefetcher kind,
    /// and [`SimConfig`] — so a checkpoint can never be restored into an
    /// engine simulating something else.
    pub fingerprint: u64,
    /// Instructions consumed when the checkpoint was taken (the resume
    /// position in the replayed stream).
    pub cursor: u64,
    /// The serialized [`Snapshot`] stream of every simulator layer.
    pub payload: Vec<u8>,
}

impl SimCheckpoint {
    /// Serialize to the flat `SIMC` byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.section(*b"SIMC", self.version);
        w.put_u64(self.fingerprint);
        w.put_u64(self.cursor);
        w.put_len(self.payload.len());
        w.put_bytes(&self.payload);
        w.into_bytes()
    }

    /// Parse bytes produced by [`SimCheckpoint::to_bytes`]. Rejects foreign
    /// tags, unknown versions, truncation, and trailing garbage with a
    /// typed [`io::ErrorKind::InvalidData`] / `UnexpectedEof` error.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<SimCheckpoint> {
        let mut r = SnapReader::new(bytes);
        r.section(*b"SIMC", SIM_CKPT_VERSION)?;
        let fingerprint = r.get_u64()?;
        let cursor = r.get_u64()?;
        let n = r.get_len()?;
        let payload = r.get_bytes(n)?.to_vec();
        r.expect_end()?;
        Ok(SimCheckpoint {
            version: SIM_CKPT_VERSION,
            fingerprint,
            cursor,
            payload,
        })
    }
}

/// One pausable simulation: a captured kernel stream driven through a
/// [`Cpu`] composed with the prefetcher under test.
///
/// The engine is the single run-loop behind [`crate::run_kernel`]: drive it
/// with [`Engine::run_to`], snapshot it with [`Engine::checkpoint`], clone
/// its warm state with [`Engine::fork`], and collect the final
/// [`RunResult`] with [`Engine::finish`].
#[derive(Debug)]
pub struct Engine {
    replay: ReplayKernel,
    kind: PrefetcherKind,
    config: SimConfig,
    cpu: Cpu<Box<dyn Prefetcher>>,
}

impl Engine {
    /// A fresh (cold) engine for `kind` over the captured stream.
    ///
    /// `kind` must be fully resolved — [`PrefetcherKind::ContextCalibrated`]
    /// is a *recipe* (probe first, then run calibrated) that the runner
    /// resolves into a concrete [`PrefetcherKind::Context`] before any
    /// engine exists; see [`crate::run_kernel_with_store`].
    pub fn new(replay: ReplayKernel, kind: &PrefetcherKind, config: &SimConfig) -> Engine {
        let hierarchy = Hierarchy::new(config.mem.clone(), kind.build());
        let cpu = Cpu::new(config.cpu.clone(), hierarchy, config.instr_budget);
        Engine {
            replay,
            kind: kind.clone(),
            config: config.clone(),
            cpu,
        }
    }

    /// The engine's identity fingerprint: FNV-1a over the kernel's trace
    /// key, the prefetcher kind, and the simulation configuration (both via
    /// their `Debug` renderings, which cover every field). Two engines with
    /// equal fingerprints simulate the same cell, so their checkpoints are
    /// interchangeable; everything else is rejected at restore.
    pub fn fingerprint(&self) -> u64 {
        let mut d = Digest::new();
        d.str(&self.replay.trace_key());
        d.str(&format!("{:?}", self.kind));
        d.str(&format!("{:?}", self.config));
        d.finish()
    }

    /// Instructions consumed so far (the resume position in the stream).
    pub fn cursor(&self) -> u64 {
        self.cpu.stats().instructions
    }

    /// Whether the run is over: the instruction budget is exhausted or the
    /// captured stream has no instructions left.
    pub fn done(&self) -> bool {
        let c = self.cursor();
        (self.config.instr_budget != 0 && c >= self.config.instr_budget)
            || c >= self.replay.trace().buf.len() as u64
    }

    /// The prefetcher kind this engine simulates.
    pub fn kind(&self) -> &PrefetcherKind {
        &self.kind
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Drive the simulation forward until `target` instructions have been
    /// consumed (clamped to the configured budget), the stream ends, or the
    /// budget is reached. Returns the new cursor. Feeding instructions in
    /// several `run_to` slices is bit-identical to one uninterrupted run:
    /// the stream position is exactly the instruction count, so each call
    /// resumes where the previous one stopped.
    ///
    /// When the replay carries pre-decoded lanes (the trace store's decode
    /// cache admitted it), the engine consumes whole
    /// [`BLOCK_LEN`](semloc_trace::BLOCK_LEN)-instruction blocks through
    /// [`Cpu::step_block`]: the budget/target bounds are resolved here once
    /// per slice instead of per instruction, stats fold once per block, and
    /// the next block's lanes are prefetched while the current one
    /// executes. Without decoded lanes it streams the varint decode one
    /// instruction at a time (seeking to the resume point via block marks)
    /// — the path the diff oracle's lockstep tee always uses, and the
    /// fallback when the decode cache evicted this trace. Both paths are
    /// bit-identical by construction and pinned by proptests.
    pub fn run_to(&mut self, target: u64) -> u64 {
        let budget = self.config.instr_budget;
        let target = if budget == 0 {
            target
        } else {
            target.min(budget)
        };
        if let Some(decoded) = self.replay.decoded().cloned() {
            const BLOCK: u64 = semloc_trace::BLOCK_LEN as u64;
            let end = target.min(decoded.len() as u64);
            let mut cur = self.cursor();
            while cur < end {
                let block_end = ((cur / BLOCK + 1) * BLOCK).min(end);
                decoded.prefetch_block(block_end as usize);
                self.cpu
                    .step_block(&decoded.block(cur as usize, block_end as usize));
                cur = block_end;
            }
            return self.cursor();
        }
        let start = self.cursor() as usize;
        for i in self.replay.trace().buf.iter_from(start) {
            if self.cpu.stats().instructions >= target {
                break;
            }
            self.cpu.instr(i);
        }
        self.cursor()
    }

    /// Run to the end (budget or stream exhaustion).
    pub fn run_to_end(&mut self) -> u64 {
        self.run_to(u64::MAX)
    }

    /// Snapshot the complete simulator state at the current cursor.
    pub fn checkpoint(&self) -> SimCheckpoint {
        let mut w = SnapWriter::new();
        self.cpu.save(&mut w);
        SimCheckpoint {
            version: SIM_CKPT_VERSION,
            fingerprint: self.fingerprint(),
            cursor: self.cursor(),
            payload: w.into_bytes(),
        }
    }

    /// Restore this engine to a previously captured checkpoint.
    ///
    /// The checkpoint must carry this engine's own [`Engine::fingerprint`]
    /// (same trace, same prefetcher kind, same configuration) and a
    /// supported version; anything else — including a payload whose cursor
    /// disagrees with its restored statistics — fails with
    /// [`io::ErrorKind::InvalidData`]. On error the engine state is
    /// unspecified and the engine must be discarded.
    pub fn restore(&mut self, ckpt: &SimCheckpoint) -> io::Result<()> {
        if ckpt.version != SIM_CKPT_VERSION {
            return Err(snap_err(format!(
                "checkpoint version {} unsupported (engine speaks {SIM_CKPT_VERSION})",
                ckpt.version
            )));
        }
        let own = self.fingerprint();
        if ckpt.fingerprint != own {
            return Err(snap_err(format!(
                "checkpoint fingerprint {:#018x} does not match engine {own:#018x} \
                 (different kernel, prefetcher, or config)",
                ckpt.fingerprint
            )));
        }
        let mut r = SnapReader::new(&ckpt.payload);
        self.cpu.restore(&mut r)?;
        r.expect_end()?;
        if self.cursor() != ckpt.cursor {
            return Err(snap_err(format!(
                "checkpoint cursor {} disagrees with restored instruction count {}",
                ckpt.cursor,
                self.cursor()
            )));
        }
        Ok(())
    }

    /// Fork the engine: a new engine at exactly this warm state, free to
    /// run ahead independently (the paused original is untouched). Forking
    /// goes through [`Engine::checkpoint`]/[`Engine::restore`], so a fork
    /// is also a standing test that the snapshot round-trips.
    pub fn fork(&self) -> Engine {
        let mut e = Engine::new(self.replay.clone(), &self.kind, &self.config);
        e.restore(&self.checkpoint())
            .expect("a fresh engine restores its own checkpoint");
        e
    }

    /// Fork this engine's warm state **onto a different replayed stream**
    /// whose instructions agree with the current stream up to the cursor.
    ///
    /// This is the primitive behind the adversarial search's
    /// warm-prefix-shared evaluation: warm one engine over a common prefix
    /// once, then fork the trained state onto many composed continuations
    /// (same prefix, different tails) without re-simulating the warmup. The
    /// prefix equality is *verified instruction by instruction* before any
    /// state moves — a diverging stream is rejected with
    /// [`io::ErrorKind::InvalidData`], because restoring warm state into a
    /// stream that disagrees about the past would silently break the
    /// checkpoint contract.
    pub fn fork_onto(&self, replay: ReplayKernel) -> io::Result<Engine> {
        let cursor = self.cursor();
        if (replay.trace().buf.len() as u64) < cursor {
            return Err(snap_err(format!(
                "fork_onto target '{}' holds {} instrs, engine cursor is {cursor}",
                replay.name(),
                replay.trace().buf.len()
            )));
        }
        let ours = self.replay.trace().buf.iter().take(cursor as usize);
        let theirs = replay.trace().buf.iter().take(cursor as usize);
        for (n, (a, b)) in ours.zip(theirs).enumerate() {
            if a != b {
                return Err(snap_err(format!(
                    "fork_onto target '{}' diverges from '{}' at instr {n} (cursor {cursor})",
                    replay.name(),
                    self.replay.name()
                )));
            }
        }
        let mut e = Engine::new(replay, &self.kind, &self.config);
        // Same warm state, new stream identity: re-stamp the fingerprint so
        // the (verified-prefix) restore is accepted.
        let mut ckpt = self.checkpoint();
        ckpt.fingerprint = e.fingerprint();
        e.restore(&ckpt)?;
        Ok(e)
    }

    /// Finish the run (end-of-run accounting flush) and collect every
    /// statistic, exactly as an uninterrupted [`crate::run_kernel`] would.
    pub fn finish(self) -> RunResult {
        collect_result(self.replay.name(), self.kind.label(), self.cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_kernel_uncached;
    use semloc_workloads::{capture_kernel, kernel_by_name};
    use std::sync::Arc;

    fn replay_of(name: &str, budget: u64) -> ReplayKernel {
        let k = kernel_by_name(name).unwrap();
        ReplayKernel::new(Arc::new(capture_kernel(k.as_ref(), budget)))
    }

    fn quick() -> SimConfig {
        SimConfig::default().with_budget(60_000)
    }

    #[test]
    fn engine_run_matches_simulate() {
        let cfg = quick();
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::Stride,
            PrefetcherKind::context(),
        ] {
            let mut e = Engine::new(replay_of("list", cfg.instr_budget), &kind, &cfg);
            e.run_to_end();
            assert!(e.done());
            let via_engine = e.finish();
            let k = kernel_by_name("list").unwrap();
            let direct = run_kernel_uncached(k.as_ref(), &kind, &cfg);
            assert_eq!(
                via_engine.stats_digest(),
                direct.stats_digest(),
                "{}: engine-driven run diverged",
                kind.label()
            );
        }
    }

    #[test]
    fn checkpoint_restore_continue_is_bit_identical() {
        let cfg = quick();
        let kind = PrefetcherKind::context();
        let uninterrupted = {
            let mut e = Engine::new(replay_of("mcf", cfg.instr_budget), &kind, &cfg);
            e.run_to_end();
            e.finish()
        };
        // Pause halfway, round-trip the checkpoint through bytes, restore
        // into a cold engine, and continue.
        let mut warm = Engine::new(replay_of("mcf", cfg.instr_budget), &kind, &cfg);
        warm.run_to(cfg.instr_budget / 2);
        let ckpt = SimCheckpoint::from_bytes(&warm.checkpoint().to_bytes()).unwrap();
        assert_eq!(ckpt.cursor, cfg.instr_budget / 2);
        let mut resumed = Engine::new(replay_of("mcf", cfg.instr_budget), &kind, &cfg);
        resumed.restore(&ckpt).unwrap();
        assert_eq!(resumed.cursor(), ckpt.cursor);
        resumed.run_to_end();
        let r = resumed.finish();
        assert_eq!(
            r.stats_digest(),
            uninterrupted.stats_digest(),
            "restore + continue must be bit-identical to an uninterrupted run"
        );
        // And re-saving a restored engine yields byte-identical payloads.
        let mut again = Engine::new(replay_of("mcf", cfg.instr_budget), &kind, &cfg);
        again.restore(&ckpt).unwrap();
        assert_eq!(again.checkpoint().payload, ckpt.payload);
    }

    #[test]
    fn fork_runs_ahead_independently() {
        let cfg = quick();
        let kind = PrefetcherKind::context();
        let mut e = Engine::new(replay_of("list", cfg.instr_budget), &kind, &cfg);
        e.run_to(20_000);
        let mut fork = e.fork();
        assert_eq!(fork.cursor(), 20_000);
        fork.run_to_end();
        let forked = fork.finish();
        // The original is untouched and finishes to the same result.
        assert_eq!(e.cursor(), 20_000);
        e.run_to_end();
        assert_eq!(e.finish().stats_digest(), forked.stats_digest());
    }

    #[test]
    fn fork_onto_extends_a_shared_prefix() {
        // Warm over a short capture, fork the trained state onto a longer
        // capture of the same kernel (the prefix property guarantees the
        // streams agree up to the short capture's length), and check the
        // continuation matches an uninterrupted run over the long capture.
        let kind = PrefetcherKind::context();
        let cfg = quick();
        let long = replay_of("list", cfg.instr_budget);
        let uninterrupted = {
            let mut e = Engine::new(long.clone(), &kind, &cfg);
            e.run_to_end();
            e.finish()
        };
        let mut warm = Engine::new(replay_of("list", 20_000), &kind, &cfg);
        warm.run_to(20_000);
        let mut forked = warm.fork_onto(long).unwrap();
        assert_eq!(forked.cursor(), 20_000);
        forked.run_to_end();
        assert_eq!(
            forked.finish().stats_digest(),
            uninterrupted.stats_digest(),
            "fork_onto continuation must match an uninterrupted run"
        );
    }

    #[test]
    fn fork_onto_rejects_diverging_streams() {
        let kind = PrefetcherKind::Stride;
        let cfg = quick();
        let mut warm = Engine::new(replay_of("list", 20_000), &kind, &cfg);
        warm.run_to(20_000);
        // A different kernel's stream disagrees in the prefix.
        assert_eq!(
            warm.fork_onto(replay_of("mcf", cfg.instr_budget))
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );
        // A stream shorter than the cursor cannot host the warm state.
        assert_eq!(
            warm.fork_onto(replay_of("list", 5_000)).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn foreign_checkpoints_are_rejected() {
        let cfg = quick();
        let mut e = Engine::new(
            replay_of("list", cfg.instr_budget),
            &PrefetcherKind::Stride,
            &cfg,
        );
        e.run_to(5_000);
        let ckpt = e.checkpoint();

        // Different prefetcher kind.
        let mut other = Engine::new(
            replay_of("list", cfg.instr_budget),
            &PrefetcherKind::context(),
            &cfg,
        );
        assert_eq!(
            other.restore(&ckpt).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // Different config.
        let mut other = Engine::new(
            replay_of("list", cfg.instr_budget),
            &PrefetcherKind::Stride,
            &cfg.clone().with_budget(70_000),
        );
        assert_eq!(
            other.restore(&ckpt).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // Different kernel.
        let mut other = Engine::new(
            replay_of("mcf", cfg.instr_budget),
            &PrefetcherKind::Stride,
            &cfg,
        );
        assert_eq!(
            other.restore(&ckpt).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // Unknown version.
        let mut bad = ckpt.clone();
        bad.version = 99;
        let mut same = Engine::new(
            replay_of("list", cfg.instr_budget),
            &PrefetcherKind::Stride,
            &cfg,
        );
        assert_eq!(
            same.restore(&bad).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn checkpoint_bytes_reject_corruption() {
        let cfg = SimConfig::default().with_budget(2_000);
        let mut e = Engine::new(
            replay_of("array", cfg.instr_budget),
            &PrefetcherKind::None,
            &cfg,
        );
        e.run_to(1_000);
        let bytes = e.checkpoint().to_bytes();
        assert_eq!(
            SimCheckpoint::from_bytes(&bytes).unwrap(),
            e.checkpoint(),
            "clean bytes round-trip"
        );
        // Truncation and trailing garbage are both typed errors.
        assert!(SimCheckpoint::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(SimCheckpoint::from_bytes(&extra).is_err());
        // A wrong section tag is rejected before anything is interpreted.
        let mut bad = bytes;
        bad[0] ^= 0xFF;
        assert!(SimCheckpoint::from_bytes(&bad).is_err());
    }
}
