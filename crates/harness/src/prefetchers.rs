//! The prefetcher lineup of the paper's evaluation (§7).

use semloc_baselines::{
    GhbFlavor, GhbPrefetcher, MarkovPrefetcher, NextLinePrefetcher, SmsPrefetcher, StridePrefetcher,
};
use semloc_context::{ContextConfig, ContextPrefetcher};
use semloc_mem::{NoPrefetch, Prefetcher};

/// A buildable prefetcher configuration.
#[derive(Clone, Debug)]
pub enum PrefetcherKind {
    /// No prefetching (the speedup baseline).
    None,
    /// Per-PC stride prefetcher.
    Stride,
    /// GHB global delta-correlation.
    GhbGdc,
    /// GHB per-PC delta-correlation.
    GhbPcdc,
    /// GHB global address-correlation (Markov-style).
    GhbGac,
    /// Spatial memory streaming.
    Sms,
    /// Markov address correlation.
    Markov,
    /// Next-line.
    NextLine,
    /// The paper's context-based prefetcher with the given configuration.
    Context(ContextConfig),
    /// The context prefetcher with its reward window calibrated to the
    /// workload's measured target prefetch distance (§4.3): the runner
    /// first probes the workload without prefetching, computes
    /// `L1 miss penalty × IPC × Prob(mem op)`, and retunes the given base
    /// configuration with [`ContextConfig::calibrated`].
    ContextCalibrated(ContextConfig),
}

impl PrefetcherKind {
    /// The paper's headline comparison set, in Fig 12 bar order:
    /// GHB G/DC, GHB PC/DC, SMS, context.
    pub fn paper_lineup() -> Vec<PrefetcherKind> {
        vec![
            PrefetcherKind::GhbGdc,
            PrefetcherKind::GhbPcdc,
            PrefetcherKind::Sms,
            PrefetcherKind::Context(ContextConfig::default()),
        ]
    }

    /// The default context prefetcher: the paper's single bell reward
    /// centered on the ~30-access average target distance. (§4.3 notes the
    /// one function "accommodates diverse workloads with varying degrees of
    /// success"; [`PrefetcherKind::ContextCalibrated`] is the per-workload
    /// variant, evaluated as an extension in the ablation experiment.)
    pub fn context() -> Self {
        PrefetcherKind::Context(ContextConfig::default())
    }

    /// The per-workload-calibrated context prefetcher (extension; see
    /// [`PrefetcherKind::ContextCalibrated`]).
    pub fn context_calibrated() -> Self {
        PrefetcherKind::ContextCalibrated(ContextConfig::default())
    }

    /// Display name, matching each prefetcher's `Prefetcher::name`.
    pub fn label(&self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::Stride => "stride",
            PrefetcherKind::GhbGdc => "ghb-g/dc",
            PrefetcherKind::GhbPcdc => "ghb-pc/dc",
            PrefetcherKind::GhbGac => "ghb-g/ac",
            PrefetcherKind::Sms => "sms",
            PrefetcherKind::Markov => "markov",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::Context(_) | PrefetcherKind::ContextCalibrated(_) => "context",
        }
    }

    /// Instantiate the prefetcher.
    pub fn build(&self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NoPrefetch),
            PrefetcherKind::Stride => Box::new(StridePrefetcher::paper_default()),
            PrefetcherKind::GhbGdc => Box::new(GhbPrefetcher::paper_default(GhbFlavor::GlobalDc)),
            PrefetcherKind::GhbPcdc => Box::new(GhbPrefetcher::paper_default(GhbFlavor::PcDc)),
            PrefetcherKind::GhbGac => Box::new(GhbPrefetcher::paper_default(GhbFlavor::GlobalAc)),
            PrefetcherKind::Sms => Box::new(SmsPrefetcher::paper_default()),
            PrefetcherKind::Markov => Box::new(MarkovPrefetcher::paper_default()),
            PrefetcherKind::NextLine => Box::new(NextLinePrefetcher::default()),
            PrefetcherKind::Context(cfg) | PrefetcherKind::ContextCalibrated(cfg) => {
                Box::new(ContextPrefetcher::new(cfg.clone()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_built_names() {
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::Stride,
            PrefetcherKind::GhbGdc,
            PrefetcherKind::GhbPcdc,
            PrefetcherKind::GhbGac,
            PrefetcherKind::Sms,
            PrefetcherKind::Markov,
            PrefetcherKind::NextLine,
            PrefetcherKind::context(),
        ] {
            assert_eq!(kind.label(), kind.build().name());
        }
    }

    #[test]
    fn storage_budgets_are_comparable() {
        // §7: "The storage size of all prefetchers was scaled to that used
        // by the context-based prefetcher."
        let budget = PrefetcherKind::context().build().storage_bytes() as f64;
        for kind in [
            PrefetcherKind::Stride,
            PrefetcherKind::GhbGdc,
            PrefetcherKind::Sms,
            PrefetcherKind::Markov,
        ] {
            let b = kind.build().storage_bytes() as f64;
            assert!(
                (0.3..=1.3).contains(&(b / budget)),
                "{} budget {}B vs context {}B",
                kind.label(),
                b,
                budget
            );
        }
    }

    #[test]
    fn paper_lineup_ends_with_context() {
        let lineup = PrefetcherKind::paper_lineup();
        assert_eq!(lineup.len(), 4);
        assert_eq!(lineup.last().unwrap().label(), "context");
    }
}
